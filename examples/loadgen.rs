//! `loadgen` — replay a seeded mixed query/update stream against `flowd`
//! and record serving latency/throughput as mini-criterion JSONL.
//!
//! ```text
//! cargo run --release -p service --example loadgen -- \
//!     [--addr HOST:PORT] [--events N] [--threads T] [--seed S] [--bench-json PATH]
//! ```
//!
//! Without `--addr` an in-process daemon is started on an ephemeral port
//! (the recorded numbers then include no network beyond loopback TCP, same
//! as the CI smoke job). The stream is deterministic in `--seed`: each of
//! the `T` client threads replays `N/T` events drawn from its own
//! `splitmix64` stream — ~69% max-flow queries, ~30% demand routings, ~1%
//! capacity updates, all against one small path graph, so answers stay
//! microsecond-cheap and the measurement is dominated by serving overhead
//! (framing, dispatch, coalescing), which is what `flowd` adds over the
//! engine.
//!
//! Every reply is checked: an `"ok": false` reply or a wire failure counts
//! as a protocol error, and the gate in CI requires zero.

use std::io::Write as _;
use std::time::Instant;

use service::client::Client;
use service::json::{parse, Value};
use service::server::{start, ServerOptions};

const NODES: u32 = 12;
const USAGE: &str =
    "usage: loadgen [--addr HOST:PORT] [--events N] [--threads T] [--seed S] [--bench-json PATH]";

/// splitmix64: tiny, seedable, and good enough to shuffle terminals.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn edges() -> Vec<(u32, u32, f64)> {
    (0..NODES - 1).map(|i| (i, i + 1, 4.0)).collect()
}

fn fast_config_value() -> Value {
    let config = maxflow::MaxFlowConfig {
        epsilon: 0.5,
        racke: capprox::RackeConfig {
            num_trees: Some(3),
            ..Default::default()
        },
        phases: Some(2),
        ..Default::default()
    };
    parse(&config.to_json().expect("default-ish config serializes")).expect("canonical json")
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    MaxFlow,
    Route,
    Update,
}

/// One client thread's share of the stream; returns per-event `(kind,
/// latency_ns)` plus its protocol-error count.
fn run_client(
    addr: std::net::SocketAddr,
    fingerprint: String,
    events: usize,
    seed: u64,
) -> (Vec<(Kind, u64)>, u64) {
    let mut rng = Rng(seed);
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return (Vec::new(), events as u64),
    };
    let mut out = Vec::with_capacity(events);
    let mut errors = 0u64;
    for _ in 0..events {
        let roll = rng.below(100);
        let kind = if roll < 1 {
            Kind::Update
        } else if roll < 31 {
            Kind::Route
        } else {
            Kind::MaxFlow
        };
        let started = Instant::now();
        let reply = match kind {
            Kind::MaxFlow => {
                let s = rng.below(u64::from(NODES)) as u32;
                let t = (s + 1 + rng.below(u64::from(NODES) - 1) as u32) % NODES;
                client.max_flow(&fingerprint, s, t)
            }
            Kind::Route => {
                let s = rng.below(u64::from(NODES)) as usize;
                let t = (s + 1 + rng.below(u64::from(NODES) - 1) as usize) % NODES as usize;
                let mut demand = vec![0.0; NODES as usize];
                demand[s] = -1.0;
                demand[t] = 1.0;
                client.route(&fingerprint, &demand)
            }
            Kind::Update => {
                let edge = rng.below(u64::from(NODES) - 1) as u32;
                let cap = 1.0 + rng.below(8) as f64;
                client.update(&fingerprint, &[(edge, cap)])
            }
        };
        let elapsed = started.elapsed().as_nanos() as u64;
        match reply {
            Ok(r) if r.get("ok").and_then(Value::as_bool) == Some(true) => {
                out.push((kind, elapsed))
            }
            _ => errors += 1,
        }
    }
    (out, errors)
}

struct Summary {
    min_ns: u64,
    mean_ns: u64,
    max_ns: u64,
    samples: usize,
    p50_ns: f64,
    p99_ns: f64,
}

fn summarize(latencies: &mut [u64]) -> Option<Summary> {
    if latencies.is_empty() {
        return None;
    }
    latencies.sort_unstable();
    let n = latencies.len();
    let pct = |p: f64| latencies[(((n - 1) as f64) * p).round() as usize] as f64;
    Some(Summary {
        min_ns: latencies[0],
        mean_ns: (latencies.iter().map(|&x| u128::from(x)).sum::<u128>() / n as u128) as u64,
        max_ns: latencies[n - 1],
        samples: n,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
    })
}

fn record(group: &str, id: &str, s: &Summary, wall_s: f64, threads: usize, cpus: usize) -> String {
    let eps = if wall_s > 0.0 {
        s.samples as f64 / wall_s
    } else {
        0.0
    };
    format!(
        "{{\"group\":\"{group}\",\"id\":\"{id}\",\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{},\
         \"samples\":{},\"throughput_elements\":{},\"elements_per_sec\":{eps:.3},\
         \"p50_ns\":{:.3},\"p99_ns\":{:.3},\"threads\":{threads},\"host_cpus\":{cpus}}}",
        s.min_ns, s.mean_ns, s.max_ns, s.samples, s.samples, s.p50_ns, s.p99_ns
    )
}

fn main() {
    let mut addr: Option<String> = None;
    let mut events: usize = 100_000;
    let mut threads: usize = 4;
    let mut seed: u64 = 42;
    let mut bench_json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("{USAGE}");
                std::process::exit(2)
            })
        };
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--events" => events = value().parse().expect("--events N"),
            "--threads" => threads = value().parse().expect("--threads T"),
            "--seed" => seed = value().parse().expect("--seed S"),
            "--bench-json" => bench_json = Some(value()),
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let threads = threads.max(1);

    // Either target a running daemon or host one in-process.
    let mut local = None;
    let target = match &addr {
        Some(a) => a.parse().expect("--addr HOST:PORT"),
        None => {
            let server = start("127.0.0.1:0", ServerOptions::default()).expect("bind loopback");
            let a = server.local_addr();
            local = Some(server);
            a
        }
    };

    let mut setup = Client::connect(target).expect("connect");
    let loaded = setup
        .load_graph(u64::from(NODES), &edges(), Some(fast_config_value()))
        .expect("load_graph");
    assert_eq!(
        loaded.get("ok").and_then(Value::as_bool),
        Some(true),
        "load_graph failed: {loaded:?}"
    );
    let fingerprint = loaded
        .get("graph")
        .and_then(Value::as_str)
        .expect("fingerprint")
        .to_string();

    let started = Instant::now();
    let mut handles = Vec::new();
    for k in 0..threads {
        let share = events / threads + usize::from(k < events % threads);
        let fp = fingerprint.clone();
        handles.push(std::thread::spawn(move || {
            run_client(
                target,
                fp,
                share,
                seed ^ (0x5851_f42d_4c95_7f2d * (k as u64 + 1)),
            )
        }));
    }
    let mut all: Vec<(Kind, u64)> = Vec::with_capacity(events);
    let mut protocol_errors = 0u64;
    for h in handles {
        let (latencies, errors) = h.join().expect("client thread");
        all.extend(latencies);
        protocol_errors += errors;
    }
    let wall_s = started.elapsed().as_secs_f64();

    // Server-side counters (also proves the stream really exercised the
    // incremental path).
    let stats = setup.stats().expect("stats");
    let entry = stats
        .get("entries")
        .and_then(Value::as_arr)
        .and_then(|e| e.first())
        .expect("one cached graph");
    let counter = |key: &str| entry.get(key).and_then(Value::as_index).unwrap_or(0);
    let (updates, incremental, rebuilds) = (
        counter("updates"),
        counter("incremental_updates"),
        counter("full_rebuilds"),
    );

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut lines = Vec::new();
    let mut mixed: Vec<u64> = all.iter().map(|&(_, ns)| ns).collect();
    let mixed_summary = summarize(&mut mixed).expect("at least one served event");
    lines.push(record(
        "flowd_serving",
        "mixed/path12",
        &mixed_summary,
        wall_s,
        threads,
        cpus,
    ));
    for (kind, id) in [
        (Kind::MaxFlow, "max_flow/path12"),
        (Kind::Route, "route/path12"),
        (Kind::Update, "update/path12"),
    ] {
        let mut subset: Vec<u64> = all
            .iter()
            .filter(|&&(k, _)| k == kind)
            .map(|&(_, ns)| ns)
            .collect();
        if let Some(s) = summarize(&mut subset) {
            lines.push(record("flowd_serving", id, &s, wall_s, threads, cpus));
        }
    }
    lines.push(format!(
        "{{\"group\":\"flowd_serving_counters\",\"id\":\"mixed/path12\",\"min_ns\":0,\
         \"mean_ns\":0,\"max_ns\":0,\"samples\":1,\"events\":{events},\
         \"served\":{},\"protocol_errors\":{protocol_errors},\"updates\":{updates},\
         \"incremental_updates\":{incremental},\"full_rebuilds\":{rebuilds},\
         \"threads\":{threads},\"host_cpus\":{cpus}}}",
        all.len()
    ));

    if local.is_some() {
        let _ = setup.shutdown();
    }
    if let Some(mut server) = local {
        server.shutdown();
    }

    let body = lines.join("\n") + "\n";
    match &bench_json {
        Some(path) => {
            let mut f = std::fs::File::create(path).expect("create bench json");
            f.write_all(body.as_bytes()).expect("write bench json");
        }
        None => print!("{body}"),
    }
    eprintln!(
        "loadgen: {} events served in {wall_s:.2}s ({:.0}/s), {protocol_errors} protocol errors, \
         {updates} updates ({incremental} incremental, {rebuilds} rebuilds)",
        all.len(),
        all.len() as f64 / wall_s
    );
    if protocol_errors > 0 {
        std::process::exit(1);
    }
}
