//! Domain scenario: bandwidth between two racks of a (simplified) datacenter
//! fabric.
//!
//! The network is a two-layer leaf–spine fabric: leaf switches connect to
//! every spine with 40 Gb/s links, and each leaf aggregates a rack of hosts
//! over 10 Gb/s links. The question a capacity planner asks — "how much
//! traffic can rack A push to rack B, and which links saturate?" — is exactly
//! a max-flow query, and the congestion approximator's cuts point at the
//! bottleneck tier.
//!
//! ```text
//! cargo run --release -p dmf-bench --example datacenter_routing
//! ```

use baselines::dinic;
use flowgraph::{Demand, Graph, NodeId};
use maxflow::{MaxFlowConfig, Parallelism, PreparedMaxFlow};

fn main() {
    let leaves = 6usize;
    let spines = 4usize;
    let hosts_per_rack = 8usize;

    // Node layout: [spines | leaves | hosts of rack 0 | hosts of rack 1].
    let mut g = Graph::with_nodes(spines + leaves + 2 * hosts_per_rack);
    let spine = |i: usize| NodeId(i as u32);
    let leaf = |i: usize| NodeId((spines + i) as u32);
    let host = |rack: usize, i: usize| NodeId((spines + leaves + rack * hosts_per_rack + i) as u32);

    // Leaf-spine links: 40 Gb/s each.
    for l in 0..leaves {
        for s in 0..spines {
            g.add_edge(leaf(l), spine(s), 40.0).unwrap();
        }
    }
    // Rack 0 hangs off leaf 0, rack 1 off leaf 5; hosts have 10 Gb/s uplinks.
    for i in 0..hosts_per_rack {
        g.add_edge(host(0, i), leaf(0), 10.0).unwrap();
        g.add_edge(host(1, i), leaf(leaves - 1), 10.0).unwrap();
    }
    // Aggregate "rack" endpoints: we ask for the flow between one host of
    // rack 0 and one host of rack 1, then between the leaves themselves.
    let (s, t) = (host(0, 0), host(1, 0));

    // A capacity planner asks many questions about one fabric, so prepare
    // the solver session once (congestion approximator, repair tree, scratch
    // buffers) and run every what-if query against it.
    let config = MaxFlowConfig::default().with_epsilon(0.1);
    let mut session = PreparedMaxFlow::prepare(&g, &config).expect("fabric is connected");

    let host_to_host = session.max_flow(s, t).expect("valid terminals");
    let exact = dinic::max_flow(&g, s, t).expect("valid terminals");
    println!(
        "host-to-host bandwidth      : {:.1} Gb/s (exact {:.1})",
        host_to_host.value, exact.value
    );

    let leaf_to_leaf = session
        .max_flow(leaf(0), leaf(leaves - 1))
        .expect("valid terminals");
    let exact_leaf = dinic::max_flow(&g, leaf(0), leaf(leaves - 1)).expect("valid terminals");
    println!(
        "rack-to-rack (leaf) bandwidth: {:.1} Gb/s (exact {:.1}, certified ≥ {:.0}%)",
        leaf_to_leaf.value,
        exact_leaf.value,
        100.0 * leaf_to_leaf.certified_ratio()
    );

    // Which links carry the most relative load in the returned flow?
    let mut congested: Vec<(f64, String)> = g
        .edges()
        .map(|(id, e)| {
            (
                leaf_to_leaf.flow.get(id).abs() / e.capacity,
                format!("{} - {}", e.tail, e.head),
            )
        })
        .collect();
    congested.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("most congested links in the approximate routing:");
    for (load, name) in congested.iter().take(4) {
        println!("  {name:<12} {:.0}% utilised", 100.0 * load);
    }

    // The session answers a whole what-if batch (every host pair of the two
    // racks) without rebuilding anything — and with a parallel config, the
    // independent queries fan out across a worker pool. The determinism
    // contract guarantees the parallel batch is byte-identical to the
    // sequential one, so using more cores never changes an answer.
    let pairs: Vec<(NodeId, NodeId)> = (0..hosts_per_rack)
        .map(|i| (host(0, i), host(1, i)))
        .collect();
    let batch = session.max_flow_batch(&pairs).expect("valid terminals");
    let total: f64 = batch.iter().map(|r| r.value).sum();
    println!(
        "what-if batch               : {} host pairs answered from one prepared session, \
         {total:.1} Gb/s combined",
        batch.len()
    );

    let par_config = config.with_parallelism(Parallelism::available());
    let mut par_session = PreparedMaxFlow::prepare(&g, &par_config).expect("fabric is connected");
    let par_batch = par_session
        .par_max_flow_batch(&pairs)
        .expect("valid terminals");
    assert!(par_batch
        .iter()
        .zip(&batch)
        .all(|(p, s)| p.value.to_bits() == s.value.to_bits()));
    println!(
        "parallel what-if batch      : same {} answers, bit for bit, on {} worker thread(s)",
        par_batch.len(),
        par_config.parallelism.threads()
    );

    // Multi-commodity traffic matrix: a planner rarely has a single flow —
    // every rack pair carries some demand at once. `route_many` routes a
    // whole traffic matrix through the blocked gradient engine (up to 8
    // commodities share every operator sweep) and reports the worst link
    // congestion each commodity induces on its own. Here: each host of rack
    // 0 pushes a fixed offered load to its peer in rack 1, heaviest first.
    let matrix: Vec<Demand> = (0..hosts_per_rack)
        .map(|i| {
            let offered = 8.0 - i as f64; // Gb/s, heaviest commodity first
            Demand::st(&g, host(0, i), host(1, i), offered)
        })
        .collect();
    let routed = session.route_many(&matrix).expect("valid demands");
    println!(
        "traffic matrix              : {} commodities routed in one blocked pass",
        routed.len()
    );
    for (i, r) in routed.iter().enumerate() {
        println!(
            "  commodity {i}: {:.1} Gb/s offered, worst link at {:.0}% of capacity",
            8.0 - i as f64,
            100.0 * r.congestion
        );
    }
    // Every commodity is answered exactly as if it had been routed alone —
    // lanes only amortize memory traffic, they never interact numerically.
    let alone = session.route(&matrix[0]).expect("valid demand");
    assert_eq!(alone.congestion.to_bits(), routed[0].congestion.to_bits());
    println!("lane isolation              : commodity 0 is bit-identical to routing it alone");
}
