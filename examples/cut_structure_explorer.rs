//! Domain scenario: exploring the cut structure of a road-like network with
//! the congestion approximator.
//!
//! Congestion approximators are useful beyond max flow: `‖Rb‖_∞` instantly
//! lower-bounds the congestion of *any* traffic matrix. This example builds a
//! grid-with-a-river network (two halves joined by a few bridges), asks the
//! approximator how congested rush-hour traffic across the river must get,
//! and compares against routing everything over a single spanning tree.
//!
//! ```text
//! cargo run --release -p dmf-bench --example cut_structure_explorer
//! ```

use capprox::{CongestionApproximator, RackeConfig};
use flowgraph::{gen, Demand, NodeId};

fn main() {
    // A 10x10 grid city; the "river" cuts it between columns 4 and 5, with
    // only three bridges remaining.
    let side = 10usize;
    let mut g = gen::grid(side, side, 4.0);
    let node = |r: usize, c: usize| NodeId((r * side + c) as u32);
    // Remove the river crossings by rebuilding: instead of removing edges we
    // model the river by reducing crossing capacities to near-zero except at
    // three bridge rows.
    let bridges = [1usize, 5, 8];
    for r in 0..side {
        for (id, e) in g.clone().edges() {
            let (a, b) = (e.tail.index(), e.head.index());
            let (ra, ca) = (a / side, a % side);
            let (rb, cb) = (b / side, b % side);
            if ra == rb && ra == r && ((ca == 4 && cb == 5) || (ca == 5 && cb == 4)) {
                let cap = if bridges.contains(&r) { 8.0 } else { 0.1 };
                g.set_capacity(id, cap).unwrap();
            }
        }
    }

    let r =
        CongestionApproximator::build(&g, &RackeConfig::default().with_num_trees(12).with_seed(7))
            .expect("city grid is connected");

    // Rush hour: every west-side node sends one unit of traffic east.
    let mut demand = Demand::zeros(g.num_nodes());
    let mut sources = 0.0;
    for row in 0..side {
        for col in 0..side {
            if col < 5 {
                demand.set(node(row, col), -1.0);
                sources += 1.0;
            }
        }
    }
    for row in 0..side {
        for col in 5..side {
            demand.set(node(row, col), sources / 50.0);
        }
    }

    let lower = r.congestion_lower_bound(&demand);
    let upper = r.congestion_upper_bound(&g, &demand);
    println!(
        "city grid: {} nodes, {} edges, 3 bridges",
        g.num_nodes(),
        g.num_edges()
    );
    println!("rush-hour demand: {sources} units west -> east");
    println!("congestion lower bound (any routing) : {lower:.2}x capacity");
    println!("congestion of best single-tree route : {upper:.2}x capacity");
    println!(
        "approximator quality on this demand  : {:.2}",
        r.measured_alpha(&g, &demand)
    );

    // Which cut is the certificate? Report the most congested tree cut.
    let rows = r.apply(&demand).expect("demand covers every node");
    let (worst_row, _) = rows
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .unwrap();
    let tree_index = worst_row / g.num_nodes();
    let node_index = worst_row % g.num_nodes();
    let cut = r.trees()[tree_index]
        .tree
        .subtree_cut(NodeId(node_index as u32));
    println!(
        "bottleneck certificate: a cut with {} nodes on one side and capacity {:.1}",
        cut.side_size().min(g.num_nodes() - cut.side_size()),
        cut.capacity(&g)
    );
}
