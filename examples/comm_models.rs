//! Adversarial multi-model CONGEST runtime tour: one protocol and one
//! max-flow query executed under all four communication models.
//!
//! ```text
//! cargo run --example comm_models
//! ```
//!
//! Prints a model matrix for the Lemma 8.2 tree aggregation (classic
//! CONGEST, lossy CONGEST at several drop rates, Congested Clique,
//! BCAST(log n)) and the distributed max-flow round bill under a lossy
//! adversary — same flow bytes, retransmission-inflated bill.

use capprox::RackeConfig;
use congest::model::{Adversary, CommModel};
use congest::primitives::build_bfs_tree;
use congest::treeops::{bcast_subtree_sums, TreeDecomposition};
use congest::Network;
use flowgraph::{gen, spanning, NodeId};
use maxflow::{MaxFlowConfig, PreparedMaxFlow};

fn main() {
    let n = 64usize;
    let g = gen::grid(8, 8, 1.0);
    let tree = spanning::max_weight_spanning_tree(&g, NodeId(0)).unwrap();
    let network = Network::new(g.clone());
    let bfs = build_bfs_tree(&network, NodeId(0)).tree;
    let mut rng = gen::rng(1);
    let dec = TreeDecomposition::sample(
        &tree,
        TreeDecomposition::recommended_probability(n),
        &mut rng,
    );
    let handle = congest::DecomposedTree::from_decomposition(tree.clone(), dec);
    let values: Vec<f64> = (0..n).map(|v| (v % 5) as f64).collect();

    println!("== Lemma 8.2 subtree aggregation on an 8x8 grid, per model ==");
    println!(
        "{:<24} {:>8} {:>10} {:>8} {:>9}",
        "model", "rounds", "messages", "retrans", "max words"
    );
    let mut models = vec![
        ("classic".to_string(), CommModel::Classic),
        ("clique".to_string(), CommModel::Clique),
    ];
    for p in [0.05, 0.1, 0.2] {
        models.push((
            format!("lossy p={p}"),
            CommModel::Lossy(Adversary::lossy(7, p)),
        ));
    }
    let classic = handle.subtree_sums(&network, &bfs, &values);
    for (name, model) in &models {
        let run = handle.subtree_sums_on(model, &network, &bfs, &values);
        assert_eq!(
            run.values.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            classic
                .values
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "{name}: values must agree bit for bit"
        );
        println!(
            "{:<24} {:>8} {:>10} {:>8} {:>9}",
            name,
            run.cost.rounds,
            run.cost.messages,
            run.cost.retransmissions,
            run.cost.max_message_words
        );
    }
    // BCAST(log n): a different regime entirely — no decomposition, no
    // pipelining, one global word per node.
    let bcast = bcast_subtree_sums(&network, &tree, &values);
    assert_eq!(
        bcast.values.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        tree.subtree_sums(&values)
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
    );
    println!(
        "{:<24} {:>8} {:>10} {:>8} {:>9}",
        "bcast(log n)",
        bcast.cost.rounds,
        bcast.cost.messages,
        bcast.cost.retransmissions,
        bcast.cost.max_message_words
    );

    println!();
    println!("== distributed_max_flow(0 -> 63) under the lossy adversary ==");
    let cfg = MaxFlowConfig::default()
        .with_epsilon(0.3)
        .with_racke(RackeConfig::default().with_num_trees(3).with_seed(5))
        .with_phases(Some(1))
        .with_max_iterations_per_phase(15);
    let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
    let classic = session.distributed_max_flow(NodeId(0), NodeId(63)).unwrap();
    println!(
        "classic      : flow {:.4}  total {}",
        classic.result.value, classic.rounds.total
    );
    for p in [0.1, 0.2] {
        let lossy = session
            .distributed_max_flow_on(
                NodeId(0),
                NodeId(63),
                &CommModel::Lossy(Adversary::lossy(11, p)),
            )
            .unwrap();
        assert_eq!(
            lossy.result.value.to_bits(),
            classic.result.value.to_bits(),
            "flows are byte-identical across models"
        );
        println!(
            "lossy p={p:<4}: flow {:.4}  total {}",
            lossy.result.value, lossy.rounds.total
        );
    }
    println!();
    println!("flows agree bit-for-bit on every model; only the bill changes.");
}
