//! Domain scenario: auditing the CONGEST round bill of the distributed
//! algorithm on networks with very different diameters.
//!
//! The paper's bound `(D + √n)·n^{o(1)}` says the algorithm adapts to the
//! network's diameter: on an expander (D = O(log n)) the √n term dominates,
//! on a path (D = Θ(n)) the diameter does. This example prints the measured
//! round breakdown for both extremes and for the Ω(n²)-round push-relabel
//! baseline.
//!
//! ```text
//! cargo run --release -p dmf-bench --example congest_round_audit
//! ```

use baselines::push_relabel;
use capprox::RackeConfig;
use flowgraph::gen;
use maxflow::{distributed_approx_max_flow, MaxFlowConfig};

fn main() {
    let n = 144usize;
    let config = MaxFlowConfig {
        epsilon: 0.25,
        racke: RackeConfig::default().with_num_trees(6).with_seed(1),
        alpha: None,
        max_iterations_per_phase: 2_000,
        phases: Some(2),
        ..Default::default()
    };

    println!(
        "{:<10} {:>6} {:>6} {:>8} {:>14} {:>14} {:>14}",
        "family", "n", "D", "D+sqrt n", "this work", "push-relabel", "per-iteration"
    );
    for fam in [gen::Family::Expander, gen::Family::Grid, gen::Family::Path] {
        let g = fam.generate(n, 11);
        let (s, t) = gen::default_terminals(&g);
        let dist = distributed_approx_max_flow(&g, s, t, &config).expect("connected");
        let pr = push_relabel::distributed_max_flow(&g, s, t, 50_000_000).expect("connected");
        println!(
            "{:<10} {:>6} {:>6} {:>8.0} {:>14} {:>14} {:>14}",
            fam.to_string(),
            dist.num_nodes,
            dist.bfs_depth,
            dist.d_plus_sqrt_n(),
            dist.rounds.total.rounds,
            pr.rounds,
            dist.rounds.per_iteration.rounds,
        );
    }

    println!();
    let g = gen::Family::Expander.generate(n, 11);
    let (s, t) = gen::default_terminals(&g);
    let dist = distributed_approx_max_flow(&g, s, t, &config).expect("connected");
    println!("round breakdown on the expander instance:");
    println!(
        "  BFS construction         : {}",
        dist.rounds.bfs_construction.rounds
    );
    println!(
        "  approximator construction: {}",
        dist.rounds.approximator_construction.rounds
    );
    println!(
        "  gradient descent         : {}",
        dist.rounds.gradient_descent.rounds
    );
    println!("  residual repair          : {}", dist.rounds.repair.rounds);
    println!("  total                    : {}", dist.rounds.total.rounds);
    println!(
        "  flow value               : {:.3} (certified ≥ {:.0}% of optimum)",
        dist.result.value,
        100.0 * dist.result.certified_ratio()
    );

    // Amortized accounting: a prepared session pays the construction items
    // once and each further query only the per-iteration + repair bill.
    println!();
    let mut session = maxflow::PreparedMaxFlow::prepare(&g, &config).expect("connected");
    let bill = session.distributed_bill();
    let iters = dist.result.iterations;
    let queries = 16usize;
    let amortized = bill.amortized_total(&vec![iters; queries]);
    let standalone = dist.rounds.total.repeat(queries as u64);
    println!("amortized session bill for {queries} queries on the expander:");
    println!(
        "  prepare once             : {} rounds",
        bill.prepare_total.rounds
    );
    println!(
        "  per query ({iters} iterations): {} rounds",
        bill.query_rounds(iters).rounds
    );
    println!(
        "  session total            : {} rounds (call-per-query: {})",
        amortized.rounds, standalone.rounds
    );
}
