//! Quickstart: compute a (1+ε)-approximate maximum s–t flow on a small grid
//! and compare it to the exact optimum.
//!
//! ```text
//! cargo run --release -p dmf-bench --example quickstart
//! ```

use baselines::dinic;
use flowgraph::{gen, NodeId};
use maxflow::{approx_max_flow, MaxFlowConfig};

fn main() {
    // A 6x6 unit-capacity grid; ship flow corner to corner.
    let g = gen::grid(6, 6, 1.0);
    let s = NodeId(0);
    let t = NodeId((g.num_nodes() - 1) as u32);

    let config = MaxFlowConfig::default().with_epsilon(0.1);
    let approx = approx_max_flow(&g, s, t, &config).expect("grid is connected");
    let exact = dinic::max_flow(&g, s, t).expect("valid terminals");

    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());
    println!("exact max flow (Dinic)      : {:.4}", exact.value);
    println!("approximate max flow        : {:.4}", approx.value);
    println!("certified upper bound       : {:.4}", approx.upper_bound);
    println!(
        "certified approximation     : {:.1}%",
        100.0 * approx.certified_ratio()
    );
    println!("gradient iterations         : {}", approx.iterations);
    println!(
        "congestion approximator     : {} trees, {} rows",
        approx.approximator.num_trees, approx.approximator.num_rows
    );

    // The flow is feasible: capacities respected, conservation exact.
    let value = approx
        .flow
        .validate_st_flow(&g, s, t, 1e-6)
        .expect("solver returns feasible flows");
    println!("validated flow value        : {value:.4}");
}
