//! Integration tests for the distributed layer: the CONGEST primitives
//! compose correctly across crates, the tree aggregations match their
//! centralized references on arbitrary trees, and the round accounting of the
//! full pipeline behaves like Õ(D + √n) per iteration rather than Õ(n).

use capprox::RackeConfig;
use congest::primitives::{broadcast_over_tree, build_bfs_tree, convergecast_sum};
use congest::treeops::{distributed_prefix_sums, distributed_subtree_sums, TreeDecomposition};
use congest::Network;
use flowgraph::{gen, spanning, NodeId};
use maxflow::MaxFlowConfig;
use proptest::prelude::*;

#[test]
fn bfs_broadcast_convergecast_roundtrip_on_all_families() {
    for fam in gen::Family::ALL {
        let g = fam.generate(30, 3);
        let n = g.num_nodes();
        let network = Network::new(g);
        let bfs = build_bfs_tree(&network, NodeId(0));
        let b = broadcast_over_tree(&network, &bfs.tree, 3.25);
        assert!(
            b.values.iter().all(|&v| (v - 3.25).abs() < 1e-12),
            "family {fam}"
        );
        let values: Vec<f64> = (0..n).map(|v| v as f64).collect();
        let c = convergecast_sum(&network, &bfs.tree, &values);
        let expected: f64 = values.iter().sum();
        assert!((c.root_value - expected).abs() < 1e-9, "family {fam}");
        // Round costs are bounded by the tree depth plus slack.
        assert!(
            b.cost.rounds as usize <= bfs.tree.max_depth() + 2,
            "family {fam}"
        );
        assert!(
            c.cost.rounds as usize <= bfs.tree.max_depth() + 2,
            "family {fam}"
        );
    }
}

#[test]
fn per_iteration_rounds_scale_with_sqrt_n_on_expanders() {
    // On expanders D = O(log n), so the per-iteration cost should grow far
    // slower than linearly in n.
    let mut per_iter = Vec::new();
    for &n in &[64usize, 256] {
        let g = gen::Family::Expander.generate(n, 5);
        let (s, t) = gen::default_terminals(&g);
        let cfg = MaxFlowConfig {
            epsilon: 0.4,
            racke: RackeConfig::default().with_num_trees(3).with_seed(2),
            alpha: None,
            max_iterations_per_phase: 5,
            phases: Some(1),
            ..Default::default()
        };
        let dist = maxflow::distributed_approx_max_flow(&g, s, t, &cfg).unwrap();
        per_iter.push(dist.rounds.per_iteration.rounds as f64);
    }
    let growth = per_iter[1] / per_iter[0];
    // n grew by 4x; Õ(√n) growth is ~2x (plus log factors), far below 4x.
    assert!(
        growth < 3.5,
        "per-iteration rounds grew by {growth:.2}x when n grew 4x: {per_iter:?}"
    );
}

/// Regression pin for PR 3's documented behaviour change: the one-shot
/// `distributed_approx_max_flow` wrapper roots its measured BFS tree at the
/// canonical aggregation root `NodeId(0)` *regardless of the query's `s`*.
/// Two facts follow and must not silently drift again:
///
/// 1. every query-independent component of the round bill (BFS
///    construction, approximator construction, per-iteration, repair) is
///    identical across terminal pairs — including pairs whose `s` has a very
///    different eccentricity than node 0 — and `bfs_depth` always reports
///    node 0's eccentricity;
/// 2. the flows still match the session's byte for byte (the root move
///    changed accounting only, never answers).
#[test]
fn one_shot_round_bill_is_rooted_at_node_zero_not_s() {
    use congest::primitives::build_bfs_tree;
    use congest::Network;
    use maxflow::PreparedMaxFlow;

    let g = gen::grid(5, 5, 1.0);
    let cfg = MaxFlowConfig {
        epsilon: 0.3,
        racke: RackeConfig::default().with_num_trees(3).with_seed(11),
        max_iterations_per_phase: 30,
        phases: Some(1),
        ..Default::default()
    };
    // Node 0 is the grid corner (eccentricity 8); node 12 is the center
    // (eccentricity 4). If the BFS tree were rooted at s, these two queries
    // would report different bfs_depth values.
    let corner_ecc = build_bfs_tree(&Network::new(g.clone()), NodeId(0))
        .tree
        .max_depth();
    let center_ecc = build_bfs_tree(&Network::new(g.clone()), NodeId(12))
        .tree
        .max_depth();
    assert_ne!(corner_ecc, center_ecc, "the pin needs distinct roots");

    let from_corner =
        maxflow::distributed_approx_max_flow(&g, NodeId(0), NodeId(24), &cfg).unwrap();
    let from_center =
        maxflow::distributed_approx_max_flow(&g, NodeId(12), NodeId(3), &cfg).unwrap();

    // Fact 1: the bill's query-independent components do not depend on s.
    assert_eq!(from_corner.bfs_depth, corner_ecc);
    assert_eq!(
        from_center.bfs_depth, corner_ecc,
        "bfs_depth must report node 0's eccentricity even for s = 12"
    );
    assert_eq!(
        from_corner.rounds.bfs_construction,
        from_center.rounds.bfs_construction
    );
    assert_eq!(
        from_corner.rounds.approximator_construction,
        from_center.rounds.approximator_construction
    );
    assert_eq!(
        from_corner.rounds.per_iteration,
        from_center.rounds.per_iteration
    );
    assert_eq!(from_corner.rounds.repair, from_center.rounds.repair);

    // Fact 2: flows match the session byte for byte, for both queries.
    let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
    for (wrapper, (s, t)) in [
        (&from_corner, (NodeId(0), NodeId(24))),
        (&from_center, (NodeId(12), NodeId(3))),
    ] {
        let ses = session.distributed_max_flow(s, t).unwrap();
        assert_eq!(
            wrapper.result.value.to_bits(),
            ses.result.value.to_bits(),
            "s={s}"
        );
        let wrapper_bits: Vec<u64> = wrapper
            .result
            .flow
            .values()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let ses_bits: Vec<u64> = ses
            .result
            .flow
            .values()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(wrapper_bits, ses_bits, "s={s}");
        assert_eq!(wrapper.rounds, ses.rounds, "s={s}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn decomposed_aggregations_match_centralized(seed in 0u64..5000, n in 20usize..80) {
        let g = gen::random_gnp(n, 0.15, (1.0, 3.0), seed);
        let tree = spanning::max_weight_spanning_tree(&g, NodeId(0)).unwrap();
        let network = Network::new(g);
        let bfs = build_bfs_tree(&network, NodeId(0)).tree;
        let mut rng = gen::rng(seed);
        let dec = TreeDecomposition::sample(&tree, 0.25, &mut rng);
        let values: Vec<f64> = (0..n).map(|v| ((v * 31 + seed as usize) % 11) as f64 - 5.0).collect();
        let up = distributed_subtree_sums(&network, &tree, &dec, &bfs, &values);
        let down = distributed_prefix_sums(&network, &tree, &dec, &bfs, &values);
        let expected_up = tree.subtree_sums(&values);
        let expected_down = tree.prefix_sums_from_root(&values);
        for v in 0..n {
            prop_assert!((up.values[v] - expected_up[v]).abs() < 1e-9);
            prop_assert!((down.values[v] - expected_down[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn decomposition_components_partition_the_tree(seed in 0u64..5000, n in 20usize..120) {
        let g = gen::path(n, 1.0);
        let tree = spanning::bfs_tree(&g, NodeId(0)).unwrap();
        let mut rng = gen::rng(seed);
        let dec = TreeDecomposition::sample(&tree, TreeDecomposition::recommended_probability(n), &mut rng);
        // Labels are dense and component roots are consistent.
        prop_assert_eq!(dec.component.len(), n);
        let max_label = dec.component.iter().copied().max().unwrap();
        prop_assert_eq!(max_label + 1, dec.num_components);
        for (c, &root) in dec.component_roots.iter().enumerate() {
            prop_assert_eq!(dec.component[root.index()], c);
        }
    }
}
