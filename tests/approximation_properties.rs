//! Property-based tests (proptest) for the core invariants of the paper's
//! machinery: feasibility and bracketing of the max-flow solver, the
//! congestion-approximator sandwich, tree-routing conservation, and cut
//! preservation by the sparsifier.

use capprox::{exhaustive_opt_congestion, CongestionApproximator, RackeConfig};
use flowgraph::{cut, gen, Demand, NodeId};
use maxflow::MaxFlowConfig;
use proptest::prelude::*;

/// A small random connected graph described by (n, edge probability seed).
fn small_graph_strategy() -> impl Strategy<Value = (usize, u64)> {
    (6usize..14, 0u64..5000)
}

fn build(n: usize, seed: u64) -> flowgraph::Graph {
    gen::random_gnp(n, 0.4, (1.0, 5.0), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn solver_flow_is_feasible_and_bracketed((n, seed) in small_graph_strategy()) {
        let g = build(n, seed);
        let (s, t) = gen::default_terminals(&g);
        let config = MaxFlowConfig {
            epsilon: 0.25,
            racke: RackeConfig::default().with_num_trees(5).with_seed(seed),
            alpha: None,
            max_iterations_per_phase: 1_500,
            phases: Some(2),
            ..Default::default()
        };
        let result = maxflow::approx_max_flow(&g, s, t, &config).unwrap();
        // Feasible…
        let value = result.flow.validate_st_flow(&g, s, t, 1e-6).unwrap();
        prop_assert!((value - result.value).abs() < 1e-6 * (1.0 + value.abs()));
        // …and bracketed by the certificate and the exhaustive min cut.
        let mincut = cut::exhaustive_min_st_cut(&g, s, t);
        prop_assert!(result.value <= mincut + 1e-6);
        prop_assert!(mincut <= result.upper_bound + 1e-6);
        prop_assert!(result.value > 0.0);
    }

    #[test]
    fn approximator_sandwiches_opt((n, seed) in small_graph_strategy(), amounts in proptest::collection::vec(-3.0f64..3.0, 6..14)) {
        let g = build(n, seed);
        let r = CongestionApproximator::build(
            &g,
            &RackeConfig::default().with_num_trees(4).with_seed(seed),
        )
        .unwrap();
        // Build a balanced demand from the raw amounts.
        let mut b = Demand::zeros(g.num_nodes());
        for v in g.nodes() {
            let x = amounts.get(v.index()).copied().unwrap_or(0.0);
            b.set(v, x);
        }
        let shift = b.total() / g.num_nodes() as f64;
        for v in g.nodes() {
            b.set(v, b.get(v) - shift);
        }
        let lower = r.congestion_lower_bound(&b);
        let upper = r.congestion_upper_bound(&g, &b);
        let opt = exhaustive_opt_congestion(&g, &b);
        prop_assert!(lower <= opt + 1e-6, "lower {lower} > opt {opt}");
        prop_assert!(upper + 1e-6 >= opt, "upper {upper} < opt {opt}");
    }

    #[test]
    fn tree_routing_conserves_any_balanced_demand((n, seed) in small_graph_strategy(), amounts in proptest::collection::vec(-2.0f64..2.0, 6..14)) {
        let g = build(n, seed);
        let tree = flowgraph::max_weight_spanning_tree(&g, NodeId(0)).unwrap();
        let mut b = Demand::zeros(g.num_nodes());
        for v in g.nodes() {
            b.set(v, amounts.get(v.index()).copied().unwrap_or(0.0));
        }
        let shift = b.total() / g.num_nodes() as f64;
        for v in g.nodes() {
            b.set(v, b.get(v) - shift);
        }
        let f = tree.route_demand_on_graph(&g, &b).unwrap();
        let excess = f.excess(&g);
        for v in g.nodes() {
            prop_assert!((excess[v.index()] - b.get(v)).abs() < 1e-9);
        }
    }

    #[test]
    fn sparsifier_preserves_cuts_within_factor((n, seed) in (8usize..14, 0u64..2000)) {
        let g = gen::complete(n, 1.0);
        let s = capprox::sparsify(
            &g,
            &capprox::SparsifyConfig {
                epsilon: 0.3,
                oversampling: 4.0,
                seed,
            },
        );
        let (hi, lo) = capprox::sparsify::exhaustive_cut_error(&g, &s.graph);
        prop_assert!(hi <= 1.9, "cut inflated by {hi}");
        prop_assert!(lo >= 0.35, "cut deflated to {lo}");
    }

    #[test]
    fn dinic_matches_exhaustive_min_cut((n, seed) in small_graph_strategy()) {
        let g = build(n, seed);
        let (s, t) = gen::default_terminals(&g);
        let exact = baselines::dinic::max_flow(&g, s, t).unwrap();
        let mincut = cut::exhaustive_min_st_cut(&g, s, t);
        prop_assert!((exact.value - mincut).abs() < 1e-6);
    }
}
