//! Cross-crate integration tests: the full pipeline (generators → sparsifier
//! → low-stretch trees → congestion approximator → AlmostRoute → max flow)
//! against the exact baselines.

use baselines::{dinic, push_relabel, trivial};
use capprox::{CongestionApproximator, RackeConfig};
use flowgraph::{gen, NodeId};
use maxflow::{approx_max_flow, distributed_approx_max_flow, MaxFlowConfig};

fn config(eps: f64, seed: u64) -> MaxFlowConfig {
    MaxFlowConfig {
        epsilon: eps,
        // `num_trees: None` selects the Lemma 3.3 default of 2·⌈log2 n⌉ + 1
        // sampled trees, which is what the quality of the solver relies on.
        racke: RackeConfig::default().with_seed(seed),
        alpha: None,
        max_iterations_per_phase: 4_000,
        phases: Some(3),
        ..Default::default()
    }
}

#[test]
fn approximation_close_to_exact_on_every_family() {
    for fam in gen::Family::ALL {
        let g = fam.generate(40, 7);
        let (s, t) = gen::default_terminals(&g);
        let exact = dinic::max_flow(&g, s, t).unwrap();
        let approx = approx_max_flow(&g, s, t, &config(0.1, 2)).unwrap();
        // Feasibility is unconditional.
        approx.flow.validate_st_flow(&g, s, t, 1e-6).unwrap();
        assert!(
            approx.value <= exact.value + 1e-6,
            "family {fam}: approximate value {} exceeds the exact optimum {}",
            approx.value,
            exact.value
        );
        // Quality floor that every family must clear with this small
        // iteration budget; the experiment harness (E2) reports the measured
        // ratios, which are far higher for most families (the layered family
        // with many parallel paths is the hardest for the tree-based
        // approximator at this budget).
        assert!(
            approx.value >= 0.3 * exact.value,
            "family {fam}: value {} is below 0.3x the optimum {}",
            approx.value,
            exact.value
        );
        // The certificate brackets the optimum.
        assert!(exact.value <= approx.upper_bound + 1e-6, "family {fam}");
    }
}

#[test]
fn exact_baselines_agree_with_each_other() {
    for seed in 0..5 {
        let g = gen::random_gnp(20, 0.3, (1.0, 6.0), seed);
        let (s, t) = gen::default_terminals(&g);
        let d = dinic::max_flow(&g, s, t).unwrap();
        let pr = push_relabel::max_flow(&g, s, t).unwrap();
        let dpr = push_relabel::distributed_max_flow(&g, s, t, 10_000_000).unwrap();
        assert!((d.value - pr.value).abs() < 1e-6, "seed {seed}");
        assert!((d.value - dpr.value).abs() < 1e-6, "seed {seed}");
        let collect = trivial::collect_and_solve(&g, s, t).unwrap();
        assert!((collect.value - d.value).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn single_tree_baseline_never_beats_the_solver_by_much() {
    // The solver contains the single-tree routing as a fallback, so it can
    // never be worse than it.
    for fam in [gen::Family::Grid, gen::Family::Random, gen::Family::Layered] {
        let g = fam.generate(36, 9);
        let (s, t) = gen::default_terminals(&g);
        let tree = trivial::single_tree_flow(&g, s, t).unwrap();
        let approx = approx_max_flow(&g, s, t, &config(0.2, 4)).unwrap();
        assert!(
            approx.value + 1e-9 >= tree.value,
            "family {fam}: solver {} below the single-tree baseline {}",
            approx.value,
            tree.value
        );
    }
}

#[test]
fn distributed_and_centralized_agree_on_the_flow_value() {
    let g = gen::Family::Grid.generate(49, 3);
    let (s, t) = gen::default_terminals(&g);
    let cfg = config(0.25, 6);
    let central = approx_max_flow(&g, s, t, &cfg).unwrap();
    let distributed = distributed_approx_max_flow(&g, s, t, &cfg).unwrap();
    assert!((central.value - distributed.result.value).abs() < 1e-9);
    assert_eq!(central.iterations, distributed.result.iterations);
    assert!(distributed.rounds.total.rounds > 0);
}

#[test]
fn reusing_the_approximator_across_terminal_pairs() {
    let g = gen::Family::Random.generate(36, 15);
    let r =
        CongestionApproximator::build(&g, &RackeConfig::default().with_num_trees(6).with_seed(1))
            .unwrap();
    let cfg = config(0.2, 1);
    for (s, t) in [(0u32, 35u32), (3, 30), (10, 20)] {
        let (s, t) = (NodeId(s), NodeId(t));
        let exact = dinic::max_flow(&g, s, t).unwrap();
        let approx = maxflow::approx_max_flow_with(&g, &r, s, t, &cfg).unwrap();
        approx.flow.validate_st_flow(&g, s, t, 1e-6).unwrap();
        assert!(approx.value <= exact.value + 1e-6);
        assert!(approx.value >= 0.5 * exact.value, "pair ({s}, {t})");
    }
}
