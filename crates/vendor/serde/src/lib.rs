//! Offline compile-surface shim for `serde`.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so that they are ready for real
//! serialization, but this build environment has no registry access. This
//! shim keeps those annotations compiling: [`Serialize`] and [`Deserialize`]
//! are marker traits blanket-implemented for every type, and the derives
//! (re-exported from the local `serde_derive`) emit nothing. No actual
//! serialization is performed anywhere in the workspace today; replace this
//! shim with the real `serde` when a registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`; blanket-implemented for all
/// types by this shim.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`; blanket-implemented for all
/// types by this shim (the lifetime parameter mirrors the real trait).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
