//! Offline vendored ChaCha-based RNGs ([`ChaCha8Rng`], [`ChaCha12Rng`],
//! [`ChaCha20Rng`]).
//!
//! The workspace builds without registry access, so this crate implements the
//! ChaCha stream cipher (Bernstein 2008) directly against the local `rand`
//! trait shim. The keystream is genuine ChaCha over a SplitMix64-expanded
//! seed; output is *not* bit-compatible with upstream `rand_chacha` (which
//! uses a different word serialization), but it is a high-quality generator
//! that is deterministic for a fixed seed on every platform, which is the
//! property the workspace's seeded tests and experiments need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// The ChaCha block function with `R` double-rounds on the given state.
fn chacha_block<const R: usize>(input: &[u32; 16]) -> [u32; 16] {
    #[inline(always)]
    fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    let mut x = *input;
    for _ in 0..R {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $double_rounds:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            /// Constant + key + counter + nonce block layout.
            state: [u32; 16],
            /// Buffered keystream words from the current block.
            buffer: [u32; 16],
            /// Next unread index into `buffer`; 16 means "exhausted".
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block::<$double_rounds>(&self.state);
                // 64-bit block counter in words 12..14.
                let (lo, carry) = self.state[12].overflowing_add(1);
                self.state[12] = lo;
                if carry {
                    self.state[13] = self.state[13].wrapping_add(1);
                }
                self.index = 0;
            }

            /// Returns the number of keystream words consumed so far (for
            /// debugging).
            pub fn get_word_pos(&self) -> u128 {
                // With a block buffered (index < 16) the counter has already
                // advanced past it; with the buffer exhausted (index == 16)
                // exactly `counter` whole blocks have been consumed.
                let block = ((self.state[13] as u128) << 32 | self.state[12] as u128)
                    .wrapping_sub(if self.index < 16 { 1 } else { 0 });
                block * 16 + (self.index % 16) as u128
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut state = [0u32; 16];
                // "expand 32-byte k" sigma constants.
                state[0] = 0x6170_7865;
                state[1] = 0x3320_646e;
                state[2] = 0x7962_2d32;
                state[3] = 0x6b20_6574;
                for i in 0..8 {
                    state[4 + i] = u32::from_le_bytes([
                        seed[4 * i],
                        seed[4 * i + 1],
                        seed[4 * i + 2],
                        seed[4 * i + 3],
                    ]);
                }
                // Counter and nonce start at zero.
                $name {
                    state,
                    buffer: [0u32; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let w = self.buffer[self.index];
                self.index += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds — the workspace's default seeded generator.
    ChaCha8Rng,
    4
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    6
);
chacha_rng!(
    /// ChaCha with 20 rounds.
    ChaCha20Rng,
    10
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams of distinct seeds should not collide");
    }

    #[test]
    fn chacha20_rfc7539_block_function() {
        // RFC 7539 §2.3.2 test vector for the ChaCha20 block function.
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for (i, w) in state[4..12].iter_mut().enumerate() {
            let b = 4 * i as u8;
            *w = u32::from_le_bytes([b, b + 1, b + 2, b + 3]);
        }
        state[12] = 1;
        state[13] = 0x09000000;
        state[14] = 0x4a000000;
        state[15] = 0x00000000;
        let out = chacha_block::<10>(&state);
        assert_eq!(out[0], 0xe4e7f110);
        assert_eq!(out[15], 0x4e3c50a2);
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn counter_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u64> = (0..40).map(|_| rng.next_u64()).collect();
        let mut replay = ChaCha8Rng::seed_from_u64(3);
        let second: Vec<u64> = (0..40).map(|_| replay.next_u64()).collect();
        assert_eq!(first, second);
    }
}
