//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in an environment without access to crates.io, so
//! the small slice of `rand` that the algorithms actually use is implemented
//! locally: [`RngCore`], [`SeedableRng`] (with the SplitMix64-based
//! `seed_from_u64`), the [`Rng`] extension trait with `gen_range` /
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. The stream values are not
//! bit-compatible with upstream `rand`, but every generator in the workspace
//! is seeded explicitly, so results are deterministic across runs and
//! platforms — which is what the test oracles rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with SplitMix64 the
    /// same way upstream `rand` does (so distinct small seeds give unrelated
    /// streams).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// A range that supports uniform sampling of a single value.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 53 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening multiply keeps the modulo bias negligible for the
                // span sizes used here.
                let hi = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` (mirroring upstream `rand`, so a
    /// broken probability formula fails loudly instead of silently).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} is outside [0.0, 1.0]"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Commonly used traits, mirroring `rand::prelude`.
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but serviceable mixer for trait-level tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(1.0f64..=5.0);
            assert!((1.0..=5.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
