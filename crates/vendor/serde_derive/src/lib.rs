//! No-op `Serialize` / `Deserialize` derives for the offline `serde` shim.
//!
//! The sibling `serde` shim implements its marker traits for all types via
//! blanket impls, so these derives have nothing to emit: they only exist so
//! that `#[derive(Serialize, Deserialize)]` in the workspace compiles
//! unchanged. Swap both shims for the real crates once registry access is
//! available.

use proc_macro::TokenStream;

/// Accepts the annotated item and emits no code (blanket impls in the `serde`
/// shim already cover it). Declares the `serde` helper attribute so field
/// annotations like `#[serde(skip)]` compile and carry over unchanged to the
/// real derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and emits no code (blanket impls in the `serde`
/// shim already cover it). Declares the `serde` helper attribute so field
/// annotations like `#[serde(skip)]` compile and carry over unchanged to the
/// real derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
