//! Offline mini-criterion.
//!
//! The workspace's benches are written against the `criterion` API, but this
//! build environment has no registry access, so the used subset is
//! implemented locally with genuine wall-clock measurement:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (benches must set
//! `harness = false`, as with real criterion).
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples, and
//! reports min/mean/max nanoseconds per iteration on stdout. When the
//! `BENCH_JSON` environment variable names a file, one JSON line per
//! benchmark is appended to it — the repository's `BENCH_seed.json` baseline
//! is produced this way. Two environment overrides control the sample
//! count, in precedence order: `MINI_CRITERION_SAMPLES` (used to smoke-run
//! benches in CI) wins over `BENCH_SAMPLES` (used when recording baselines,
//! so noisy single-CPU hosts can raise every group's sample count at once —
//! the CI baseline gates read the recorded `samples` field and refuse to
//! judge timing bounds measured from fewer than `BENCH_SAMPLES` samples).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::Instant;

/// Opaque identity function that prevents the optimizer from deleting a
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work performed per benchmark iteration, mirroring `criterion::Throughput`:
/// when set on a group, reports gain `elements_per_sec` / `bytes_per_sec`
/// rates (and the corresponding fields in the `BENCH_JSON` records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements (e.g. queries).
    Elements(u64),
    /// The routine processes this many bytes.
    Bytes(u64),
}

/// Times closures handed to it by benchmark routines.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<u128>,
    samples_target: usize,
}

impl Bencher {
    /// Runs `routine` through warm-up plus `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: two untimed runs to populate caches/allocator state.
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples_ns.clear();
        for _ in 0..self.samples_target {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }
}

#[derive(Debug)]
struct Report {
    group: String,
    id: String,
    min_ns: u128,
    mean_ns: u128,
    max_ns: u128,
    samples: usize,
    /// All timed samples, ascending — kept for the percentile fields.
    sorted_ns: Vec<u128>,
    throughput: Option<Throughput>,
    threads: Option<usize>,
}

/// Nearest-rank percentile (`ceil(q·n)`-th smallest) of an ascending sample
/// list. The conventional definition for tiny sample counts: no
/// interpolation, always an actually-observed value.
fn nearest_rank(sorted: &[u128], q: f64) -> u128 {
    let n = sorted.len();
    debug_assert!(n > 0);
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

impl Report {
    /// `(json_fields, human_suffix)` for the configured throughput, rates
    /// computed from the mean sample.
    fn throughput_rendering(&self) -> (String, String) {
        let Some(throughput) = self.throughput else {
            return (String::new(), String::new());
        };
        let (label, amount) = match throughput {
            Throughput::Elements(n) => ("elements", n),
            Throughput::Bytes(n) => ("bytes", n),
        };
        let per_sec = amount as f64 * 1e9 / (self.mean_ns.max(1) as f64);
        (
            format!(",\"throughput_{label}\":{amount},\"{label}_per_sec\":{per_sec:.3}"),
            format!("  {per_sec:.1} {label}/s"),
        )
    }

    /// `(json_fields, human_suffix)` for the per-element latency percentiles
    /// of throughput groups: `p50_ns` / `p99_ns` are the nearest-rank 50th /
    /// 99th percentile **sample**, divided by the per-iteration element (or
    /// byte) count — the tail latency a single element experienced, which a
    /// mean-based rate hides. Empty for groups without a throughput.
    fn latency_rendering(&self) -> (String, String) {
        let Some(throughput) = self.throughput else {
            return (String::new(), String::new());
        };
        let (label, amount) = match throughput {
            Throughput::Elements(n) => ("element", n),
            Throughput::Bytes(n) => ("byte", n),
        };
        if self.sorted_ns.is_empty() || amount == 0 {
            return (String::new(), String::new());
        }
        let p50 = nearest_rank(&self.sorted_ns, 0.50) as f64 / amount as f64;
        let p99 = nearest_rank(&self.sorted_ns, 0.99) as f64 / amount as f64;
        (
            format!(",\"p50_ns\":{p50:.3},\"p99_ns\":{p99:.3}"),
            format!("  p50 {p50:.0} ns/{label}  p99 {p99:.0} ns/{label}"),
        )
    }

    /// `(json_fields, human_suffix)` for the configured thread count. The
    /// JSON additionally records `host_cpus` — the hardware parallelism of
    /// the recording machine — so downstream gates can tell a genuine
    /// scaling measurement from one taken on a box with fewer cores than
    /// the benchmark's thread count.
    fn threads_rendering(&self) -> (String, String) {
        let Some(threads) = self.threads else {
            return (String::new(), String::new());
        };
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        (
            format!(",\"threads\":{threads},\"host_cpus\":{host_cpus}"),
            format!("  [{threads} threads]"),
        )
    }
}

fn emit(report: &Report) {
    let (json_throughput, human_throughput) = report.throughput_rendering();
    let (json_latency, human_latency) = report.latency_rendering();
    let (json_threads, human_threads) = report.threads_rendering();
    println!(
        "bench {group}/{id:<40} min {min} ns  mean {mean} ns  max {max} ns  ({n} samples){tp}{lat}{th}",
        group = report.group,
        id = report.id,
        min = report.min_ns,
        mean = report.mean_ns,
        max = report.max_ns,
        n = report.samples,
        tp = human_throughput,
        lat = human_latency,
        th = human_threads,
    );
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"group\":\"{}\",\"id\":\"{}\",\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{},\"samples\":{}{}{}{}}}",
                report.group, report.id, report.min_ns, report.mean_ns, report.max_ns, report.samples,
                json_throughput, json_latency, json_threads,
            );
        }
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    threads: Option<usize>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares the work performed per iteration of the benchmarks that
    /// follow; reports gain a derived throughput rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Declares the worker-thread count the benchmarks that follow run with
    /// (a local extension for the parallel-scaling benches, not part of the
    /// real criterion API): reports gain `threads` and `host_cpus` fields in
    /// `BENCH_JSON` so scaling gates can compare like with like.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = Some(threads);
        self
    }

    fn effective_samples(&self) -> usize {
        resolve_samples(
            std::env::var("MINI_CRITERION_SAMPLES").ok().as_deref(),
            std::env::var("BENCH_SAMPLES").ok().as_deref(),
            self.sample_size,
        )
    }

    /// Benchmarks `routine` under the given id.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            samples_target: self.effective_samples(),
        };
        routine(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Benchmarks `routine` with an input value under the given id.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            samples_target: self.effective_samples(),
        };
        routine(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Finishes the group (reports are emitted eagerly, so this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.samples_ns.is_empty() {
            return;
        }
        let n = bencher.samples_ns.len();
        let mut sorted_ns = bencher.samples_ns.clone();
        sorted_ns.sort_unstable();
        emit(&Report {
            group: self.name.clone(),
            id: id.id.clone(),
            min_ns: sorted_ns[0],
            mean_ns: sorted_ns.iter().sum::<u128>() / n as u128,
            max_ns: sorted_ns[n - 1],
            samples: n,
            sorted_ns,
            throughput: self.throughput,
            threads: self.threads,
        });
    }
}

/// Sample-count resolution: the CI smoke override (`MINI_CRITERION_SAMPLES`)
/// wins over the baseline-recording override (`BENCH_SAMPLES`), which wins
/// over the group's configured default; at least one sample always runs.
fn resolve_samples(mini: Option<&str>, bench: Option<&str>, default: usize) -> usize {
    mini.and_then(|s| s.parse().ok())
        .or_else(|| bench.and_then(|s| s.parse().ok()))
        .unwrap_or(default)
        .max(1)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            threads: None,
            _criterion: self,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<R>(&mut self, id: &str, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, routine);
        group.finish();
        self
    }
}

/// Declares a function running the listed benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(0.5).id, "0.5");
    }

    #[test]
    fn sample_overrides_resolve_in_precedence_order() {
        // No overrides: the group default, floored at 1.
        assert_eq!(resolve_samples(None, None, 3), 3);
        assert_eq!(resolve_samples(None, None, 0), 1);
        // BENCH_SAMPLES raises the baseline-recording count.
        assert_eq!(resolve_samples(None, Some("5"), 3), 5);
        // The CI smoke override wins over both.
        assert_eq!(resolve_samples(Some("1"), Some("5"), 3), 1);
        // Garbage values fall through to the next layer.
        assert_eq!(resolve_samples(Some("nope"), Some("4"), 3), 4);
        assert_eq!(resolve_samples(Some("nope"), Some("bad"), 3), 3);
    }

    #[test]
    fn nearest_rank_percentiles_pick_observed_samples() {
        let sorted = [10u128, 20, 30, 40, 50];
        // ceil(0.5·5) = 3rd smallest; ceil(0.99·5) = 5th smallest.
        assert_eq!(nearest_rank(&sorted, 0.50), 30);
        assert_eq!(nearest_rank(&sorted, 0.99), 50);
        assert_eq!(nearest_rank(&sorted, 1.0), 50);
        // A single sample is every percentile.
        assert_eq!(nearest_rank(&[7], 0.50), 7);
        assert_eq!(nearest_rank(&[7], 0.99), 7);
        // q = 0 clamps to the smallest observed sample.
        assert_eq!(nearest_rank(&sorted, 0.0), 10);
    }

    #[test]
    fn latency_percentiles_render_per_element() {
        let report = Report {
            group: "g".into(),
            id: "i".into(),
            min_ns: 100,
            mean_ns: 200,
            max_ns: 1000,
            samples: 4,
            sorted_ns: vec![100, 200, 300, 1000],
            throughput: Some(Throughput::Elements(100)),
            threads: None,
        };
        let (json, human) = report.latency_rendering();
        // p50 = 200 ns / 100 elements = 2 ns; p99 = 1000 / 100 = 10 ns.
        assert_eq!(json, ",\"p50_ns\":2.000,\"p99_ns\":10.000");
        assert!(human.contains("p50 2 ns/element"));
        assert!(human.contains("p99 10 ns/element"));

        // No throughput declared: no percentile fields.
        let bare = Report {
            throughput: None,
            ..report
        };
        assert_eq!(bare.latency_rendering(), (String::new(), String::new()));
    }

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.finish();
        // 2 warm-up + 3 timed samples.
        assert_eq!(ran, 5);
    }
}
