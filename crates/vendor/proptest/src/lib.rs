//! Offline deterministic mini-proptest.
//!
//! The workspace's property tests are written against the `proptest` API, but
//! this build environment has no registry access, so this crate implements
//! the used subset locally:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, `#[test]`
//!   attributes and `pattern in strategy` arguments),
//! * [`strategy::Strategy`] with implementations for numeric ranges, tuples
//!   and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * a deterministic [`test_runner`]: every case's RNG seed is derived from
//!   the test name and case index, so runs are reproducible across machines
//!   with no flakiness, and failing case seeds are persisted to
//!   `proptest-regressions/` files that are replayed first on the next run.
//!
//! Unlike real proptest there is no shrinking: the persisted seed reproduces
//! the failing case exactly, which is sufficient for the oracle-style suites
//! in this repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of values produced.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length sampled from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Creates a strategy producing vectors whose elements come from
    /// `element` and whose length is sampled uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case execution, seed derivation and regression
    //! persistence.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::io::Write as _;
    use std::path::PathBuf;

    /// Per-test configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of fresh cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` fresh cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!` and friends inside a case body.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The RNG handed to strategies: ChaCha8 seeded per case.
    #[derive(Debug, Clone)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Creates the RNG for one case from its persisted/derived seed.
        pub fn from_case_seed(seed: u64) -> Self {
            TestRng(ChaCha8Rng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stable FNV-1a hash used to derive the per-test base seed from its
    /// name, so seeds do not depend on link order or platform.
    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn regression_file(test_name: &str) -> Option<PathBuf> {
        let dir = std::env::var_os("CARGO_MANIFEST_DIR")?;
        let mut p = PathBuf::from(dir);
        p.push("proptest-regressions");
        p.push(format!("{test_name}.txt"));
        Some(p)
    }

    /// Parses `cc <seed> [# comment]` lines from a regression file.
    pub(crate) fn parse_regression_lines(contents: &str) -> Vec<u64> {
        contents
            .lines()
            .filter_map(|l| l.trim().strip_prefix("cc "))
            .filter_map(|s| s.split_whitespace().next())
            .filter_map(|s| s.parse::<u64>().ok())
            .collect()
    }

    fn load_regressions(test_name: &str) -> Vec<u64> {
        let Some(path) = regression_file(test_name) else {
            return Vec::new();
        };
        let Ok(contents) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        parse_regression_lines(&contents)
    }

    fn persist_regression(test_name: &str, seed: u64) {
        let Some(path) = regression_file(test_name) else {
            return;
        };
        if load_regressions(test_name).contains(&seed) {
            return;
        }
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                f,
                "cc {seed} # shrunk-free reproduction seed; delete the line once fixed"
            );
        }
    }

    /// The effective case count: the configured count scaled by the
    /// `PROPTEST_CASES_MULTIPLIER` environment variable (the scheduled CI
    /// stress job sets it to 10 to sweep 10× the seeds without the suites
    /// hard-coding two budgets).
    fn effective_cases(configured: u32) -> u32 {
        scale_cases(
            configured,
            std::env::var("PROPTEST_CASES_MULTIPLIER").ok().as_deref(),
        )
    }

    /// Pure scaling rule behind `effective_cases`: a parsable multiplier
    /// scales the configured count (floored at 1×); anything else is 1×.
    pub(crate) fn scale_cases(configured: u32, multiplier: Option<&str>) -> u32 {
        let multiplier = multiplier
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(1)
            .max(1);
        configured.saturating_mul(multiplier)
    }

    /// Replays persisted regression seeds, then runs `config.cases` fresh
    /// deterministic cases (scaled by `PROPTEST_CASES_MULTIPLIER`). Panics
    /// (and persists the seed) on the first failing case.
    pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(test_name);
        let regressions = load_regressions(test_name);
        let fresh = (0..effective_cases(config.cases) as u64)
            .map(|i| base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        for (kind, seed) in regressions
            .iter()
            .copied()
            .map(|s| ("regression", s))
            .chain(fresh.map(|s| ("case", s)))
        {
            let mut rng = TestRng::from_case_seed(seed);
            // Catch panics from the case body (e.g. a stray .unwrap()) so
            // that the reproduction seed is persisted for those failures
            // too, not only for prop_assert! ones.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    persist_regression(test_name, seed);
                    panic!(
                        "proptest case failed for `{test_name}` ({kind} seed {seed}): {e}\n\
                         the seed was persisted to proptest-regressions/{test_name}.txt \
                         and will be replayed first on the next run"
                    );
                }
                Err(payload) => {
                    persist_regression(test_name, seed);
                    eprintln!(
                        "proptest case panicked for `{test_name}` ({kind} seed {seed}); \
                         the seed was persisted to proptest-regressions/{test_name}.txt \
                         and will be replayed first on the next run"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @__impl($cfg) $($rest)* }
    };
    (@__impl($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(stringify!($name), &config, |__rng| {
                    $(let $parm = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @__impl($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not the
/// whole process) so the runner can report the reproduction seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 5usize..20, x in -1.0f64..1.0) {
            prop_assert!((5..20).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn tuples_and_vectors_sample((a, b) in (0u64..100, 1usize..4), v in crate::collection::vec(0i32..10, 2..6)) {
            prop_assert!(a < 100);
            prop_assert!((1..4).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }

    #[test]
    fn case_multiplier_scales_and_defaults_to_identity() {
        use crate::test_runner::scale_cases;
        assert_eq!(scale_cases(12, None), 12);
        assert_eq!(scale_cases(12, Some("10")), 120);
        assert_eq!(scale_cases(12, Some("0")), 12, "multiplier floors at 1x");
        assert_eq!(scale_cases(12, Some("nope")), 12);
        assert_eq!(scale_cases(u32::MAX, Some("10")), u32::MAX, "saturates");
    }

    #[test]
    fn regression_lines_round_trip_with_comments() {
        // The persisted format carries a trailing comment; the loader must
        // still recover the seed (this once regressed to an empty parse).
        let contents = "cc 5879568024741218178 # shrunk-free reproduction seed\n\
                        cc 42\n\
                        not a regression line\n";
        assert_eq!(
            crate::test_runner::parse_regression_lines(contents),
            vec![5879568024741218178, 42]
        );
    }

    #[test]
    fn same_name_same_values() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u64..1000, 0usize..50);
        let mut r1 = TestRng::from_case_seed(99);
        let mut r2 = TestRng::from_case_seed(99);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
