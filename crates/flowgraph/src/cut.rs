//! Edge cuts induced by node sets.
//!
//! Congestion approximators (paper §2) are built from cuts: a cut's congestion
//! under a demand `b` is the net demand that must cross it divided by its
//! capacity. [`Cut`] represents one side `S ⊆ V` of a cut and answers
//! capacity, crossing-edge and demand-congestion queries.

use serde::{Deserialize, Serialize};

use crate::flow::{Demand, FlowVec};
use crate::graph::{EdgeId, Graph, NodeId};

/// One side of an edge cut: the set `S` of nodes, stored as a membership
/// bitmap over the graph's node set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cut {
    side: Vec<bool>,
}

impl Cut {
    /// Creates a cut from the characteristic vector of `S`.
    pub fn from_membership(side: Vec<bool>) -> Self {
        Cut { side }
    }

    /// Creates a cut from an explicit list of nodes on the `S` side.
    pub fn from_nodes(n: usize, nodes: &[NodeId]) -> Self {
        let mut side = vec![false; n];
        for v in nodes {
            side[v.index()] = true;
        }
        Cut { side }
    }

    /// The singleton cut `{v}`.
    pub fn singleton(n: usize, v: NodeId) -> Self {
        let mut side = vec![false; n];
        side[v.index()] = true;
        Cut { side }
    }

    /// Number of nodes in the underlying graph.
    pub fn len(&self) -> usize {
        self.side.len()
    }

    /// Returns `true` if the membership vector is empty.
    pub fn is_empty(&self) -> bool {
        self.side.is_empty()
    }

    /// Returns `true` if node `v` lies on the `S` side.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.side[v.index()]
    }

    /// Number of nodes on the `S` side.
    pub fn side_size(&self) -> usize {
        self.side.iter().filter(|&&b| b).count()
    }

    /// Returns `true` if the cut is proper (neither side is empty).
    pub fn is_proper(&self) -> bool {
        let k = self.side_size();
        k > 0 && k < self.len()
    }

    /// Returns `true` if the cut separates `s` from `t`.
    pub fn separates(&self, s: NodeId, t: NodeId) -> bool {
        self.contains(s) != self.contains(t)
    }

    /// Edges crossing the cut.
    pub fn crossing_edges<'a>(&'a self, g: &'a Graph) -> impl Iterator<Item = EdgeId> + 'a {
        g.edges().filter_map(move |(id, e)| {
            if self.contains(e.tail) != self.contains(e.head) {
                Some(id)
            } else {
                None
            }
        })
    }

    /// Total capacity of the crossing edges.
    pub fn capacity(&self, g: &Graph) -> f64 {
        self.crossing_edges(g).map(|e| g.capacity(e)).sum()
    }

    /// Net demand that must cross from outside `S` into `S` (the sum of
    /// demand inside `S`, since total demand is balanced).
    pub fn net_demand(&self, d: &Demand) -> f64 {
        d.values()
            .iter()
            .enumerate()
            .filter(|(v, _)| self.side[*v])
            .map(|(_, b)| *b)
            .sum()
    }

    /// Congestion of the cut under demand `d`: `|net demand| / capacity`.
    ///
    /// Returns 0 when the cut has zero capacity and zero net demand, and
    /// `f64::INFINITY` when demand must cross a zero-capacity cut.
    pub fn demand_congestion(&self, g: &Graph, d: &Demand) -> f64 {
        let cap = self.capacity(g);
        let need = self.net_demand(d).abs();
        if cap <= 0.0 {
            if need <= 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            need / cap
        }
    }

    /// Net flow crossing the cut into `S` under flow `f` (positive entries
    /// follow each edge's fixed orientation).
    pub fn net_flow(&self, g: &Graph, f: &FlowVec) -> f64 {
        let mut total = 0.0;
        for (id, e) in g.edges() {
            let tail_in = self.contains(e.tail);
            let head_in = self.contains(e.head);
            if tail_in == head_in {
                continue;
            }
            let fe = f.get(id);
            if head_in {
                total += fe;
            } else {
                total -= fe;
            }
        }
        total
    }

    /// Congestion of the cut in a given flow: |net flow| / capacity.
    pub fn flow_congestion(&self, g: &Graph, f: &FlowVec) -> f64 {
        let cap = self.capacity(g);
        if cap <= 0.0 {
            0.0
        } else {
            self.net_flow(g, f).abs() / cap
        }
    }

    /// Complement cut (`V \ S`).
    #[must_use]
    pub fn complement(&self) -> Cut {
        Cut {
            side: self.side.iter().map(|b| !b).collect(),
        }
    }
}

/// Enumerates all `2^(n-1) - 1` proper cuts of a small graph (node 0 fixed on
/// the `S` side to avoid double counting). Intended for exhaustive
/// verification on test instances only.
///
/// # Panics
///
/// Panics if the graph has more than 20 nodes (the enumeration would be
/// prohibitively large).
pub fn enumerate_proper_cuts(g: &Graph) -> Vec<Cut> {
    let n = g.num_nodes();
    assert!(n <= 20, "exhaustive cut enumeration is limited to 20 nodes");
    if n < 2 {
        return Vec::new();
    }
    let mut cuts = Vec::new();
    // Node 0 always on the S side; iterate over subsets of the rest.
    for mask in 0..(1u32 << (n - 1)) {
        let mut side = vec![false; n];
        side[0] = true;
        for i in 0..(n - 1) {
            if mask & (1 << i) != 0 {
                side[i + 1] = true;
            }
        }
        let cut = Cut::from_membership(side);
        if cut.is_proper() {
            cuts.push(cut);
        }
    }
    cuts
}

/// The exact minimum s–t cut capacity of a small graph by exhaustive
/// enumeration. Intended for verification on test instances only.
///
/// # Panics
///
/// Panics if the graph has more than 20 nodes.
pub fn exhaustive_min_st_cut(g: &Graph, s: NodeId, t: NodeId) -> f64 {
    enumerate_proper_cuts(g)
        .into_iter()
        .filter(|c| c.separates(s, t))
        .map(|c| c.capacity(g))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn square() -> Graph {
        // 0 - 1
        // |   |
        // 3 - 2
        GraphBuilder::new(4)
            .edge(0, 1, 1.0)
            .edge(1, 2, 2.0)
            .edge(2, 3, 3.0)
            .edge(3, 0, 4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn capacity_and_crossing() {
        let g = square();
        let cut = Cut::from_nodes(4, &[NodeId(0), NodeId(1)]);
        assert!(cut.is_proper());
        assert_eq!(cut.side_size(), 2);
        let crossing: Vec<_> = cut.crossing_edges(&g).collect();
        assert_eq!(crossing.len(), 2);
        assert!((cut.capacity(&g) - 6.0).abs() < 1e-12);
        assert!((cut.complement().capacity(&g) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn demand_congestion_of_cut() {
        let g = square();
        let d = Demand::st(&g, NodeId(0), NodeId(2), 3.0);
        let cut = Cut::singleton(4, NodeId(2));
        // capacity of {2} boundary = 2 + 3 = 5, demand entering = 3
        assert!((cut.demand_congestion(&g, &d) - 3.0 / 5.0).abs() < 1e-12);
        assert!(cut.separates(NodeId(0), NodeId(2)));
        assert!(!cut.separates(NodeId(0), NodeId(1)));
    }

    #[test]
    fn net_flow_across_cut() {
        let g = square();
        let mut f = FlowVec::zeros(g.num_edges());
        f.set(EdgeId(0), 1.0); // 0 -> 1
        f.set(EdgeId(1), 1.0); // 1 -> 2
        let cut = Cut::singleton(4, NodeId(2));
        assert!((cut.net_flow(&g, &f) - 1.0).abs() < 1e-12);
        assert!((cut.flow_congestion(&g, &f) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_min_cut_on_square() {
        let g = square();
        // min cut separating 0 and 2: {0} side capacity 1+4=5, {0,1}: 2+4=6,
        // {0,3}: 1+3=4, {0,1,3}: 2+3=5 -> minimum 4.
        let mc = exhaustive_min_st_cut(&g, NodeId(0), NodeId(2));
        assert!((mc - 4.0).abs() < 1e-12);
    }

    #[test]
    fn enumerate_counts() {
        let g = square();
        let cuts = enumerate_proper_cuts(&g);
        // 2^(4-1) - 1 = 7 proper cuts with node 0 fixed on the S side.
        assert_eq!(cuts.len(), 7);
        for c in &cuts {
            assert!(c.is_proper());
            assert!(c.contains(NodeId(0)));
        }
    }

    #[test]
    fn zero_capacity_cut_congestion() {
        let g = GraphBuilder::new(3).edge(0, 1, 1.0).build().unwrap();
        // node 2 is isolated
        let cut = Cut::singleton(3, NodeId(2));
        let d = Demand::zeros(3);
        assert_eq!(cut.demand_congestion(&g, &d), 0.0);
        let d = Demand::st(&g, NodeId(0), NodeId(2), 1.0);
        assert_eq!(cut.demand_congestion(&g, &d), f64::INFINITY);
    }
}
