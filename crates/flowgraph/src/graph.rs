//! Core undirected, capacitated multigraph type.
//!
//! The paper (§1.1) works with a simple connected weighted graph
//! `G = (V, E, cap)` with an arbitrary but fixed orientation per edge; several
//! of the constructions (Madry cores, contracted cluster graphs, AKPW
//! iterations) additionally require *multigraphs*. [`Graph`] therefore stores
//! oriented edges (parallel edges allowed) plus a lazily built
//! compressed-sparse-row incidence index ([`crate::csr::Csr`]), which covers
//! both use cases. The CSR index is built once on first neighborhood query
//! and invalidated by topology mutations (`add_node` / `add_edge`); capacity
//! updates do not invalidate it.
//!
//! # Compact-ID struct-of-arrays storage
//!
//! Node and edge ids are `u32`; the edge list is three parallel arrays
//! (`tails`, `heads`, `capacities`) rather than a `Vec<Edge>` of per-edge
//! structs, so an m-edge graph costs `2·4 + 8 = 16` bytes per edge for the
//! edge list plus `4·(n+1) + 2·2·4·m ≈ 16` bytes per edge for the CSR index —
//! about 32 bytes/edge all-in (measured by [`Graph::memory_bytes`]), which is
//! what makes `n = 10^6..10^7` graphs affordable. [`Edge`] remains the
//! by-value *view* type handed out by accessors; it is never stored.
//!
//! Construction enforces the id space: node counts above
//! [`Graph::MAX_NODES`] or edge counts above [`Graph::MAX_EDGES`] are
//! rejected with typed [`GraphError`]s instead of silently truncating ids.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::csr::{Csr, IncidentSlots};
use crate::{GraphError, Result};

/// Identifier of a node, an index into `0..graph.num_nodes()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value as u32)
    }
}

/// Identifier of an (oriented) edge, an index into `0..graph.num_edges()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(value: usize) -> Self {
        EdgeId(value as u32)
    }
}

/// A single undirected edge with the fixed orientation `tail -> head` used to
/// give flow values a sign (paper §1.1: "We fix an arbitrary orientation of
/// the edges").
///
/// This is a by-value *view* assembled on demand from the graph's
/// struct-of-arrays storage — cheap to copy, never stored per edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Tail of the fixed orientation.
    pub tail: NodeId,
    /// Head of the fixed orientation.
    pub head: NodeId,
    /// Capacity `cap(e) > 0`.
    pub capacity: f64,
}

impl Edge {
    /// Returns the endpoint different from `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not an endpoint of the edge.
    #[inline]
    pub fn other(&self, u: NodeId) -> NodeId {
        if u == self.tail {
            self.head
        } else if u == self.head {
            self.tail
        } else {
            panic!("node {u} is not an endpoint of edge {self:?}");
        }
    }

    /// Returns `true` if `u` is one of the endpoints.
    #[inline]
    pub fn is_incident(&self, u: NodeId) -> bool {
        self.tail == u || self.head == u
    }

    /// Orientation sign of the edge as seen from node `u`:
    /// `+1.0` if the edge leaves `u` (u is the tail), `-1.0` if it enters `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not an endpoint of the edge.
    #[inline]
    pub fn sign_from(&self, u: NodeId) -> f64 {
        if u == self.tail {
            1.0
        } else if u == self.head {
            -1.0
        } else {
            panic!("node {u} is not an endpoint of edge {self:?}");
        }
    }
}

/// Heap-memory breakdown of a [`Graph`], from [`Graph::memory_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphMemory {
    /// Bytes of the tail/head/capacity edge arrays.
    pub edge_list_bytes: usize,
    /// Bytes of the CSR incidence index (0 if not yet built).
    pub csr_bytes: usize,
}

impl GraphMemory {
    /// Total heap bytes (edge list + CSR index).
    pub fn total(&self) -> usize {
        self.edge_list_bytes + self.csr_bytes
    }

    /// Total bytes divided by the edge count (the gated bytes/edge budget);
    /// `0.0` for an edgeless graph.
    pub fn bytes_per_edge(&self, num_edges: usize) -> f64 {
        if num_edges == 0 {
            0.0
        } else {
            self.total() as f64 / num_edges as f64
        }
    }
}

/// An undirected, capacitated multigraph.
///
/// Nodes are `0..n`, edges are `0..m` in insertion order; parallel edges and
/// the empty graph are allowed, self-loops are not. Incidence queries are
/// answered from a flat CSR index ([`Graph::csr`]) that lists every node's
/// incident `(edge, neighbor)` slots contiguously and in insertion order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    /// Tail endpoint of each edge (fixed orientation).
    tails: Vec<u32>,
    /// Head endpoint of each edge, parallel to `tails`.
    heads: Vec<u32>,
    /// Capacity of each edge, parallel to `tails`.
    capacities: Vec<f64>,
    num_nodes: usize,
    /// Lazily built CSR incidence index; cleared on topology mutation.
    /// Derived state — excluded from serialization (rebuilt on demand).
    #[serde(skip)]
    csr: OnceLock<Csr>,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // The CSR cache is derived state and must not affect equality.
        self.num_nodes == other.num_nodes
            && self.tails == other.tails
            && self.heads == other.heads
            && self.capacities == other.capacities
    }
}

// Shared-graph parallelism (worker pools borrowing one `&Graph`) rests on the
// lazy CSR cache being a thread-safe `OnceLock`: concurrent first queries
// race to build, exactly one build wins, everyone sees the same index. Pin
// the `Send + Sync` consequence at compile time so a future cache field
// (e.g. a `RefCell`) can't silently revoke it.
const _: fn() = parallel::assert_send_sync::<Graph>;
const _: fn() = parallel::assert_send_sync::<Csr>;

impl Graph {
    /// Largest supported node count: node ids must fit in `u32`.
    pub const MAX_NODES: usize = u32::MAX as usize;

    /// Largest supported edge count: edge ids must fit in `u32` **and** the
    /// CSR slot offsets (`2m` of them) must too, so the bound is
    /// `u32::MAX / 2`.
    pub const MAX_EDGES: usize = (u32::MAX / 2) as usize;

    /// Creates an empty graph with `n` isolated nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`Graph::MAX_NODES`]; use
    /// [`Graph::try_with_nodes`] for a typed error instead.
    pub fn with_nodes(n: usize) -> Self {
        Self::try_with_nodes(n).expect("node count exceeds the u32 id space")
    }

    /// Creates an empty graph with `n` isolated nodes, rejecting node counts
    /// that do not fit the `u32` id space.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooManyNodes`] if `n > Graph::MAX_NODES`.
    pub fn try_with_nodes(n: usize) -> Result<Self> {
        if n > Self::MAX_NODES {
            return Err(GraphError::TooManyNodes { requested: n });
        }
        Ok(Graph {
            tails: Vec::new(),
            heads: Vec::new(),
            capacities: Vec::new(),
            num_nodes: n,
            csr: OnceLock::new(),
        })
    }

    /// Builds a graph in one shot from struct-of-arrays edge data: parallel
    /// `tails` / `heads` / `capacities` arrays over `num_nodes` nodes. This
    /// is the bulk-construction path the streaming million-node generators
    /// use — no intermediate per-edge structs or per-node vectors.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooManyNodes`] / [`GraphError::TooManyEdges`]
    /// when a count overflows the `u32` id space,
    /// [`GraphError::DemandMismatch`] when the arrays are not parallel, and
    /// the usual [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] /
    /// [`GraphError::InvalidWeight`] for invalid edges.
    pub fn from_soa(
        num_nodes: usize,
        tails: Vec<u32>,
        heads: Vec<u32>,
        capacities: Vec<f64>,
    ) -> Result<Self> {
        if num_nodes > Self::MAX_NODES {
            return Err(GraphError::TooManyNodes {
                requested: num_nodes,
            });
        }
        if tails.len() > Self::MAX_EDGES {
            return Err(GraphError::TooManyEdges {
                requested: tails.len(),
            });
        }
        if tails.len() != heads.len() || tails.len() != capacities.len() {
            return Err(GraphError::DemandMismatch {
                expected: tails.len(),
                actual: heads.len().min(capacities.len()),
            });
        }
        for (&t, &h) in tails.iter().zip(&heads) {
            if t as usize >= num_nodes || h as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: (t as usize).max(h as usize),
                    num_nodes,
                });
            }
            if t == h {
                return Err(GraphError::SelfLoop { node: t as usize });
            }
        }
        for &c in &capacities {
            if !(c.is_finite() && c > 0.0) {
                return Err(GraphError::InvalidWeight { value: c });
            }
        }
        Ok(Graph {
            tails,
            heads,
            capacities,
            num_nodes,
            csr: OnceLock::new(),
        })
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges `m` (parallel edges counted individually).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.tails.len()
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_nodes == 0
    }

    /// The CSR incidence index of the current topology, built on first use
    /// after a mutation. All neighborhood queries go through this index.
    #[inline]
    pub fn csr(&self) -> &Csr {
        self.csr
            .get_or_init(|| Csr::from_edges(self.num_nodes, &self.tails, &self.heads))
    }

    /// Adds a new isolated node and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the node count would exceed [`Graph::MAX_NODES`].
    pub fn add_node(&mut self) -> NodeId {
        assert!(
            self.num_nodes < Self::MAX_NODES,
            "node count exceeds the u32 id space"
        );
        self.num_nodes += 1;
        self.csr.take();
        NodeId((self.num_nodes - 1) as u32)
    }

    /// Adds an undirected edge `{u, v}` with the fixed orientation `u -> v`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range, if `u == v`, if
    /// the capacity is not a strictly positive finite number, or if the edge
    /// count would exceed [`Graph::MAX_EDGES`]
    /// ([`GraphError::TooManyEdges`]).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, capacity: f64) -> Result<EdgeId> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u.index() });
        }
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(GraphError::InvalidWeight { value: capacity });
        }
        if self.tails.len() >= Self::MAX_EDGES {
            return Err(GraphError::TooManyEdges {
                requested: self.tails.len() + 1,
            });
        }
        let id = EdgeId(self.tails.len() as u32);
        self.tails.push(u.0);
        self.heads.push(v.0);
        self.capacities.push(capacity);
        self.csr.take();
        Ok(id)
    }

    /// Returns the edge with the given id (a by-value view into the
    /// struct-of-arrays storage).
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        let i = e.index();
        Edge {
            tail: NodeId(self.tails[i]),
            head: NodeId(self.heads[i]),
            capacity: self.capacities[i],
        }
    }

    /// Returns the edge with the given id, or `None` if out of range.
    #[inline]
    pub fn get_edge(&self, e: EdgeId) -> Option<Edge> {
        if e.index() < self.tails.len() {
            Some(self.edge(e))
        } else {
            None
        }
    }

    /// Tail endpoint of edge `e` (fixed orientation).
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    #[inline]
    pub fn tail(&self, e: EdgeId) -> NodeId {
        NodeId(self.tails[e.index()])
    }

    /// Head endpoint of edge `e` (fixed orientation).
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    #[inline]
    pub fn head(&self, e: EdgeId) -> NodeId {
        NodeId(self.heads[e.index()])
    }

    /// Capacity of edge `e`.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.capacities[e.index()]
    }

    /// The raw per-edge capacity array (hot-path accessor for kernels that
    /// scan all capacities).
    #[inline]
    pub fn capacity_slice(&self) -> &[f64] {
        &self.capacities
    }

    /// Replaces the capacity of edge `e`.
    ///
    /// # Errors
    ///
    /// Returns an error if the capacity is not strictly positive and finite.
    pub fn set_capacity(&mut self, e: EdgeId, capacity: f64) -> Result<()> {
        self.check_edge(e)?;
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(GraphError::InvalidWeight { value: capacity });
        }
        self.capacities[e.index()] = capacity;
        Ok(())
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Iterates over `(EdgeId, Edge)` pairs (edges are by-value views).
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.tails
            .iter()
            .zip(&self.heads)
            .zip(&self.capacities)
            .enumerate()
            .map(|(i, ((&t, &h), &c))| {
                (
                    EdgeId(i as u32),
                    Edge {
                        tail: NodeId(t),
                        head: NodeId(h),
                        capacity: c,
                    },
                )
            })
    }

    /// The incident `(edge, neighbor)` slots of node `v` as a pair of
    /// contiguous CSR slices, in edge insertion order (parallel edges
    /// repeated). The view iterates as `(EdgeId, NodeId)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn incident(&self, v: NodeId) -> IncidentSlots<'_> {
        self.csr().incident(v)
    }

    /// The raw neighbor slice of node `v` (BFS fast path; see
    /// [`Csr::neighbor_slice`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_slice(&self, v: NodeId) -> &[u32] {
        self.csr().neighbor_slice(v)
    }

    /// The raw incident edge-id slice of node `v` (capacity-scan fast path;
    /// see [`Csr::edge_id_slice`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn edge_id_slice(&self, v: NodeId) -> &[u32] {
        self.csr().edge_id_slice(v)
    }

    /// Degree of node `v` (number of incident edge slots, so parallel edges
    /// count multiple times).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.csr().degree(v)
    }

    /// Iterates over `(EdgeId, neighbor)` pairs for node `v`, in edge
    /// insertion order.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.incident(v).iter()
    }

    /// Sum of all edge capacities.
    pub fn total_capacity(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// Largest edge capacity, or `0.0` for an edgeless graph.
    pub fn max_capacity(&self) -> f64 {
        self.capacities.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest edge capacity, or `f64::INFINITY` for an edgeless graph.
    pub fn min_capacity(&self) -> f64 {
        self.capacities
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Total capacity of edges incident to `v`.
    pub fn weighted_degree(&self, v: NodeId) -> f64 {
        self.edge_id_slice(v)
            .iter()
            .map(|&e| self.capacities[e as usize])
            .sum()
    }

    /// Heap-memory breakdown of the graph storage (edge arrays plus the CSR
    /// index if built). This is the measured bytes/edge budget recorded in
    /// BENCH_JSON by the `hierarchy_scale` bench.
    pub fn memory_bytes(&self) -> GraphMemory {
        let edge_list_bytes = std::mem::size_of::<u32>()
            * (self.tails.capacity() + self.heads.capacity())
            + std::mem::size_of::<f64>() * self.capacities.capacity();
        GraphMemory {
            edge_list_bytes,
            csr_bytes: self.csr.get().map_or(0, Csr::heap_bytes),
        }
    }

    /// Runs a breadth-first search from `root` and returns, for every node,
    /// its hop distance from the root (`usize::MAX` for unreachable nodes).
    pub fn bfs_distances(&self, root: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.num_nodes()];
        if root.index() >= self.num_nodes() {
            return dist;
        }
        let csr = self.csr();
        let mut queue = std::collections::VecDeque::new();
        dist[root.index()] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let next = dist[u.index()] + 1;
            for &w in csr.neighbor_slice(u) {
                if dist[w as usize] == usize::MAX {
                    dist[w as usize] = next;
                    queue.push_back(NodeId(w));
                }
            }
        }
        dist
    }

    /// Returns `true` if every node is reachable from node 0 (the empty graph
    /// counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        self.bfs_distances(NodeId(0))
            .iter()
            .all(|&d| d != usize::MAX)
    }

    /// The hop diameter of the graph (longest shortest path in hops),
    /// computed exactly with one BFS per node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotConnected`] if the graph is disconnected and
    /// [`GraphError::Empty`] if it has no nodes.
    pub fn hop_diameter(&self) -> Result<usize> {
        if self.num_nodes() == 0 {
            return Err(GraphError::Empty);
        }
        let mut diam = 0usize;
        for v in self.nodes() {
            let dist = self.bfs_distances(v);
            for &d in &dist {
                if d == usize::MAX {
                    return Err(GraphError::NotConnected);
                }
                diam = diam.max(d);
            }
        }
        Ok(diam)
    }

    /// Cheap 2-approximation of the hop diameter using a single BFS
    /// (eccentricity of node 0 doubled is an upper bound; we return the
    /// eccentricity of the farthest node found by a second BFS, which is a
    /// lower bound and at least half the true diameter).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotConnected`] or [`GraphError::Empty`]
    /// analogously to [`Graph::hop_diameter`].
    pub fn approx_hop_diameter(&self) -> Result<usize> {
        if self.num_nodes() == 0 {
            return Err(GraphError::Empty);
        }
        let d0 = self.bfs_distances(NodeId(0));
        let (far, &maxd) = d0
            .iter()
            .enumerate()
            .max_by_key(|(_, &d)| if d == usize::MAX { 0 } else { d })
            .expect("non-empty");
        if d0.contains(&usize::MAX) {
            return Err(GraphError::NotConnected);
        }
        let _ = maxd;
        let d1 = self.bfs_distances(NodeId(far as u32));
        Ok(*d1.iter().max().expect("non-empty"))
    }

    /// Connected components as a node -> component-index labelling, plus the
    /// number of components.
    pub fn components(&self) -> (Vec<usize>, usize) {
        let n = self.num_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0usize;
        if n > 0 {
            let csr = self.csr();
            let mut queue = std::collections::VecDeque::new();
            for start in 0..n {
                if comp[start] != usize::MAX {
                    continue;
                }
                comp[start] = next;
                queue.push_back(NodeId(start as u32));
                while let Some(u) = queue.pop_front() {
                    for &w in csr.neighbor_slice(u) {
                        if comp[w as usize] == usize::MAX {
                            comp[w as usize] = next;
                            queue.push_back(NodeId(w));
                        }
                    }
                }
                next += 1;
            }
        }
        (comp, next)
    }

    /// Returns a copy of the graph restricted to the given edge set (same node
    /// set, only the listed edges). Edge ids are re-assigned in the order
    /// given; the returned vector maps new edge ids to old ones.
    pub fn edge_subgraph(&self, edges: &[EdgeId]) -> (Graph, Vec<EdgeId>) {
        let mut g = Graph::with_nodes(self.num_nodes());
        let mut back = Vec::with_capacity(edges.len());
        for &e in edges {
            let edge = self.edge(e);
            g.add_edge(edge.tail, edge.head, edge.capacity)
                .expect("edges of a valid graph remain valid");
            back.push(e);
        }
        (g, back)
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if v.index() >= self.num_nodes() {
            Err(GraphError::NodeOutOfRange {
                node: v.index(),
                num_nodes: self.num_nodes(),
            })
        } else {
            Ok(())
        }
    }

    fn check_edge(&self, e: EdgeId) -> Result<()> {
        if e.index() >= self.num_edges() {
            Err(GraphError::EdgeOutOfRange {
                edge: e.index(),
                num_edges: self.num_edges(),
            })
        } else {
            Ok(())
        }
    }
}

/// Builder for [`Graph`] that allows deferred validation and fluent
/// construction of test and example graphs.
///
/// # Example
///
/// ```
/// use flowgraph::GraphBuilder;
///
/// let g = GraphBuilder::new(3)
///     .edge(0, 1, 2.0)
///     .edge(1, 2, 3.0)
///     .build()
///     .expect("valid graph");
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_nodes: n,
            edges: Vec::new(),
        }
    }

    /// Queues an edge `{u, v}` with the given capacity.
    #[must_use]
    pub fn edge(mut self, u: usize, v: usize, capacity: f64) -> Self {
        self.edges.push((u, v, capacity));
        self
    }

    /// Queues a unit-capacity edge `{u, v}`.
    #[must_use]
    pub fn unit_edge(self, u: usize, v: usize) -> Self {
        self.edge(u, v, 1.0)
    }

    /// Builds the graph, validating every queued edge.
    ///
    /// # Errors
    ///
    /// Returns the first validation error encountered (out-of-range endpoint,
    /// self-loop, non-positive capacity, or a node/edge count overflowing the
    /// `u32` id space).
    pub fn build(self) -> Result<Graph> {
        let mut g = Graph::try_with_nodes(self.num_nodes)?;
        for (u, v, c) in self.edges {
            g.add_edge(NodeId(u as u32), NodeId(v as u32), c)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        GraphBuilder::new(3)
            .edge(0, 1, 1.0)
            .edge(1, 2, 2.0)
            .edge(2, 0, 4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_query_basic_properties() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.total_capacity(), 7.0);
        assert_eq!(g.max_capacity(), 4.0);
        assert_eq!(g.min_capacity(), 1.0);
        assert!(g.is_connected());
    }

    #[test]
    fn edge_orientation_and_sign() {
        let g = triangle();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.tail, NodeId(0));
        assert_eq!(e.head, NodeId(1));
        assert_eq!(e.sign_from(NodeId(0)), 1.0);
        assert_eq!(e.sign_from(NodeId(1)), -1.0);
        assert_eq!(e.other(NodeId(0)), NodeId(1));
        assert!(e.is_incident(NodeId(1)));
        assert!(!e.is_incident(NodeId(2)));
        assert_eq!(g.tail(EdgeId(0)), NodeId(0));
        assert_eq!(g.head(EdgeId(0)), NodeId(1));
    }

    #[test]
    fn rejects_invalid_edges() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(0), 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(5), 1.0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), 0.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), f64::INFINITY),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn rejects_id_space_overflow() {
        // Node counts beyond u32 must be a typed error, not a truncation.
        let r = Graph::try_with_nodes(Graph::MAX_NODES + 1);
        assert!(matches!(
            r,
            Err(GraphError::TooManyNodes {
                requested
            }) if requested == Graph::MAX_NODES + 1
        ));
        assert!(GraphBuilder::new(Graph::MAX_NODES + 1).build().is_err());
        let r = Graph::from_soa(Graph::MAX_NODES + 1, vec![], vec![], vec![]);
        assert!(matches!(r, Err(GraphError::TooManyNodes { .. })));
        // MAX_NODES itself is fine (no edge storage is allocated).
        assert!(Graph::try_with_nodes(Graph::MAX_NODES).is_ok());
    }

    #[test]
    fn from_soa_validates_and_matches_incremental_build() {
        let bulk = Graph::from_soa(3, vec![0, 1, 2], vec![1, 2, 0], vec![1.0, 2.0, 4.0]).unwrap();
        assert_eq!(bulk, triangle());
        assert!(matches!(
            Graph::from_soa(3, vec![0], vec![0], vec![1.0]),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            Graph::from_soa(3, vec![0], vec![7], vec![1.0]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            Graph::from_soa(3, vec![0], vec![1], vec![-1.0]),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            Graph::from_soa(3, vec![0, 1], vec![1], vec![1.0]),
            Err(GraphError::DemandMismatch { .. })
        ));
    }

    #[test]
    fn memory_bytes_accounts_edge_list_and_csr() {
        let g = triangle();
        let before = g.memory_bytes();
        assert_eq!(before.csr_bytes, 0, "CSR not built yet");
        assert!(before.edge_list_bytes >= 3 * (4 + 4 + 8));
        let _ = g.incident(NodeId(0));
        let after = g.memory_bytes();
        // offsets: 4 u32, slots: 2 * 6 u32.
        assert!(after.csr_bytes >= 4 * 4 + 2 * 6 * 4);
        assert!(after.total() > before.total());
        assert!(after.bytes_per_edge(g.num_edges()) > 0.0);
        assert_eq!(after.bytes_per_edge(0), 0.0);
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.weighted_degree(NodeId(0)), 3.0);
    }

    #[test]
    fn bfs_distances_and_diameter() {
        let g = GraphBuilder::new(4)
            .unit_edge(0, 1)
            .unit_edge(1, 2)
            .unit_edge(2, 3)
            .build()
            .unwrap();
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
        assert_eq!(g.hop_diameter().unwrap(), 3);
        assert!(g.approx_hop_diameter().unwrap() >= 2);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = GraphBuilder::new(4)
            .unit_edge(0, 1)
            .unit_edge(2, 3)
            .build()
            .unwrap();
        assert!(!g.is_connected());
        assert!(matches!(g.hop_diameter(), Err(GraphError::NotConnected)));
        let (comp, k) = g.components();
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = Graph::default();
        assert!(g.is_empty());
        assert!(g.is_connected());
        assert!(matches!(g.hop_diameter(), Err(GraphError::Empty)));
    }

    #[test]
    fn edge_subgraph_preserves_endpoints() {
        let g = triangle();
        let (sub, back) = g.edge_subgraph(&[EdgeId(2)]);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(back, vec![EdgeId(2)]);
        assert_eq!(sub.edge(EdgeId(0)).capacity, 4.0);
    }

    #[test]
    fn set_capacity_validates() {
        let mut g = triangle();
        g.set_capacity(EdgeId(0), 10.0).unwrap();
        assert_eq!(g.capacity(EdgeId(0)), 10.0);
        assert!(g.set_capacity(EdgeId(0), -1.0).is_err());
        assert!(g.set_capacity(EdgeId(9), 1.0).is_err());
    }

    #[test]
    fn racing_incident_queries_build_exactly_one_csr() {
        // Two threads race `Graph::incident` on a freshly mutated graph: the
        // OnceLock must hand both the *same* lazily built index (pointer
        // equality), i.e. exactly one build happens.
        for attempt in 0..32 {
            let mut g = GraphBuilder::new(64).build().unwrap();
            for i in 0..63u32 {
                g.add_edge(NodeId(i), NodeId(i + 1), 1.0 + f64::from(attempt))
                    .unwrap();
            }
            let start = std::sync::Barrier::new(2);
            let (a, b) = std::thread::scope(|s| {
                let ha = s.spawn(|| {
                    start.wait();
                    let slots = g.incident(NodeId(1));
                    (g.csr() as *const Csr as usize, slots.len())
                });
                let hb = s.spawn(|| {
                    start.wait();
                    let slots = g.incident(NodeId(62));
                    (g.csr() as *const Csr as usize, slots.len())
                });
                (ha.join().unwrap(), hb.join().unwrap())
            });
            assert_eq!(a.0, b.0, "both threads must see the same CSR build");
            assert_eq!(a.1, 2);
            assert_eq!(b.1, 2);
        }
    }

    #[test]
    fn builder_example_compiles() {
        let g = GraphBuilder::new(3)
            .edge(0, 1, 2.0)
            .edge(1, 2, 3.0)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}
