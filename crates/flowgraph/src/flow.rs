//! Flow and demand vectors.
//!
//! The paper reformulates max flow as congestion minimization for a demand
//! vector `b ∈ R^V` with `Σ_v b_v = 0` (§2): find `f ∈ R^E` with `Bf = b`
//! minimizing `‖C⁻¹ f‖_∞`. [`FlowVec`] is the signed edge vector `f` (signs
//! follow each edge's fixed orientation), [`Demand`] is `b`.

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, Graph, NodeId};
use crate::{GraphError, Result};

/// Numerical slack used by feasibility checks on floating-point flows.
pub const FLOW_EPS: f64 = 1e-9;

/// A signed flow vector, one entry per edge of a fixed graph.
///
/// Positive values flow in the direction of the edge's fixed orientation
/// (`tail -> head`), negative values in the opposite direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowVec {
    values: Vec<f64>,
}

impl FlowVec {
    /// The all-zero flow on a graph with `m` edges.
    pub fn zeros(m: usize) -> Self {
        FlowVec {
            values: vec![0.0; m],
        }
    }

    /// Creates a flow vector from raw per-edge values.
    pub fn from_values(values: Vec<f64>) -> Self {
        FlowVec { values }
    }

    /// Number of edges covered by this flow vector.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the vector covers zero edges.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Flow on edge `e`.
    #[inline]
    pub fn get(&self, e: EdgeId) -> f64 {
        self.values[e.index()]
    }

    /// Sets the flow on edge `e`.
    #[inline]
    pub fn set(&mut self, e: EdgeId, value: f64) {
        self.values[e.index()] = value;
    }

    /// Adds `delta` to the flow on edge `e`.
    #[inline]
    pub fn add(&mut self, e: EdgeId, delta: f64) {
        self.values[e.index()] += delta;
    }

    /// Read-only view of the raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the raw values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Adds another flow vector (entrywise) to this one.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn add_assign(&mut self, other: &FlowVec) {
        assert_eq!(
            self.len(),
            other.len(),
            "flow vectors must cover the same edge set"
        );
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
    }

    /// Scales every entry by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// The excess vector `Bf`: for every node, inflow minus outflow under the
    /// fixed orientation convention of the paper (§2: `(Bf)_v` is the excess
    /// at node `v`, with `B_{ve} = 1` if `e = (u, v)` enters `v`).
    pub fn excess(&self, g: &Graph) -> Vec<f64> {
        let mut ex = vec![0.0; g.num_nodes()];
        self.excess_into(g, &mut ex);
        ex
    }

    /// Writes the excess vector `Bf` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` does not equal the graph's node count.
    pub fn excess_into(&self, g: &Graph, out: &mut [f64]) {
        assert_eq!(out.len(), g.num_nodes(), "excess buffer length mismatch");
        out.fill(0.0);
        for (id, e) in g.edges() {
            let f = self.values[id.index()];
            out[e.head.index()] += f;
            out[e.tail.index()] -= f;
        }
    }

    /// Net flow out of the source for an s–t flow: the value `F` of the flow
    /// (paper §1.1 condition 3).
    pub fn st_value(&self, g: &Graph, s: NodeId) -> f64 {
        let mut out = 0.0;
        for (eid, _) in g.incident(s) {
            let e = g.edge(eid);
            let f = self.values[eid.index()];
            if e.tail == s {
                out += f;
            } else {
                out -= f;
            }
        }
        out
    }

    /// Congestion of edge `e`: `|f_e| / cap(e)`.
    pub fn edge_congestion(&self, g: &Graph, e: EdgeId) -> f64 {
        self.values[e.index()].abs() / g.capacity(e)
    }

    /// Maximum edge congestion `‖C⁻¹ f‖_∞` (0 for an edgeless graph).
    pub fn max_congestion(&self, g: &Graph) -> f64 {
        g.edge_ids()
            .map(|e| self.edge_congestion(g, e))
            .fold(0.0, f64::max)
    }

    /// Returns `true` if `|f_e| ≤ cap(e) (1 + tol)` for every edge.
    pub fn respects_capacities(&self, g: &Graph, tol: f64) -> bool {
        g.edge_ids()
            .all(|e| self.values[e.index()].abs() <= g.capacity(e) * (1.0 + tol) + FLOW_EPS)
    }

    /// Checks flow conservation at every node except `s` and `t` and returns
    /// the largest absolute violation.
    pub fn conservation_violation(&self, g: &Graph, s: NodeId, t: NodeId) -> f64 {
        self.excess(g)
            .iter()
            .enumerate()
            .filter(|(v, _)| *v != s.index() && *v != t.index())
            .map(|(_, ex)| ex.abs())
            .fold(0.0, f64::max)
    }

    /// Verifies that this vector is a feasible s–t flow in `g` within
    /// tolerance `tol` and returns its value.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidWeight`] describing the first violated
    /// constraint: a capacity violation or a conservation violation.
    pub fn validate_st_flow(&self, g: &Graph, s: NodeId, t: NodeId, tol: f64) -> Result<f64> {
        for e in g.edge_ids() {
            let over = self.values[e.index()].abs() - g.capacity(e) * (1.0 + tol);
            if over > FLOW_EPS {
                return Err(GraphError::InvalidWeight {
                    value: self.values[e.index()],
                });
            }
        }
        let violation = self.conservation_violation(g, s, t);
        if violation > tol.max(FLOW_EPS) {
            return Err(GraphError::InvalidWeight { value: violation });
        }
        Ok(self.st_value(g, s))
    }
}

/// A demand vector `b ∈ R^V` with `Σ_v b_v = 0`.
///
/// Positive entries are sources of demand, negative entries are sinks; the
/// congestion-minimization problem asks for a flow whose excess equals `b`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    values: Vec<f64>,
}

impl Demand {
    /// The all-zero demand for a graph with `n` nodes.
    pub fn zeros(n: usize) -> Self {
        Demand {
            values: vec![0.0; n],
        }
    }

    /// Creates a demand from raw per-node values.
    ///
    /// The values are *not* re-balanced; use [`Demand::is_balanced`] to check.
    pub fn from_values(values: Vec<f64>) -> Self {
        Demand { values }
    }

    /// Creates the s–t demand that ships `amount` units from `s` to `t`
    /// (positive at the sink `t`, negative at the source `s`, matching the
    /// excess convention `Bf = b`).
    pub fn st(g: &Graph, s: NodeId, t: NodeId, amount: f64) -> Self {
        let mut values = vec![0.0; g.num_nodes()];
        values[s.index()] -= amount;
        values[t.index()] += amount;
        Demand { values }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the demand covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Demand at node `v`.
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        self.values[v.index()]
    }

    /// Sets the demand at node `v`.
    #[inline]
    pub fn set(&mut self, v: NodeId, value: f64) {
        self.values[v.index()] = value;
    }

    /// Read-only view of the raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the raw values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Sum of all entries (should be ~0 for a routable demand).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Sum of the positive entries (total quantity that must be shipped).
    pub fn total_positive(&self) -> f64 {
        self.values.iter().filter(|v| **v > 0.0).sum()
    }

    /// Returns `true` if the entries sum to zero within `tol`.
    pub fn is_balanced(&self, tol: f64) -> bool {
        self.total().abs() <= tol
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    /// Scales every entry by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Residual demand `b - Bf`: what remains to be routed after applying `f`.
    pub fn residual(&self, g: &Graph, f: &FlowVec) -> Demand {
        let mut out = Demand::zeros(self.values.len());
        self.residual_into(g, f, &mut out);
        out
    }

    /// Writes the residual demand `b - Bf` into `out` without allocating
    /// (the buffer reuse behind the session API's allocation-free gradient
    /// iterations).
    ///
    /// # Panics
    ///
    /// Panics if this demand or `out` does not cover exactly the graph's
    /// nodes.
    pub fn residual_into(&self, g: &Graph, f: &FlowVec, out: &mut Demand) {
        assert_eq!(self.values.len(), g.num_nodes(), "demand length mismatch");
        f.excess_into(g, &mut out.values);
        for (r, b) in out.values.iter_mut().zip(self.values.iter()) {
            *r = b - *r;
        }
    }
}

/// Writes `k` lane-major excess vectors `Bf` into `out`: `f_block[e*k + l]`
/// is lane `l`'s flow on edge `e`, `out[v*k + l]` receives lane `l`'s excess
/// at node `v`. The edge walk is edge-outer / lane-inner, so each lane's
/// accumulation order matches [`FlowVec::excess_into`] exactly and every lane
/// is byte-identical to a scalar evaluation — while the incidence walk (the
/// random-access part) is paid once for all `k` lanes.
///
/// # Panics
///
/// Panics if `f_block.len() != k × num_edges` or `out.len() != k × num_nodes`.
pub fn excess_block_into(g: &Graph, f_block: &[f64], k: usize, out: &mut [f64]) {
    assert_eq!(
        f_block.len(),
        g.num_edges() * k,
        "flow block length mismatch"
    );
    assert_eq!(out.len(), g.num_nodes() * k, "excess block length mismatch");
    out.fill(0.0);
    // Monomorphize the lane-inner loop for the session block widths so it
    // vectorizes (a runtime trip count defeats the autovectorizer); the
    // dynamic fallback executes the identical operations in the same order.
    match k {
        1 => excess_block_impl::<1>(g, f_block, k, out),
        2 => excess_block_impl::<2>(g, f_block, k, out),
        3 => excess_block_impl::<3>(g, f_block, k, out),
        4 => excess_block_impl::<4>(g, f_block, k, out),
        5 => excess_block_impl::<5>(g, f_block, k, out),
        6 => excess_block_impl::<6>(g, f_block, k, out),
        7 => excess_block_impl::<7>(g, f_block, k, out),
        8 => excess_block_impl::<8>(g, f_block, k, out),
        _ => excess_block_impl::<0>(g, f_block, k, out),
    }
}

#[inline(always)]
fn excess_block_impl<const K: usize>(g: &Graph, f_block: &[f64], k_dyn: usize, out: &mut [f64]) {
    let k = if K > 0 { K } else { k_dyn };
    for (id, e) in g.edges() {
        let src = id.index() * k;
        let head = e.head.index() * k;
        let tail = e.tail.index() * k;
        for l in 0..k {
            let f = f_block[src + l];
            out[head + l] += f;
            out[tail + l] -= f;
        }
    }
}

/// Writes `k` lane-major residual demands `b - Bf` into `out` — the blocked
/// counterpart of [`Demand::residual_into`], with the same per-lane
/// byte-identity guarantee as [`excess_block_into`].
///
/// # Panics
///
/// Panics if `b_block.len()` or `out.len()` is not `k × num_nodes`, or
/// `f_block.len()` is not `k × num_edges`.
pub fn residual_block_into(g: &Graph, b_block: &[f64], f_block: &[f64], k: usize, out: &mut [f64]) {
    assert_eq!(
        b_block.len(),
        g.num_nodes() * k,
        "demand block length mismatch"
    );
    excess_block_into(g, f_block, k, out);
    for (r, b) in out.iter_mut().zip(b_block) {
        *r = b - *r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path3() -> Graph {
        GraphBuilder::new(3)
            .edge(0, 1, 2.0)
            .edge(1, 2, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn excess_matches_orientation() {
        let g = path3();
        let mut f = FlowVec::zeros(g.num_edges());
        f.set(EdgeId(0), 1.0); // 0 -> 1
        f.set(EdgeId(1), 1.0); // 1 -> 2
        let ex = f.excess(&g);
        assert!((ex[0] + 1.0).abs() < 1e-12);
        assert!(ex[1].abs() < 1e-12);
        assert!((ex[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn st_value_and_validation() {
        let g = path3();
        let mut f = FlowVec::zeros(g.num_edges());
        f.set(EdgeId(0), 1.0);
        f.set(EdgeId(1), 1.0);
        let v = f.validate_st_flow(&g, NodeId(0), NodeId(2), 1e-9).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
        assert!((f.st_value(&g, NodeId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_violation_detected() {
        let g = path3();
        let mut f = FlowVec::zeros(g.num_edges());
        f.set(EdgeId(0), 1.5);
        f.set(EdgeId(1), 1.5);
        assert!(f.validate_st_flow(&g, NodeId(0), NodeId(2), 1e-9).is_err());
        assert!((f.max_congestion(&g) - 1.5).abs() < 1e-12);
        assert!(!f.respects_capacities(&g, 0.0));
        assert!(f.respects_capacities(&g, 0.6));
    }

    #[test]
    fn conservation_violation_detected() {
        let g = path3();
        let mut f = FlowVec::zeros(g.num_edges());
        f.set(EdgeId(0), 1.0);
        // nothing leaves node 1 towards node 2 -> conservation violated at 1
        assert!(f.conservation_violation(&g, NodeId(0), NodeId(2)) > 0.5);
        assert!(f.validate_st_flow(&g, NodeId(0), NodeId(2), 1e-9).is_err());
    }

    #[test]
    fn demand_basics() {
        let g = path3();
        let d = Demand::st(&g, NodeId(0), NodeId(2), 5.0);
        assert!(d.is_balanced(1e-12));
        assert_eq!(d.total_positive(), 5.0);
        assert_eq!(d.get(NodeId(0)), -5.0);
        assert_eq!(d.get(NodeId(2)), 5.0);
        assert_eq!(d.max_abs(), 5.0);
    }

    #[test]
    fn residual_demand_after_partial_routing() {
        let g = path3();
        let d = Demand::st(&g, NodeId(0), NodeId(2), 2.0);
        let mut f = FlowVec::zeros(g.num_edges());
        f.set(EdgeId(0), 2.0); // pushed to node 1 but not further
        let r = d.residual(&g, &f);
        assert!((r.get(NodeId(0)) - 0.0).abs() < 1e-12);
        assert!((r.get(NodeId(1)) + 2.0).abs() < 1e-12);
        assert!((r.get(NodeId(2)) - 2.0).abs() < 1e-12);
        assert!(r.is_balanced(1e-12));
    }

    #[test]
    fn blocked_excess_and_residual_match_scalar_lanes() {
        let g = path3();
        let k = 3;
        let flows = [
            FlowVec::from_values(vec![1.0, 0.5]),
            FlowVec::from_values(vec![-0.25, 2.0]),
            FlowVec::from_values(vec![0.0, -1.5]),
        ];
        let demands = [
            Demand::st(&g, NodeId(0), NodeId(2), 2.0),
            Demand::st(&g, NodeId(2), NodeId(0), 1.0),
            Demand::from_values(vec![0.5, -1.0, 0.5]),
        ];
        let mut f_block = vec![0.0; g.num_edges() * k];
        let mut b_block = vec![0.0; g.num_nodes() * k];
        for l in 0..k {
            for e in 0..g.num_edges() {
                f_block[e * k + l] = flows[l].values()[e];
            }
            for v in 0..g.num_nodes() {
                b_block[v * k + l] = demands[l].values()[v];
            }
        }
        let mut ex_block = vec![0.0; g.num_nodes() * k];
        excess_block_into(&g, &f_block, k, &mut ex_block);
        let mut res_block = vec![0.0; g.num_nodes() * k];
        residual_block_into(&g, &b_block, &f_block, k, &mut res_block);
        for l in 0..k {
            let ex = flows[l].excess(&g);
            let res = demands[l].residual(&g, &flows[l]);
            for v in 0..g.num_nodes() {
                assert_eq!(ex_block[v * k + l].to_bits(), ex[v].to_bits());
                assert_eq!(res_block[v * k + l].to_bits(), res.values()[v].to_bits());
            }
        }
    }

    #[test]
    fn flow_arithmetic() {
        let mut a = FlowVec::from_values(vec![1.0, -2.0]);
        let b = FlowVec::from_values(vec![0.5, 0.5]);
        a.add_assign(&b);
        assert_eq!(a.values(), &[1.5, -1.5]);
        a.scale(2.0);
        assert_eq!(a.values(), &[3.0, -3.0]);
        a.add(EdgeId(0), 1.0);
        assert_eq!(a.get(EdgeId(0)), 4.0);
    }
}
