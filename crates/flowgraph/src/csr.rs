//! Compressed-sparse-row (CSR) adjacency for [`Graph`](crate::Graph) and
//! ad-hoc edge sets.
//!
//! The incidence structure of a multigraph with `n` nodes and `m` edges is
//! stored as two flat arrays instead of `n` separately allocated vectors:
//!
//! ```text
//! offsets: [o_0, o_1, ..., o_n]            (n + 1 entries, o_0 = 0, o_n = 2m)
//! targets: [(e, w), (e, w), ...]           (2m entries, one per edge endpoint)
//!           `---- node 0 ----'`- node 1 -' ...
//! ```
//!
//! The incident slots of node `v` are `targets[offsets[v] .. offsets[v+1]]`;
//! each slot holds the edge id and the *other* endpoint, so a neighborhood
//! scan touches one contiguous cache-friendly range and never chases an edge
//! id back into the edge array. A *slot* (a global index into `targets`) also
//! doubles as the identity of a directed edge endpoint, which is what the
//! CONGEST simulator's flat message arenas are indexed by.
//!
//! # Ordering guarantee
//!
//! [`Csr::from_edges`] lists the incident slots of every node in **edge
//! insertion order** (ascending [`EdgeId`]), exactly like the legacy
//! `Vec<Vec<EdgeId>>` incidence path that appended an edge id to both
//! endpoint lists at `add_edge` time. Algorithms may rely on this: iteration
//! order over a node's neighborhood is stable across representations, and the
//! per-node slices are sorted by edge id, which makes the slot lookup
//! [`Csr::slot_of`] a binary search instead of a linear scan.
//! [`Csr::from_links`] preserves the order of the supplied link list per node
//! instead (callers that need binary-search lookups must supply links in
//! ascending edge-id order).

use crate::graph::{Edge, EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// Flat compressed-sparse-row incidence index over a node set `0..n`.
///
/// See the [module docs](self) for the memory layout and the per-node
/// ordering guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` is the slot range of node `v`.
    offsets: Vec<u32>,
    /// One `(edge, other endpoint)` entry per edge endpoint.
    targets: Vec<(EdgeId, NodeId)>,
}

impl Default for Csr {
    fn default() -> Self {
        Csr {
            offsets: vec![0],
            targets: Vec::new(),
        }
    }
}

impl Csr {
    /// Builds the CSR index of a multigraph's edge list. Every edge
    /// contributes one slot at each endpoint; per-node slots appear in
    /// ascending edge-id order (the insertion order of `add_edge`).
    pub fn from_edges(num_nodes: usize, edges: &[Edge]) -> Self {
        let csr = Self::from_links(
            num_nodes,
            edges
                .iter()
                .enumerate()
                .map(|(i, e)| (EdgeId(i as u32), e.tail, e.head)),
        );
        debug_assert!(
            (0..num_nodes).all(|v| csr
                .incident(NodeId(v as u32))
                .windows(2)
                .all(|w| w[0].0 < w[1].0)),
            "per-node slots of a graph CSR are sorted by edge id"
        );
        csr
    }

    /// Builds a CSR index from an arbitrary `(edge, u, v)` link list (e.g. a
    /// spanning forest or an edge subset). Both endpoints receive a slot.
    /// Per-node slot order follows the iteration order of `links`; the
    /// binary-search lookups ([`Csr::slot_of`]) additionally require the
    /// links to arrive in ascending edge-id order.
    ///
    /// # Panics
    ///
    /// Panics if a link endpoint is out of `0..num_nodes`.
    pub fn from_links<I>(num_nodes: usize, links: I) -> Self
    where
        I: Iterator<Item = (EdgeId, NodeId, NodeId)> + Clone,
    {
        let mut offsets = vec![0u32; num_nodes + 1];
        let mut num_links = 0usize;
        for (_, u, v) in links.clone() {
            offsets[u.index() + 1] += 1;
            offsets[v.index() + 1] += 1;
            num_links += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..num_nodes].to_vec();
        let mut targets = vec![(EdgeId(0), NodeId(0)); 2 * num_links];
        for (e, u, v) in links {
            targets[cursor[u.index()] as usize] = (e, v);
            cursor[u.index()] += 1;
            targets[cursor[v.index()] as usize] = (e, u);
            cursor[v.index()] += 1;
        }
        Csr { offsets, targets }
    }

    /// Number of nodes covered by the index.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of slots (`2m` for a graph CSR: one per edge endpoint).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.targets.len()
    }

    /// The raw offset array (`n + 1` entries); `offsets[v]..offsets[v+1]` is
    /// the slot range of node `v`. Exposed for consumers that maintain their
    /// own per-slot side arrays (capacities, message arenas, residual arcs).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The global slot range of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn slot_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize
    }

    /// The incident slots of node `v` as a contiguous `(edge, neighbor)`
    /// slice, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn incident(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        &self.targets[self.slot_range(v)]
    }

    /// Degree of node `v` (number of incident slots; parallel edges count
    /// individually).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// The `(edge, neighbor)` pair stored at a global slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn slot(&self, slot: usize) -> (EdgeId, NodeId) {
        self.targets[slot]
    }

    /// The global slot of edge `e` at endpoint `v`, or `None` if `e` is not
    /// incident to `v`. A binary search over `v`'s slice — requires the
    /// per-node sorted order that [`Csr::from_edges`] guarantees.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn slot_of(&self, v: NodeId, e: EdgeId) -> Option<usize> {
        let range = self.slot_range(v);
        self.targets[range.clone()]
            .binary_search_by_key(&e, |&(e2, _)| e2)
            .ok()
            .map(|i| range.start + i)
    }

    /// The node owning a global slot (inverse of [`Csr::slot_range`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn node_of_slot(&self, slot: usize) -> NodeId {
        debug_assert!(slot < self.num_slots());
        let i = self.offsets.partition_point(|&o| o as usize <= slot);
        NodeId((i - 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn csr_matches_legacy_incidence_order() {
        // Insertion order per node must match the legacy Vec<Vec<EdgeId>>
        // path: edge ids ascending, parallel edges kept.
        let g = GraphBuilder::new(4)
            .edge(0, 1, 1.0)
            .edge(1, 2, 1.0)
            .edge(0, 1, 2.0) // parallel
            .edge(3, 0, 1.0)
            .build()
            .unwrap();
        let csr = g.csr();
        let ids =
            |v: u32| -> Vec<u32> { csr.incident(NodeId(v)).iter().map(|&(e, _)| e.0).collect() };
        assert_eq!(ids(0), vec![0, 2, 3]);
        assert_eq!(ids(1), vec![0, 1, 2]);
        assert_eq!(ids(2), vec![1]);
        assert_eq!(ids(3), vec![3]);
        // Neighbors are the other endpoints.
        assert_eq!(csr.incident(NodeId(2)), &[(EdgeId(1), NodeId(1))]);
        assert_eq!(csr.degree(NodeId(0)), 3);
        assert_eq!(csr.num_slots(), 8);
    }

    #[test]
    fn slot_lookup_round_trips() {
        let g = GraphBuilder::new(3)
            .edge(0, 1, 1.0)
            .edge(1, 2, 1.0)
            .edge(2, 0, 1.0)
            .build()
            .unwrap();
        let csr = g.csr();
        for v in g.nodes() {
            for (i, &(e, w)) in csr.incident(v).iter().enumerate() {
                let slot = csr.slot_range(v).start + i;
                assert_eq!(csr.slot_of(v, e), Some(slot));
                assert_eq!(csr.node_of_slot(slot), v);
                assert_eq!(csr.slot(slot), (e, w));
                // The mirrored slot lives at the other endpoint.
                let mirror = csr.slot_of(w, e).expect("edge incident to both ends");
                assert_eq!(csr.node_of_slot(mirror), w);
                assert_eq!(csr.slot(mirror).1, v);
            }
        }
        assert_eq!(csr.slot_of(NodeId(0), EdgeId(1)), None);
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let g = GraphBuilder::new(5).edge(3, 4, 1.0).build().unwrap();
        let csr = g.csr();
        for v in 0..3 {
            assert!(csr.incident(NodeId(v)).is_empty());
            assert_eq!(csr.degree(NodeId(v)), 0);
        }
        // Slot ownership skips the empty prefix correctly.
        assert_eq!(csr.node_of_slot(0), NodeId(3));
        assert_eq!(csr.node_of_slot(1), NodeId(4));
    }

    #[test]
    fn from_links_preserves_given_order() {
        // A forest supplied out of edge-id order keeps the supplied order.
        let links = [
            (EdgeId(7), NodeId(0), NodeId(1)),
            (EdgeId(2), NodeId(1), NodeId(2)),
        ];
        let csr = Csr::from_links(3, links.iter().copied());
        assert_eq!(
            csr.incident(NodeId(1)),
            &[(EdgeId(7), NodeId(0)), (EdgeId(2), NodeId(2))]
        );
        assert_eq!(csr.num_slots(), 4);
    }

    #[test]
    fn empty_and_default() {
        let csr = Csr::default();
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_slots(), 0);
        let csr = Csr::from_edges(3, &[]);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.num_slots(), 0);
    }
}
