//! Compressed-sparse-row (CSR) adjacency for [`Graph`](crate::Graph) and
//! ad-hoc edge sets.
//!
//! The incidence structure of a multigraph with `n` nodes and `m` edges is
//! stored as three flat `u32` arrays (struct-of-arrays) instead of `n`
//! separately allocated vectors or an array of `(edge, neighbor)` structs:
//!
//! ```text
//! offsets:   [o_0, o_1, ..., o_n]      (n + 1 entries, o_0 = 0, o_n = 2m)
//! edge_ids:  [e, e, e, ...]            (2m entries, one per edge endpoint)
//! neighbors: [w, w, w, ...]            (2m entries, parallel to edge_ids)
//!             `- node 0 -'`- node 1 -' ...
//! ```
//!
//! The incident slots of node `v` are index range `offsets[v]..offsets[v+1]`
//! into the two parallel arrays; each slot holds the edge id and the *other*
//! endpoint, so a neighborhood scan touches contiguous cache-friendly ranges
//! and never chases an edge id back into the edge array. Keeping edge ids and
//! neighbors in *separate* slices lets traversals that only need one of the
//! two (BFS wants neighbors, capacity scans want edge ids) halve their cache
//! traffic — that is the [`Csr::neighbor_slice`] / [`Csr::edge_id_slice`]
//! fast path. A *slot* (a global index into the parallel arrays) also doubles
//! as the identity of a directed edge endpoint, which is what the CONGEST
//! simulator's flat message arenas are indexed by.
//!
//! All ids are `u32`: a CSR addresses at most `u32::MAX` nodes and
//! `u32::MAX / 2` edges (so the `2m` slot offsets still fit in `u32`).
//! [`Graph`](crate::Graph) construction enforces those bounds with typed
//! errors before a CSR is ever built.
//!
//! # Ordering guarantee
//!
//! [`Csr::from_edges`] lists the incident slots of every node in **edge
//! insertion order** (ascending [`EdgeId`]), exactly like the legacy
//! `Vec<Vec<EdgeId>>` incidence path that appended an edge id to both
//! endpoint lists at `add_edge` time. Algorithms may rely on this: iteration
//! order over a node's neighborhood is stable across representations, and the
//! per-node slices are sorted by edge id, which makes the slot lookup
//! [`Csr::slot_of`] a binary search instead of a linear scan.
//! [`Csr::from_links`] preserves the order of the supplied link list per node
//! instead (callers that need binary-search lookups must supply links in
//! ascending edge-id order).

use crate::graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// Flat compressed-sparse-row incidence index over a node set `0..n`.
///
/// See the [module docs](self) for the memory layout and the per-node
/// ordering guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` is the slot range of node `v`.
    offsets: Vec<u32>,
    /// Edge id of each slot (one slot per edge endpoint).
    edge_ids: Vec<u32>,
    /// Other endpoint of each slot, parallel to `edge_ids`.
    neighbors: Vec<u32>,
}

impl Default for Csr {
    fn default() -> Self {
        Csr {
            offsets: vec![0],
            edge_ids: Vec::new(),
            neighbors: Vec::new(),
        }
    }
}

/// A borrowed view of one node's incident slots: two parallel `u32` slices
/// (edge ids and other endpoints), yielded by [`Csr::incident`].
///
/// Iterating the view (it is `IntoIterator`, by value or by reference) yields
/// `(EdgeId, NodeId)` pairs exactly like the pre-SoA tuple slice did; hot
/// paths that need only one of the two arrays use [`IncidentSlots::edge_ids`]
/// or [`IncidentSlots::neighbors`] directly.
#[derive(Debug, Clone, Copy)]
pub struct IncidentSlots<'a> {
    edge_ids: &'a [u32],
    neighbors: &'a [u32],
}

impl<'a> IncidentSlots<'a> {
    /// Number of incident slots (the node's degree, parallel edges counted
    /// individually).
    #[inline]
    pub fn len(&self) -> usize {
        self.edge_ids.len()
    }

    /// Returns `true` if the node has no incident edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edge_ids.is_empty()
    }

    /// The `(edge, neighbor)` pair at local slot index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> (EdgeId, NodeId) {
        (EdgeId(self.edge_ids[i]), NodeId(self.neighbors[i]))
    }

    /// The first `(edge, neighbor)` pair, or `None` for an isolated node.
    #[inline]
    pub fn first(&self) -> Option<(EdgeId, NodeId)> {
        match (self.edge_ids.first(), self.neighbors.first()) {
            (Some(&e), Some(&w)) => Some((EdgeId(e), NodeId(w))),
            _ => None,
        }
    }

    /// The raw edge-id slice of the node.
    #[inline]
    pub fn edge_ids(&self) -> &'a [u32] {
        self.edge_ids
    }

    /// The raw neighbor slice of the node, parallel to
    /// [`IncidentSlots::edge_ids`].
    #[inline]
    pub fn neighbors(&self) -> &'a [u32] {
        self.neighbors
    }

    /// Iterates over `(EdgeId, NodeId)` pairs.
    #[inline]
    pub fn iter(&self) -> IncidentIter<'a> {
        IncidentIter {
            edge_ids: self.edge_ids.iter(),
            neighbors: self.neighbors.iter(),
        }
    }

    /// Local index of edge `e` within this view, or `None` if absent. A
    /// binary search — requires the ascending edge-id order that
    /// [`Csr::from_edges`] guarantees.
    #[inline]
    pub fn position_of(&self, e: EdgeId) -> Option<usize> {
        self.edge_ids.binary_search(&e.0).ok()
    }

    /// Collects the view into a `Vec` of pairs (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<(EdgeId, NodeId)> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for IncidentSlots<'a> {
    type Item = (EdgeId, NodeId);
    type IntoIter = IncidentIter<'a>;

    #[inline]
    fn into_iter(self) -> IncidentIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &IncidentSlots<'a> {
    type Item = (EdgeId, NodeId);
    type IntoIter = IncidentIter<'a>;

    #[inline]
    fn into_iter(self) -> IncidentIter<'a> {
        self.iter()
    }
}

/// Iterator over the `(EdgeId, NodeId)` pairs of an [`IncidentSlots`] view.
#[derive(Debug, Clone)]
pub struct IncidentIter<'a> {
    edge_ids: std::slice::Iter<'a, u32>,
    neighbors: std::slice::Iter<'a, u32>,
}

impl Iterator for IncidentIter<'_> {
    type Item = (EdgeId, NodeId);

    #[inline]
    fn next(&mut self) -> Option<(EdgeId, NodeId)> {
        let e = self.edge_ids.next()?;
        let w = self.neighbors.next()?;
        Some((EdgeId(*e), NodeId(*w)))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.edge_ids.size_hint()
    }
}

impl ExactSizeIterator for IncidentIter<'_> {}

impl DoubleEndedIterator for IncidentIter<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<(EdgeId, NodeId)> {
        let e = self.edge_ids.next_back()?;
        let w = self.neighbors.next_back()?;
        Some((EdgeId(*e), NodeId(*w)))
    }
}

impl Csr {
    /// Builds the CSR index of a multigraph's edge list, given as parallel
    /// tail/head arrays. Every edge contributes one slot at each endpoint;
    /// per-node slots appear in ascending edge-id order (the insertion order
    /// of `add_edge`).
    ///
    /// # Panics
    ///
    /// Panics if the arrays have different lengths or an endpoint is out of
    /// `0..num_nodes` (graph construction validates both beforehand).
    pub fn from_edges(num_nodes: usize, tails: &[u32], heads: &[u32]) -> Self {
        assert_eq!(
            tails.len(),
            heads.len(),
            "tail/head arrays must be parallel"
        );
        let csr = Self::from_links(
            num_nodes,
            tails
                .iter()
                .zip(heads)
                .enumerate()
                .map(|(i, (&t, &h))| (EdgeId(i as u32), NodeId(t), NodeId(h))),
        );
        debug_assert!(
            (0..num_nodes).all(|v| csr
                .edge_id_slice(NodeId(v as u32))
                .windows(2)
                .all(|w| w[0] < w[1])),
            "per-node slots of a graph CSR are sorted by edge id"
        );
        csr
    }

    /// Builds a CSR index from an arbitrary `(edge, u, v)` link list (e.g. a
    /// spanning forest or an edge subset). Both endpoints receive a slot.
    /// Per-node slot order follows the iteration order of `links`; the
    /// binary-search lookups ([`Csr::slot_of`]) additionally require the
    /// links to arrive in ascending edge-id order.
    ///
    /// # Panics
    ///
    /// Panics if a link endpoint is out of `0..num_nodes`.
    pub fn from_links<I>(num_nodes: usize, links: I) -> Self
    where
        I: Iterator<Item = (EdgeId, NodeId, NodeId)> + Clone,
    {
        let mut offsets = vec![0u32; num_nodes + 1];
        let mut num_links = 0usize;
        for (_, u, v) in links.clone() {
            offsets[u.index() + 1] += 1;
            offsets[v.index() + 1] += 1;
            num_links += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..num_nodes].to_vec();
        let mut edge_ids = vec![0u32; 2 * num_links];
        let mut neighbors = vec![0u32; 2 * num_links];
        for (e, u, v) in links {
            let cu = cursor[u.index()] as usize;
            edge_ids[cu] = e.0;
            neighbors[cu] = v.0;
            cursor[u.index()] += 1;
            let cv = cursor[v.index()] as usize;
            edge_ids[cv] = e.0;
            neighbors[cv] = u.0;
            cursor[v.index()] += 1;
        }
        Csr {
            offsets,
            edge_ids,
            neighbors,
        }
    }

    /// Number of nodes covered by the index.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of slots (`2m` for a graph CSR: one per edge endpoint).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.edge_ids.len()
    }

    /// The raw offset array (`n + 1` entries); `offsets[v]..offsets[v+1]` is
    /// the slot range of node `v`. Exposed for consumers that maintain their
    /// own per-slot side arrays (capacities, message arenas, residual arcs).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The full per-slot edge-id array (`2m` entries).
    #[inline]
    pub fn edge_ids(&self) -> &[u32] {
        &self.edge_ids
    }

    /// The full per-slot neighbor array (`2m` entries), parallel to
    /// [`Csr::edge_ids`].
    #[inline]
    pub fn neighbors(&self) -> &[u32] {
        &self.neighbors
    }

    /// The global slot range of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn slot_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize
    }

    /// The incident slots of node `v` as a pair of parallel `(edge, neighbor)`
    /// slices, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn incident(&self, v: NodeId) -> IncidentSlots<'_> {
        let range = self.slot_range(v);
        IncidentSlots {
            edge_ids: &self.edge_ids[range.clone()],
            neighbors: &self.neighbors[range],
        }
    }

    /// The raw neighbor slice of node `v` — the BFS fast path that never
    /// touches the edge-id array.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_slice(&self, v: NodeId) -> &[u32] {
        &self.neighbors[self.slot_range(v)]
    }

    /// The raw edge-id slice of node `v` — the capacity-scan fast path that
    /// never touches the neighbor array.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn edge_id_slice(&self, v: NodeId) -> &[u32] {
        &self.edge_ids[self.slot_range(v)]
    }

    /// Degree of node `v` (number of incident slots; parallel edges count
    /// individually).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// The `(edge, neighbor)` pair stored at a global slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn slot(&self, slot: usize) -> (EdgeId, NodeId) {
        (EdgeId(self.edge_ids[slot]), NodeId(self.neighbors[slot]))
    }

    /// The global slot of edge `e` at endpoint `v`, or `None` if `e` is not
    /// incident to `v`. A binary search over `v`'s slice — requires the
    /// per-node sorted order that [`Csr::from_edges`] guarantees.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn slot_of(&self, v: NodeId, e: EdgeId) -> Option<usize> {
        let range = self.slot_range(v);
        self.edge_ids[range.clone()]
            .binary_search(&e.0)
            .ok()
            .map(|i| range.start + i)
    }

    /// The node owning a global slot (inverse of [`Csr::slot_range`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn node_of_slot(&self, slot: usize) -> NodeId {
        debug_assert!(slot < self.num_slots());
        let i = self.offsets.partition_point(|&o| o as usize <= slot);
        NodeId((i - 1) as u32)
    }

    /// Heap bytes held by the index: `4·(n+1)` offsets plus `2·4·2m` slot
    /// entries. Feeds the measured bytes/edge budget of
    /// [`Graph::memory_bytes`](crate::Graph::memory_bytes).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<u32>()
            * (self.offsets.capacity() + self.edge_ids.capacity() + self.neighbors.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn csr_matches_legacy_incidence_order() {
        // Insertion order per node must match the legacy Vec<Vec<EdgeId>>
        // path: edge ids ascending, parallel edges kept.
        let g = GraphBuilder::new(4)
            .edge(0, 1, 1.0)
            .edge(1, 2, 1.0)
            .edge(0, 1, 2.0) // parallel
            .edge(3, 0, 1.0)
            .build()
            .unwrap();
        let csr = g.csr();
        let ids = |v: u32| -> Vec<u32> { csr.edge_id_slice(NodeId(v)).to_vec() };
        assert_eq!(ids(0), vec![0, 2, 3]);
        assert_eq!(ids(1), vec![0, 1, 2]);
        assert_eq!(ids(2), vec![1]);
        assert_eq!(ids(3), vec![3]);
        // Neighbors are the other endpoints.
        assert_eq!(
            csr.incident(NodeId(2)).to_vec(),
            vec![(EdgeId(1), NodeId(1))]
        );
        assert_eq!(csr.neighbor_slice(NodeId(2)), &[1]);
        assert_eq!(csr.degree(NodeId(0)), 3);
        assert_eq!(csr.num_slots(), 8);
    }

    #[test]
    fn slot_lookup_round_trips() {
        let g = GraphBuilder::new(3)
            .edge(0, 1, 1.0)
            .edge(1, 2, 1.0)
            .edge(2, 0, 1.0)
            .build()
            .unwrap();
        let csr = g.csr();
        for v in g.nodes() {
            for (i, (e, w)) in csr.incident(v).iter().enumerate() {
                let slot = csr.slot_range(v).start + i;
                assert_eq!(csr.slot_of(v, e), Some(slot));
                assert_eq!(csr.node_of_slot(slot), v);
                assert_eq!(csr.slot(slot), (e, w));
                assert_eq!(csr.incident(v).get(i), (e, w));
                assert_eq!(csr.incident(v).position_of(e), Some(i));
                // The mirrored slot lives at the other endpoint.
                let mirror = csr.slot_of(w, e).expect("edge incident to both ends");
                assert_eq!(csr.node_of_slot(mirror), w);
                assert_eq!(csr.slot(mirror).1, v);
            }
        }
        assert_eq!(csr.slot_of(NodeId(0), EdgeId(1)), None);
        assert_eq!(csr.incident(NodeId(0)).position_of(EdgeId(1)), None);
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let g = GraphBuilder::new(5).edge(3, 4, 1.0).build().unwrap();
        let csr = g.csr();
        for v in 0..3 {
            assert!(csr.incident(NodeId(v)).is_empty());
            assert_eq!(csr.degree(NodeId(v)), 0);
        }
        // Slot ownership skips the empty prefix correctly.
        assert_eq!(csr.node_of_slot(0), NodeId(3));
        assert_eq!(csr.node_of_slot(1), NodeId(4));
    }

    #[test]
    fn from_links_preserves_given_order() {
        // A forest supplied out of edge-id order keeps the supplied order.
        let links = [
            (EdgeId(7), NodeId(0), NodeId(1)),
            (EdgeId(2), NodeId(1), NodeId(2)),
        ];
        let csr = Csr::from_links(3, links.iter().copied());
        assert_eq!(
            csr.incident(NodeId(1)).to_vec(),
            vec![(EdgeId(7), NodeId(0)), (EdgeId(2), NodeId(2))]
        );
        assert_eq!(csr.num_slots(), 4);
    }

    #[test]
    fn incident_view_iterates_both_directions() {
        let g = GraphBuilder::new(3)
            .edge(0, 1, 1.0)
            .edge(0, 2, 1.0)
            .build()
            .unwrap();
        let view = g.csr().incident(NodeId(0));
        assert_eq!(view.len(), 2);
        let fwd: Vec<_> = view.iter().collect();
        let mut rev: Vec<_> = view.iter().rev().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(view.iter().len(), 2);
    }

    #[test]
    fn empty_and_default() {
        let csr = Csr::default();
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_slots(), 0);
        let csr = Csr::from_edges(3, &[], &[]);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.num_slots(), 0);
        assert!(csr.heap_bytes() >= 4 * 4);
    }
}
