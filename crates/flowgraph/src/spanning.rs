//! Spanning-tree constructions: BFS trees, minimum / maximum weight spanning
//! trees and random spanning trees.
//!
//! The top-level max-flow algorithm (Algorithm 1, §9) routes residual demand
//! over a *maximum-weight* spanning tree; the distributed implementation uses
//! BFS trees for global broadcast/convergecast; random spanning trees serve as
//! a baseline in the stretch experiments (E3).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{EdgeId, Graph, NodeId};
use crate::tree::RootedTree;
use crate::unionfind::UnionFind;
use crate::{GraphError, Result};

/// Builds a BFS tree rooted at `root`.
///
/// # Errors
///
/// Returns [`GraphError::NotConnected`] if not every node is reachable from
/// `root`, and [`GraphError::NodeOutOfRange`] if `root` is invalid.
pub fn bfs_tree(g: &Graph, root: NodeId) -> Result<RootedTree> {
    if root.index() >= g.num_nodes() {
        return Err(GraphError::NodeOutOfRange {
            node: root.index(),
            num_nodes: g.num_nodes(),
        });
    }
    let n = g.num_nodes();
    let mut parent = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[root.index()] = true;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for (eid, w) in g.incident(u) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                parent[w.index()] = Some(u);
                parent_edge[w.index()] = Some(eid);
                queue.push_back(w);
            }
        }
    }
    if seen.iter().any(|&s| !s) {
        return Err(GraphError::NotConnected);
    }
    RootedTree::from_parents(root, parent, parent_edge)
}

/// Kruskal's algorithm on an arbitrary edge ordering; returns the selected
/// spanning edges.
fn kruskal_by_order(g: &Graph, order: &[EdgeId]) -> Result<Vec<EdgeId>> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut uf = UnionFind::new(n);
    let mut chosen = Vec::with_capacity(n.saturating_sub(1));
    for &eid in order {
        let e = g.edge(eid);
        if uf.union(e.tail.index(), e.head.index()) {
            chosen.push(eid);
        }
    }
    if chosen.len() + 1 != n {
        return Err(GraphError::NotConnected);
    }
    Ok(chosen)
}

/// Minimum spanning tree with respect to the given per-edge weight function,
/// rooted at `root`.
///
/// # Errors
///
/// Returns [`GraphError::NotConnected`] for disconnected graphs and
/// [`GraphError::Empty`] for the empty graph.
pub fn minimum_spanning_tree(
    g: &Graph,
    root: NodeId,
    weight: impl Fn(EdgeId) -> f64,
) -> Result<RootedTree> {
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    order.sort_by(|&a, &b| {
        weight(a)
            .partial_cmp(&weight(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let edges = kruskal_by_order(g, &order)?;
    RootedTree::spanning_from_edges(g, root, &edges)
}

/// Maximum-weight spanning tree with respect to edge capacities, rooted at
/// `root` (Algorithm 1, step 5).
///
/// # Errors
///
/// Same error conditions as [`minimum_spanning_tree`].
pub fn max_weight_spanning_tree(g: &Graph, root: NodeId) -> Result<RootedTree> {
    minimum_spanning_tree(g, root, |e| -g.capacity(e))
}

/// Spanning tree produced by running Kruskal on a uniformly random edge
/// ordering (a cheap stand-in for a uniformly random spanning tree; used only
/// as an experiment baseline).
///
/// # Errors
///
/// Same error conditions as [`minimum_spanning_tree`].
pub fn random_spanning_tree(g: &Graph, root: NodeId, rng: &mut impl Rng) -> Result<RootedTree> {
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    order.shuffle(rng);
    let edges = kruskal_by_order(g, &order)?;
    RootedTree::spanning_from_edges(g, root, &edges)
}

/// Shortest-path tree with respect to a per-edge length function (Dijkstra),
/// rooted at `root`. Used to compare low-stretch trees against shortest-path
/// trees in the experiments.
///
/// # Errors
///
/// Returns [`GraphError::NotConnected`] if some node is unreachable.
pub fn shortest_path_tree(
    g: &Graph,
    root: NodeId,
    length: impl Fn(EdgeId) -> f64,
) -> Result<RootedTree> {
    let n = g.num_nodes();
    if root.index() >= n {
        return Err(GraphError::NodeOutOfRange {
            node: root.index(),
            num_nodes: n,
        });
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut done = vec![false; n];
    dist[root.index()] = 0.0;
    // Binary heap keyed on (dist, node); f64 is not Ord so store bits.
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((ordered(0.0), root.index())));
    while let Some(std::cmp::Reverse((_, u))) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for (eid, w) in g.incident(NodeId(u as u32)) {
            let nd = dist[u] + length(eid);
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                parent[w.index()] = Some(NodeId(u as u32));
                parent_edge[w.index()] = Some(eid);
                heap.push(std::cmp::Reverse((ordered(nd), w.index())));
            }
        }
    }
    if dist.iter().any(|d| d.is_infinite()) {
        return Err(GraphError::NotConnected);
    }
    RootedTree::from_parents(root, parent, parent_edge)
}

/// Total-orderable wrapper for non-NaN f64 keys in the Dijkstra heap.
fn ordered(x: f64) -> u64 {
    debug_assert!(!x.is_nan());
    let bits = x.to_bits();
    if x >= 0.0 {
        bits ^ (1 << 63)
    } else {
        !bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn weighted_square() -> Graph {
        GraphBuilder::new(4)
            .edge(0, 1, 1.0)
            .edge(1, 2, 5.0)
            .edge(2, 3, 1.0)
            .edge(3, 0, 5.0)
            .edge(0, 2, 2.0)
            .build()
            .unwrap()
    }

    #[test]
    fn bfs_tree_depths() {
        let g = weighted_square();
        let t = bfs_tree(&g, NodeId(0)).unwrap();
        assert_eq!(t.depth(NodeId(0)), 0);
        assert!(t.depth(NodeId(2)) <= 2);
        assert_eq!(t.graph_edges().len(), 3);
    }

    #[test]
    fn mst_picks_light_edges() {
        let g = weighted_square();
        let t = minimum_spanning_tree(&g, NodeId(0), |e| g.capacity(e)).unwrap();
        let total: f64 = t.graph_edges().iter().map(|&e| g.capacity(e)).sum();
        // MST: edges of weight 1, 1, 2 -> 4.
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn max_weight_tree_picks_heavy_edges() {
        let g = weighted_square();
        let t = max_weight_spanning_tree(&g, NodeId(0)).unwrap();
        let total: f64 = t.graph_edges().iter().map(|&e| g.capacity(e)).sum();
        // Max weight spanning tree: 5 + 5 + 2 = 12.
        assert!((total - 12.0).abs() < 1e-12);
    }

    #[test]
    fn random_tree_is_spanning() {
        let g = weighted_square();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            let t = random_spanning_tree(&g, NodeId(0), &mut rng).unwrap();
            assert_eq!(t.graph_edges().len(), 3);
            assert_eq!(t.num_nodes(), 4);
        }
    }

    #[test]
    fn shortest_path_tree_distances() {
        let g = weighted_square();
        // lengths = 1/capacity so heavy edges are short
        let t = shortest_path_tree(&g, NodeId(0), |e| 1.0 / g.capacity(e)).unwrap();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.num_nodes(), 4);
        // node 3 should hang off node 0 directly (length 0.2 < any detour)
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(0)));
    }

    #[test]
    fn disconnected_graph_errors() {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 1.0)
            .edge(2, 3, 1.0)
            .build()
            .unwrap();
        assert!(bfs_tree(&g, NodeId(0)).is_err());
        assert!(max_weight_spanning_tree(&g, NodeId(0)).is_err());
        assert!(shortest_path_tree(&g, NodeId(0), |_| 1.0).is_err());
    }

    #[test]
    fn ordered_key_is_monotone() {
        let mut values = [3.5, 0.0, 1.25, 10.0, 0.5];
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let keys: Vec<u64> = values.iter().map(|&v| ordered(v)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn bfs_tree_matches_graph_distances_on_known_graphs() {
        // On a grid and a cycle the BFS depths must equal the graph's hop
        // distances node by node, and parent edges must step one level up.
        for g in [crate::gen::grid(4, 5, 1.0), crate::gen::cycle(11, 1.0)] {
            let t = bfs_tree(&g, NodeId(0)).unwrap();
            let dist = g.bfs_distances(NodeId(0));
            for v in g.nodes() {
                assert_eq!(t.depth(v), dist[v.index()], "depth mismatch at {v}");
                if let Some(p) = t.parent(v) {
                    assert_eq!(t.depth(v), t.depth(p) + 1, "parent of {v} not one level up");
                }
            }
        }
    }

    #[test]
    fn mst_weight_matches_brute_force_on_known_graph() {
        // K4 with distinct weights: brute-force over all 16 spanning trees.
        let g = GraphBuilder::new(4)
            .edge(0, 1, 1.0)
            .edge(0, 2, 2.0)
            .edge(0, 3, 3.0)
            .edge(1, 2, 4.0)
            .edge(1, 3, 5.0)
            .edge(2, 3, 6.0)
            .build()
            .unwrap();
        let edge_ids: Vec<EdgeId> = g.edge_ids().collect();
        let mut best_min = f64::INFINITY;
        let mut best_max = f64::NEG_INFINITY;
        for mask in 0u32..(1 << edge_ids.len()) {
            if mask.count_ones() != 3 {
                continue;
            }
            let chosen: Vec<EdgeId> = edge_ids
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &e)| e)
                .collect();
            let (sub, _) = g.edge_subgraph(&chosen);
            if !sub.is_connected() {
                continue;
            }
            let w: f64 = chosen.iter().map(|&e| g.capacity(e)).sum();
            best_min = best_min.min(w);
            best_max = best_max.max(w);
        }
        let mst = minimum_spanning_tree(&g, NodeId(0), |e| g.capacity(e)).unwrap();
        let mst_w: f64 = mst.graph_edges().iter().map(|&e| g.capacity(e)).sum();
        assert!(
            (mst_w - best_min).abs() < 1e-12,
            "MST {mst_w} vs brute force {best_min}"
        );
        let mwst = max_weight_spanning_tree(&g, NodeId(0)).unwrap();
        let mwst_w: f64 = mwst.graph_edges().iter().map(|&e| g.capacity(e)).sum();
        assert!(
            (mwst_w - best_max).abs() < 1e-12,
            "MWST {mwst_w} vs brute force {best_max}"
        );
    }

    #[test]
    fn spanning_constructions_are_deterministic_across_runs() {
        let g = crate::gen::random_gnp(24, 0.3, (1.0, 9.0), 5);
        let a = minimum_spanning_tree(&g, NodeId(0), |e| g.capacity(e)).unwrap();
        let b = minimum_spanning_tree(&g, NodeId(0), |e| g.capacity(e)).unwrap();
        assert_eq!(a.graph_edges(), b.graph_edges());
        let mut r1 = ChaCha8Rng::seed_from_u64(21);
        let mut r2 = ChaCha8Rng::seed_from_u64(21);
        let t1 = random_spanning_tree(&g, NodeId(0), &mut r1).unwrap();
        let t2 = random_spanning_tree(&g, NodeId(0), &mut r2).unwrap();
        assert_eq!(t1.graph_edges(), t2.graph_edges());
    }
}
