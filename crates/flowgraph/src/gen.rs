//! Workload generators.
//!
//! The experiment harness (DESIGN.md, E1–E9) sweeps over several graph
//! families chosen to stress different parameter regimes of the paper's
//! bound `(D + √n)·n^{o(1)}`:
//!
//! * [`path`] / [`cycle`] — diameter `Θ(n)`, the `D` term dominates;
//! * [`grid`] — diameter `Θ(√n)`, balanced regime;
//! * [`random_gnp`] / [`random_regular`] — expanders, diameter `O(log n)`,
//!   the `√n` term dominates;
//! * [`complete`] — dense baseline for sparsification (E6);
//! * [`barbell`] — two cliques joined by a path, small min cuts;
//! * [`barabasi_albert`] — heavy-tailed degrees;
//! * [`layered_st`] — a classic max-flow stress family with many disjoint
//!   augmenting paths.
//!
//! All generators take capacities (or a capacity range) explicitly so the
//! same topology can be re-used across experiments.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::graph::{Graph, NodeId};

/// Deterministic RNG used by the randomized generators, seeded explicitly so
/// experiments are reproducible.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Path graph `0 - 1 - … - (n-1)` with uniform capacity.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize, capacity: f64) -> Graph {
    assert!(n > 0, "path requires at least one node");
    let mut g = Graph::with_nodes(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge(NodeId(i as u32), NodeId((i + 1) as u32), capacity)
            .expect("valid path edge");
    }
    g
}

/// Cycle graph with uniform capacity.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize, capacity: f64) -> Graph {
    assert!(n >= 3, "cycle requires at least three nodes");
    let mut g = path(n, capacity);
    g.add_edge(NodeId((n - 1) as u32), NodeId(0), capacity)
        .expect("valid cycle edge");
    g
}

/// `rows × cols` grid with uniform capacity.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn grid(rows: usize, cols: usize, capacity: f64) -> Graph {
    assert!(rows > 0 && cols > 0, "grid requires positive dimensions");
    let mut g = Graph::with_nodes(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), capacity)
                    .expect("valid grid edge");
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), capacity)
                    .expect("valid grid edge");
            }
        }
    }
    g
}

/// Complete graph on `n` nodes with uniform capacity.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize, capacity: f64) -> Graph {
    assert!(n > 0, "complete graph requires at least one node");
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i as u32), NodeId(j as u32), capacity)
                .expect("valid complete-graph edge");
        }
    }
    g
}

/// Star graph: node 0 is the hub.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize, capacity: f64) -> Graph {
    assert!(n > 0, "star requires at least one node");
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i as u32), capacity)
            .expect("valid star edge");
    }
    g
}

/// Erdős–Rényi `G(n, p)` random graph with capacities drawn uniformly from
/// `cap_range`, re-sampled until connected (a spanning path is added as a
/// fallback after 50 failed attempts so the function always terminates).
///
/// # Panics
///
/// Panics if `n == 0`, `p` is not in `[0, 1]` or the capacity range is empty
/// or non-positive.
pub fn random_gnp(n: usize, p: f64, cap_range: (f64, f64), seed: u64) -> Graph {
    assert!(n > 0, "random graph requires at least one node");
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
    assert!(
        cap_range.0 > 0.0 && cap_range.1 >= cap_range.0,
        "capacity range must be positive and non-empty"
    );
    let mut rng = rng(seed);
    for attempt in 0..50 {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(p) {
                    let c = rng.gen_range(cap_range.0..=cap_range.1);
                    g.add_edge(NodeId(i as u32), NodeId(j as u32), c)
                        .expect("valid random edge");
                }
            }
        }
        if g.is_connected() {
            return g;
        }
        let _ = attempt;
    }
    // Fallback: connect with a path so callers always get a connected graph.
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                let c = rng.gen_range(cap_range.0..=cap_range.1);
                g.add_edge(NodeId(i as u32), NodeId(j as u32), c)
                    .expect("valid random edge");
            }
        }
    }
    for i in 0..n.saturating_sub(1) {
        let c = rng.gen_range(cap_range.0..=cap_range.1);
        g.add_edge(NodeId(i as u32), NodeId((i + 1) as u32), c)
            .expect("valid fallback path edge");
    }
    g
}

/// Random `d`-regular-ish multigraph built from `d/2` random perfect
/// matchings of a random permutation ring (a standard cheap expander
/// construction). Parallel edges may occur; self-loops are skipped.
///
/// # Panics
///
/// Panics if `n < 3` or `d < 2`.
pub fn random_regular(n: usize, d: usize, capacity: f64, seed: u64) -> Graph {
    assert!(n >= 3, "random regular graph requires at least three nodes");
    assert!(d >= 2, "degree must be at least two");
    let mut rng = rng(seed);
    let mut g = Graph::with_nodes(n);
    // Base cycle guarantees connectivity.
    for i in 0..n {
        g.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32), capacity)
            .expect("valid ring edge");
    }
    // Additional random permutations add expansion.
    let extra = d.saturating_sub(2).div_ceil(2);
    for _ in 0..extra {
        let mut perm: Vec<usize> = (0..n).collect();
        use rand::seq::SliceRandom;
        perm.shuffle(&mut rng);
        for (u, &v) in perm.iter().enumerate() {
            if u != v {
                g.add_edge(NodeId(u as u32), NodeId(v as u32), capacity)
                    .expect("valid permutation edge");
            }
        }
    }
    g
}

/// Barbell graph: two cliques of size `k` joined by a path of `bridge_len`
/// edges with capacity `bridge_capacity`. The min cut between the cliques is
/// the bridge, which makes the max-flow value easy to reason about.
///
/// # Panics
///
/// Panics if `k < 2` or `bridge_len == 0`.
pub fn barbell(k: usize, bridge_len: usize, clique_capacity: f64, bridge_capacity: f64) -> Graph {
    assert!(k >= 2, "cliques need at least two nodes");
    assert!(bridge_len >= 1, "bridge needs at least one edge");
    let n = 2 * k + bridge_len.saturating_sub(1);
    let mut g = Graph::with_nodes(n);
    let add_clique = |g: &mut Graph, offset: usize| {
        for i in 0..k {
            for j in (i + 1)..k {
                g.add_edge(
                    NodeId((offset + i) as u32),
                    NodeId((offset + j) as u32),
                    clique_capacity,
                )
                .expect("valid clique edge");
            }
        }
    };
    add_clique(&mut g, 0);
    add_clique(&mut g, k + bridge_len.saturating_sub(1));
    // Bridge from node k-1 (last of clique A) to node k+bridge_len-1 (first of clique B).
    let mut prev = k - 1;
    for step in 0..bridge_len {
        let next = if step + 1 == bridge_len {
            k + bridge_len - 1
        } else {
            k + step
        };
        g.add_edge(NodeId(prev as u32), NodeId(next as u32), bridge_capacity)
            .expect("valid bridge edge");
        prev = next;
    }
    g
}

/// Barabási–Albert preferential-attachment graph: each new node attaches to
/// `attach` existing nodes with probability proportional to their degree.
///
/// # Panics
///
/// Panics if `n <= attach` or `attach == 0`.
pub fn barabasi_albert(n: usize, attach: usize, cap_range: (f64, f64), seed: u64) -> Graph {
    assert!(attach >= 1, "attachment count must be positive");
    assert!(n > attach, "graph must be larger than the attachment count");
    let mut rng = rng(seed);
    let mut g = Graph::with_nodes(n);
    // Start from a small clique of `attach + 1` nodes.
    for i in 0..=attach {
        for j in (i + 1)..=attach {
            let c = rng.gen_range(cap_range.0..=cap_range.1);
            g.add_edge(NodeId(i as u32), NodeId(j as u32), c)
                .expect("valid seed clique edge");
        }
    }
    // Maintain a repeated-endpoint list for preferential attachment.
    let mut endpoints: Vec<usize> = Vec::new();
    for (_, e) in g.edges() {
        endpoints.push(e.tail.index());
        endpoints.push(e.head.index());
    }
    for v in (attach + 1)..n {
        let mut targets = std::collections::HashSet::new();
        let mut guard = 0;
        while targets.len() < attach && guard < 50 * attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v {
                targets.insert(t);
            }
            guard += 1;
        }
        // Ensure connectivity even if sampling failed to find enough targets.
        if targets.is_empty() {
            targets.insert(v - 1);
        }
        for &t in &targets {
            let c = rng.gen_range(cap_range.0..=cap_range.1);
            g.add_edge(NodeId(v as u32), NodeId(t as u32), c)
                .expect("valid preferential-attachment edge");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// Layered s–t flow network: `layers` layers of `width` nodes each, the
/// source (node 0) connects to the first layer, consecutive layers are
/// completely bipartitely connected, and the last layer connects to the sink
/// (last node). A classic max-flow stress family with a known structure of
/// many short disjoint paths.
///
/// # Panics
///
/// Panics if `layers == 0` or `width == 0`.
pub fn layered_st(layers: usize, width: usize, cap_range: (f64, f64), seed: u64) -> Graph {
    assert!(
        layers >= 1 && width >= 1,
        "layers and width must be positive"
    );
    let mut rng = rng(seed);
    let n = 2 + layers * width;
    let mut g = Graph::with_nodes(n);
    let s = NodeId(0);
    let t = NodeId((n - 1) as u32);
    let node = |layer: usize, i: usize| NodeId((1 + layer * width + i) as u32);
    for i in 0..width {
        let c = rng.gen_range(cap_range.0..=cap_range.1);
        g.add_edge(s, node(0, i), c).expect("valid source edge");
    }
    for l in 0..layers.saturating_sub(1) {
        for i in 0..width {
            for j in 0..width {
                let c = rng.gen_range(cap_range.0..=cap_range.1);
                g.add_edge(node(l, i), node(l + 1, j), c)
                    .expect("valid layer edge");
            }
        }
    }
    for i in 0..width {
        let c = rng.gen_range(cap_range.0..=cap_range.1);
        g.add_edge(node(layers - 1, i), t, c)
            .expect("valid sink edge");
    }
    g
}

/// Datacenter-like two-tier leaf–spine fabric ("fat-tree"): every leaf switch
/// connects to every spine with capacity `fabric_capacity`, and each leaf
/// aggregates `hosts_per_leaf` hosts over `host_capacity` uplinks.
///
/// Node layout: hosts come first, rack by rack (`leaves * hosts_per_leaf`
/// nodes), then the leaf switches, then the spines. Hence node 0 is a host in
/// the first rack and the natural cross-fabric terminals are
/// `(NodeId(0), NodeId(leaves * hosts_per_leaf - 1))` — a host in the last
/// rack — which is what [`fat_tree_terminals`] returns.
///
/// # Panics
///
/// Panics if any dimension is zero or a capacity is not strictly positive.
pub fn fat_tree(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    host_capacity: f64,
    fabric_capacity: f64,
) -> Graph {
    assert!(
        leaves >= 2 && spines >= 1 && hosts_per_leaf >= 1,
        "fat tree requires at least two leaves, one spine and one host per leaf"
    );
    assert!(
        host_capacity > 0.0 && fabric_capacity > 0.0,
        "fat tree capacities must be strictly positive"
    );
    let hosts = leaves * hosts_per_leaf;
    let mut g = Graph::with_nodes(hosts + leaves + spines);
    let host = |rack: usize, i: usize| NodeId((rack * hosts_per_leaf + i) as u32);
    let leaf = |i: usize| NodeId((hosts + i) as u32);
    let spine = |i: usize| NodeId((hosts + leaves + i) as u32);
    for l in 0..leaves {
        for s in 0..spines {
            g.add_edge(leaf(l), spine(s), fabric_capacity)
                .expect("valid fabric edge");
        }
        for h in 0..hosts_per_leaf {
            g.add_edge(host(l, h), leaf(l), host_capacity)
                .expect("valid host uplink");
        }
    }
    g
}

/// The natural cross-fabric terminal pair for [`fat_tree`]: the first host of
/// the first rack and the last host of the last rack.
pub fn fat_tree_terminals(leaves: usize, hosts_per_leaf: usize) -> (NodeId, NodeId) {
    (NodeId(0), NodeId((leaves * hosts_per_leaf - 1) as u32))
}

/// The source/sink pair conventionally used with each generated family: node
/// 0 and the last node (which the generators place "far apart").
pub fn default_terminals(g: &Graph) -> (NodeId, NodeId) {
    (NodeId(0), NodeId((g.num_nodes().saturating_sub(1)) as u32))
}

/// A named graph family, used by the experiment harness to sweep over
/// workloads uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Path graph (diameter Θ(n)).
    Path,
    /// Cycle graph.
    Cycle,
    /// Square grid (diameter Θ(√n)).
    Grid,
    /// Erdős–Rényi with p chosen for average degree ≈ 8.
    Random,
    /// Random regular-ish expander with degree 6.
    Expander,
    /// Two cliques joined by a bridge.
    Barbell,
    /// Preferential attachment.
    PowerLaw,
    /// Layered s–t network.
    Layered,
}

impl Family {
    /// All families, in the order used by the experiment tables.
    pub const ALL: [Family; 8] = [
        Family::Path,
        Family::Cycle,
        Family::Grid,
        Family::Random,
        Family::Expander,
        Family::Barbell,
        Family::PowerLaw,
        Family::Layered,
    ];

    /// Short machine-readable name used in table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Grid => "grid",
            Family::Random => "random",
            Family::Expander => "expander",
            Family::Barbell => "barbell",
            Family::PowerLaw => "powerlaw",
            Family::Layered => "layered",
        }
    }

    /// Generates an instance of the family with roughly `n` nodes.
    ///
    /// The exact node count may differ slightly (e.g. the grid rounds to a
    /// square); capacities lie in `[1, 10]` for the randomized families and
    /// are 1 for the deterministic ones unless noted.
    pub fn generate(&self, n: usize, seed: u64) -> Graph {
        let n = n.max(4);
        match self {
            Family::Path => path(n, 1.0),
            Family::Cycle => cycle(n, 1.0),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                grid(side, side, 1.0)
            }
            Family::Random => {
                let p = (8.0 / n as f64).min(1.0);
                random_gnp(n, p, (1.0, 10.0), seed)
            }
            Family::Expander => random_regular(n, 6, 1.0, seed),
            Family::Barbell => {
                let k = (n / 2).max(2);
                barbell(k, (n / 10).max(1), 1.0, 2.0)
            }
            Family::PowerLaw => barabasi_albert(n, 3, (1.0, 10.0), seed),
            Family::Layered => {
                let width = (n as f64).sqrt().round().max(2.0) as usize;
                let layers = (n / width).max(1);
                layered_st(layers, width, (1.0, 10.0), seed)
            }
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5, 2.0);
        assert_eq!(p.num_nodes(), 5);
        assert_eq!(p.num_edges(), 4);
        assert!(p.is_connected());
        let c = cycle(5, 1.0);
        assert_eq!(c.num_edges(), 5);
        assert_eq!(c.hop_diameter().unwrap(), 2);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, 1.0);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
        assert_eq!(g.hop_diameter().unwrap(), 5);
    }

    #[test]
    fn complete_and_star() {
        let k = complete(5, 1.0);
        assert_eq!(k.num_edges(), 10);
        assert_eq!(k.hop_diameter().unwrap(), 1);
        let s = star(6, 1.0);
        assert_eq!(s.num_edges(), 5);
        assert_eq!(s.degree(NodeId(0)), 5);
    }

    #[test]
    fn random_graphs_are_connected_and_deterministic() {
        let a = random_gnp(30, 0.2, (1.0, 5.0), 42);
        let b = random_gnp(30, 0.2, (1.0, 5.0), 42);
        assert_eq!(a, b);
        assert!(a.is_connected());
        let r = random_regular(20, 6, 1.0, 3);
        assert!(r.is_connected());
        assert!(r.num_edges() >= 20);
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4, 2, 1.0, 3.0);
        assert!(g.is_connected());
        // 2 cliques of 6 edges each + 2 bridge edges
        assert_eq!(g.num_edges(), 6 + 6 + 2);
    }

    #[test]
    fn barabasi_albert_connected() {
        let g = barabasi_albert(50, 3, (1.0, 2.0), 9);
        assert!(g.is_connected());
        assert!(g.num_edges() >= 49);
    }

    #[test]
    fn layered_structure() {
        let g = layered_st(3, 2, (1.0, 1.0), 5);
        assert_eq!(g.num_nodes(), 2 + 6);
        assert!(g.is_connected());
        let (s, t) = default_terminals(&g);
        assert_eq!(s, NodeId(0));
        assert_eq!(t, NodeId(7));
    }

    #[test]
    fn family_generation_is_connected() {
        for fam in Family::ALL {
            let g = fam.generate(40, 11);
            assert!(
                g.is_connected(),
                "family {fam} produced a disconnected graph"
            );
            assert!(g.num_nodes() >= 4);
        }
    }

    #[test]
    #[should_panic(expected = "path requires")]
    fn path_zero_panics() {
        let _ = path(0, 1.0);
    }

    #[test]
    fn fat_tree_structure() {
        let g = fat_tree(4, 2, 3, 10.0, 40.0);
        // 12 hosts + 4 leaves + 2 spines.
        assert_eq!(g.num_nodes(), 18);
        // 4*2 fabric edges + 12 host uplinks.
        assert_eq!(g.num_edges(), 8 + 12);
        assert!(g.is_connected());
        let (s, t) = fat_tree_terminals(4, 3);
        assert_eq!(s, NodeId(0));
        assert_eq!(t, NodeId(11));
        // Host uplink is the bottleneck for host-to-host flow.
        assert!((g.weighted_degree(s) - 10.0).abs() < 1e-12);
        // Fabric tier: every leaf reaches every spine.
        assert_eq!(g.degree(NodeId(12)), 2 + 3);
    }
}
