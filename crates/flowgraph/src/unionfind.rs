//! Disjoint-set union (union–find) with path compression and union by rank.
//!
//! Used by the spanning-tree constructions (Kruskal-style MST / maximum-weight
//! spanning tree), by the AKPW low-stretch tree algorithm and by the cluster
//! contraction machinery.

/// Disjoint-set union data structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`'s set (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `x` and `y`; returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Returns `true` if `x` and `y` are in the same set.
    pub fn same(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Returns, for every element, a dense label in `0..num_sets` identifying
    /// its set (labels are assigned in order of first appearance).
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut map = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for x in 0..n {
            let r = self.find(x);
            let next = map.len();
            let label = *map.entry(r).or_insert(next);
            out.push(label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let labels = uf.labels();
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        let max = *labels.iter().max().unwrap();
        assert_eq!(max + 1, uf.num_sets());
    }

    #[test]
    fn empty_and_len() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let uf = UnionFind::new(3);
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn find_compresses_paths() {
        // Build a chain 0 <- 1 <- 2 <- ... <- 9 by hand so the tree is deep,
        // then verify one find() flattens every node on the walked path
        // directly onto the root.
        let mut uf = UnionFind::new(10);
        for i in 1..10 {
            uf.parent[i] = i - 1;
        }
        let root = uf.find(9);
        assert_eq!(root, 0);
        for i in 0..10 {
            assert_eq!(uf.parent[i], 0, "node {i} not compressed onto the root");
        }
    }

    #[test]
    fn union_by_rank_bounds_tree_height() {
        // Union-by-rank guarantees rank <= log2(n); with n = 256 sequential
        // unions in the worst adversarial order the max rank must stay <= 8.
        let mut uf = UnionFind::new(256);
        for i in 1..256 {
            uf.union(0, i);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.rank.iter().all(|&r| r <= 8), "rank exceeded log2(n)");
    }

    #[test]
    fn matches_a_naive_reference_model() {
        // Deterministic randomized differential test against a label-array
        // reference implementation.
        use rand::{Rng, SeedableRng};
        let n = 60;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let mut uf = UnionFind::new(n);
        let mut reference: Vec<usize> = (0..n).collect();
        for _ in 0..200 {
            let (x, y) = (rng.gen_range(0..n), rng.gen_range(0..n));
            let merged = uf.union(x, y);
            let (lx, ly) = (reference[x], reference[y]);
            assert_eq!(merged, lx != ly);
            if lx != ly {
                for l in reference.iter_mut() {
                    if *l == ly {
                        *l = lx;
                    }
                }
            }
            let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
            assert_eq!(uf.same(a, b), reference[a] == reference[b]);
        }
        let distinct: std::collections::HashSet<usize> = reference.iter().copied().collect();
        assert_eq!(uf.num_sets(), distinct.len());
    }
}
