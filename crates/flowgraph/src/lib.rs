//! Undirected weighted graph substrate for the distributed maximum-flow
//! reproduction of Ghaffari et al., *Near-Optimal Distributed Maximum Flow*
//! (PODC 2015).
//!
//! The crate provides everything the higher layers (low-stretch trees,
//! congestion approximators, Sherman's gradient descent, the CONGEST
//! simulator) need from a graph library:
//!
//! * [`Graph`] — an undirected, capacitated multigraph with a fixed arbitrary
//!   orientation per edge (the paper's §1.1 problem setup), backed by the
//!   flat compressed-sparse-row incidence index of [`csr`],
//! * [`FlowVec`] / [`Demand`] — flow and demand vectors together with
//!   feasibility, conservation and congestion checks,
//! * [`Cut`] — node-side cuts with capacity and crossing-edge queries,
//! * [`RootedTree`] — rooted (spanning) trees with subtree aggregation, LCA,
//!   stretch computation and trivial tree routing,
//! * [`gen`] — workload generators for every graph family used in the
//!   experiment harness,
//! * [`contract`] — quotient multigraphs, used by the cluster-graph and
//!   low-stretch-tree machinery.
//!
//! # Example
//!
//! ```
//! use flowgraph::{gen, Demand, NodeId};
//!
//! let g = gen::grid(4, 4, 1.0);
//! assert_eq!(g.num_nodes(), 16);
//! let s = NodeId(0);
//! let t = NodeId(15);
//! let d = Demand::st(&g, s, t, 3.0);
//! assert_eq!(d.total_positive(), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod csr;
pub mod cut;
pub mod flow;
pub mod gen;
pub mod graph;
pub mod spanning;
pub mod tree;
pub mod unionfind;

pub use csr::{Csr, IncidentIter, IncidentSlots};
pub use cut::Cut;
pub use flow::{excess_block_into, residual_block_into, Demand, FlowVec};
pub use graph::{Edge, EdgeId, Graph, GraphBuilder, GraphMemory, NodeId};
pub use spanning::{
    bfs_tree, max_weight_spanning_tree, minimum_spanning_tree, random_spanning_tree,
};
pub use tree::RootedTree;
pub use unionfind::UnionFind;

/// Error type for graph construction and query operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was out of range for the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge index was out of range for the graph.
    EdgeOutOfRange {
        /// The offending edge index.
        edge: usize,
        /// The number of edges in the graph.
        num_edges: usize,
    },
    /// A capacity or length was not strictly positive / finite.
    InvalidWeight {
        /// The offending value.
        value: f64,
    },
    /// The graph is not connected but the operation requires connectivity.
    NotConnected,
    /// A self-loop was supplied where it is not allowed.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// A node count exceeded the `u32` id space ([`Graph::MAX_NODES`]).
    /// Construction rejects this up front instead of truncating ids.
    TooManyNodes {
        /// The requested node count.
        requested: usize,
    },
    /// An edge count exceeded the `u32` id space ([`Graph::MAX_EDGES`]:
    /// `u32::MAX / 2`, so the `2m` CSR slot offsets still fit in `u32`).
    /// Construction rejects this up front instead of truncating ids.
    TooManyEdges {
        /// The requested edge count.
        requested: usize,
    },
    /// The operation requires a non-empty graph.
    Empty,
    /// The graph has nodes but no edges. Solvers reject this up front: with
    /// an empty edge set the paper's soft-max potential
    /// `ln Σ_i (e^{y_i} + e^{-y_i})` is an empty sum whose logarithm is
    /// undefined (see `maxflow::almost_route::smax`), and no flow can route
    /// anything anyway.
    NoEdges,
    /// A demand / price vector did not match the dimension the operator was
    /// built for (demand entries per node, prices per operator row).
    DemandMismatch {
        /// The dimension the operation expected.
        expected: usize,
        /// The dimension that was supplied.
        actual: usize,
    },
    /// A solver configuration contained a value that can never produce a
    /// meaningful run (e.g. `epsilon <= 0`, `NaN`, or a zero iteration
    /// budget). Rejected up front instead of looping forever or emitting NaN
    /// flows.
    InvalidConfig {
        /// The offending configuration parameter.
        parameter: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// An internal bookkeeping invariant was violated. This indicates a bug
    /// in the library, not bad input; it is returned as a typed error (rather
    /// than panicking) so long-lived serving processes fail the one request
    /// instead of aborting a worker thread.
    Internal {
        /// Which invariant was violated.
        invariant: &'static str,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node index {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::EdgeOutOfRange { edge, num_edges } => {
                write!(
                    f,
                    "edge index {edge} out of range for graph with {num_edges} edges"
                )
            }
            GraphError::InvalidWeight { value } => {
                write!(f, "weight {value} is not a strictly positive finite number")
            }
            GraphError::NotConnected => write!(f, "graph is not connected"),
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} is not allowed"),
            GraphError::TooManyNodes { requested } => {
                write!(
                    f,
                    "node count {requested} exceeds the u32 id space (max {})",
                    graph::Graph::MAX_NODES
                )
            }
            GraphError::TooManyEdges { requested } => {
                write!(
                    f,
                    "edge count {requested} exceeds the u32 id space (max {})",
                    graph::Graph::MAX_EDGES
                )
            }
            GraphError::Empty => write!(f, "graph is empty"),
            GraphError::NoEdges => write!(f, "graph has no edges"),
            GraphError::DemandMismatch { expected, actual } => {
                write!(
                    f,
                    "vector of length {actual} does not match the expected dimension {expected}"
                )
            }
            GraphError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration: {parameter} {reason}")
            }
            GraphError::Internal { invariant } => {
                write!(
                    f,
                    "internal invariant violated: {invariant} (library bug — please report)"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
