//! Rooted trees over a graph's node set.
//!
//! Trees are the workhorse of the paper: low average-stretch spanning trees
//! (§7), the virtual trees of the congestion approximator (§8), and the
//! maximum-weight spanning tree used to repair residual demand (§9, Alg. 1)
//! all need the same machinery — orientation towards a root, subtree
//! aggregation, least common ancestors, tree-induced cuts and the trivial
//! routing of a demand vector over a tree.

use serde::{Deserialize, Serialize};

use crate::cut::Cut;
use crate::flow::{Demand, FlowVec};
use crate::graph::{EdgeId, Graph, NodeId};
use crate::{GraphError, Result};

/// A rooted tree on the node set `0..n`.
///
/// The tree may be a spanning subtree of a [`Graph`] (then every non-root node
/// records the graph edge to its parent) or a purely *virtual* tree whose
/// edges carry their own capacities (the j-trees of §8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    /// Graph edge realizing the parent edge, when the tree is a subtree of a graph.
    parent_edge: Vec<Option<EdgeId>>,
    /// Capacity of the parent edge of each node (virtual trees); `None` means
    /// "inherit from the graph edge".
    parent_capacity: Vec<Option<f64>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
    /// Nodes in a top-down (preorder/BFS) order; reversing gives bottom-up.
    order: Vec<NodeId>,
}

impl RootedTree {
    /// Builds a rooted tree from a parent array.
    ///
    /// `parent[v]` must be `None` exactly for the root; all other nodes must
    /// reach the root by following parents.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotConnected`] if some node cannot reach the root
    /// or the parent pointers contain a cycle.
    pub fn from_parents(
        root: NodeId,
        parent: Vec<Option<NodeId>>,
        parent_edge: Vec<Option<EdgeId>>,
    ) -> Result<Self> {
        let n = parent.len();
        if root.index() >= n {
            return Err(GraphError::NodeOutOfRange {
                node: root.index(),
                num_nodes: n,
            });
        }
        let mut children = vec![Vec::new(); n];
        for (v, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                if p.index() >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: p.index(),
                        num_nodes: n,
                    });
                }
                children[p.index()].push(NodeId(v as u32));
            } else if v != root.index() {
                return Err(GraphError::NotConnected);
            }
        }
        if parent[root.index()].is_some() {
            return Err(GraphError::NotConnected);
        }
        // BFS from the root to compute depths / order and detect unreachable nodes.
        let mut depth = vec![usize::MAX; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        depth[root.index()] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &c in &children[u.index()] {
                if depth[c.index()] != usize::MAX {
                    return Err(GraphError::NotConnected);
                }
                depth[c.index()] = depth[u.index()] + 1;
                queue.push_back(c);
            }
        }
        if order.len() != n {
            return Err(GraphError::NotConnected);
        }
        Ok(RootedTree {
            root,
            parent,
            parent_edge,
            parent_capacity: vec![None; n],
            children,
            depth,
            order,
        })
    }

    /// Builds a rooted spanning tree of `g` from an (unoriented) set of tree
    /// edges by a BFS over those edges starting at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotConnected`] if the edges do not span all nodes.
    pub fn spanning_from_edges(g: &Graph, root: NodeId, edges: &[EdgeId]) -> Result<Self> {
        let n = g.num_nodes();
        // Flat CSR over the edge subset, preserving the given edge order per
        // node (same traversal order as the legacy per-node Vec adjacency).
        let adj = crate::csr::Csr::from_links(
            n,
            edges.iter().map(|&eid| {
                let e = g.edge(eid);
                (eid, e.tail, e.head)
            }),
        );
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[root.index()] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for (eid, w) in adj.incident(u) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    parent[w.index()] = Some(u);
                    parent_edge[w.index()] = Some(eid);
                    queue.push_back(w);
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err(GraphError::NotConnected);
        }
        RootedTree::from_parents(root, parent, parent_edge)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Graph edge realizing the parent edge of `v` (if the tree is a spanning
    /// subtree of a graph).
    #[inline]
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// Children of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Depth of `v` (root has depth 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v.index()]
    }

    /// Maximum depth over all nodes.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Nodes in a top-down order (every node appears after its parent).
    pub fn preorder(&self) -> &[NodeId] {
        &self.order
    }

    /// Sets an explicit capacity for the parent edge of `v` (virtual trees).
    pub fn set_parent_capacity(&mut self, v: NodeId, capacity: f64) {
        self.parent_capacity[v.index()] = Some(capacity);
    }

    /// Capacity of the parent edge of `v`: the explicitly set virtual capacity
    /// if present, otherwise the capacity of the realizing graph edge.
    ///
    /// Returns `None` for the root or when neither is available.
    pub fn parent_capacity(&self, g: &Graph, v: NodeId) -> Option<f64> {
        self.parent[v.index()]?;
        if let Some(c) = self.parent_capacity[v.index()] {
            return Some(c);
        }
        self.parent_edge[v.index()].map(|e| g.capacity(e))
    }

    /// Iterates over the tree edges as `(child, parent)` pairs.
    pub fn tree_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.order
            .iter()
            .filter_map(move |&v| self.parent[v.index()].map(|p| (v, p)))
    }

    /// The graph edges used by this tree (when it is a spanning subtree).
    pub fn graph_edges(&self) -> Vec<EdgeId> {
        self.parent_edge.iter().filter_map(|e| *e).collect()
    }

    /// Returns `true` if `a` is an ancestor of `d` (or equal to it).
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        let mut cur = d;
        loop {
            if cur == a {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Least common ancestor of `u` and `v` (walk-up algorithm, `O(depth)`).
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut a, mut b) = (u, v);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("node above root");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("node above root");
        }
        while a != b {
            a = self.parent(a).expect("node above root");
            b = self.parent(b).expect("node above root");
        }
        a
    }

    /// Number of tree edges on the unique path between `u` and `v`.
    pub fn path_hops(&self, u: NodeId, v: NodeId) -> usize {
        let l = self.lca(u, v);
        self.depth(u) + self.depth(v) - 2 * self.depth(l)
    }

    /// Nodes on the unique path from `u` up to (and including) its ancestor `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an ancestor of `u`.
    pub fn path_to_ancestor(&self, u: NodeId, a: NodeId) -> Vec<NodeId> {
        let mut path = vec![u];
        let mut cur = u;
        while cur != a {
            cur = self
                .parent(cur)
                .expect("reached the root before the requested ancestor");
            path.push(cur);
        }
        path
    }

    /// Per-node sums over subtrees: `out[v] = Σ_{w in subtree(v)} values[w]`.
    pub fn subtree_sums(&self, values: &[f64]) -> Vec<f64> {
        let mut sums = vec![0.0; self.num_nodes()];
        self.subtree_sums_into(values, &mut sums);
        sums
    }

    /// Writes all subtree sums of `values` into `out` without allocating
    /// (used by the allocation-free operator evaluations of the session API).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` or `out.len()` does not equal the node count.
    pub fn subtree_sums_into(&self, values: &[f64], out: &mut [f64]) {
        assert_eq!(
            values.len(),
            self.num_nodes(),
            "value vector length mismatch"
        );
        assert_eq!(out.len(), self.num_nodes(), "output buffer length mismatch");
        out.copy_from_slice(values);
        for &v in self.order.iter().rev() {
            if let Some(p) = self.parent(v) {
                let add = out[v.index()];
                out[p.index()] += add;
            }
        }
    }

    /// Per-node sums of `values` along the path from the root down to each
    /// node: `out[v] = Σ_{w on root..v path} values[w]` (inclusive).
    ///
    /// This is the "downcast" aggregation used to accumulate node potentials
    /// (§9.1).
    pub fn prefix_sums_from_root(&self, values: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_nodes()];
        self.prefix_sums_from_root_into(values, &mut out);
        out
    }

    /// Writes all root-to-node prefix sums of `values` into `out` without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` or `out.len()` does not equal the node count.
    pub fn prefix_sums_from_root_into(&self, values: &[f64], out: &mut [f64]) {
        assert_eq!(
            values.len(),
            self.num_nodes(),
            "value vector length mismatch"
        );
        assert_eq!(out.len(), self.num_nodes(), "output buffer length mismatch");
        for &v in &self.order {
            let base = match self.parent(v) {
                Some(p) => out[p.index()],
                None => 0.0,
            };
            out[v.index()] = base + values[v.index()];
        }
    }

    /// Distance from the root to every node where the parent edge of `v` has
    /// length `edge_length(v)`.
    pub fn root_distances(&self, mut edge_length: impl FnMut(NodeId) -> f64) -> Vec<f64> {
        let mut dist = vec![0.0; self.num_nodes()];
        for &v in &self.order {
            if let Some(p) = self.parent(v) {
                dist[v.index()] = dist[p.index()] + edge_length(v);
            }
        }
        dist
    }

    /// Tree distance between `u` and `v` given precomputed root distances.
    pub fn tree_distance(&self, root_dist: &[f64], u: NodeId, v: NodeId) -> f64 {
        let l = self.lca(u, v);
        root_dist[u.index()] + root_dist[v.index()] - 2.0 * root_dist[l.index()]
    }

    /// The cut induced by the parent edge of `v`: the subtree rooted at `v`
    /// versus the rest of the graph.
    pub fn subtree_cut(&self, v: NodeId) -> Cut {
        let mut side = vec![false; self.num_nodes()];
        // Mark subtree(v) via a DFS over children.
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            if side[u.index()] {
                continue;
            }
            side[u.index()] = true;
            stack.extend_from_slice(self.children(u));
        }
        Cut::from_membership(side)
    }

    /// Routes the demand `d` over the tree: returns, for every non-root node
    /// `v`, the signed flow on its parent edge (positive = towards the
    /// parent). Entry for the root is 0.
    ///
    /// The flow on the parent edge of `v` equals the net excess demanded by
    /// the subtree of `v` (everything below must be shipped through that
    /// edge), which is the unique way to route on a tree.
    pub fn route_demand(&self, d: &Demand) -> Vec<f64> {
        assert_eq!(d.len(), self.num_nodes(), "demand length mismatch");
        // subtree_sums of b: positive sum means the subtree is a net sink,
        // so flow must come *down* the parent edge (towards the child).
        // We define "towards parent" as positive, so the parent-edge flow is
        // -subtree_sum (the surplus of the subtree flows up).
        self.subtree_sums(d.values())
            .iter()
            .zip(0..)
            .map(|(&s, v)| if NodeId(v) == self.root { 0.0 } else { -s })
            .collect()
    }

    /// Routes the demand `d` over the tree and materializes it as a flow on
    /// the underlying graph (only possible for spanning subtrees, i.e. when
    /// every parent edge is realized by a graph edge).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotConnected`] if some parent edge has no
    /// realizing graph edge.
    pub fn route_demand_on_graph(&self, g: &Graph, d: &Demand) -> Result<FlowVec> {
        let per_node = self.route_demand(d);
        let mut f = FlowVec::zeros(g.num_edges());
        for &v in &self.order {
            if v == self.root {
                continue;
            }
            let eid = self.parent_edge[v.index()].ok_or(GraphError::NotConnected)?;
            let p = self.parent(v).expect("non-root has parent");
            let e = g.edge(eid);
            // per_node[v] > 0 means flow from v towards p.
            let toward_parent = per_node[v.index()];
            let signed = if e.tail == v && e.head == p {
                toward_parent
            } else {
                -toward_parent
            };
            f.add(eid, signed);
        }
        Ok(f)
    }

    /// Maximum congestion over the *tree edges* when routing demand `d`,
    /// using the tree's own capacities (virtual capacity if set, otherwise the
    /// realizing graph edge's capacity).
    pub fn routing_congestion(&self, g: &Graph, d: &Demand) -> f64 {
        let per_node = self.route_demand(d);
        let mut worst: f64 = 0.0;
        for &v in &self.order {
            if v == self.root {
                continue;
            }
            let cap = self
                .parent_capacity(g, v)
                .expect("non-root node of a capacitated tree has a parent capacity");
            if cap > 0.0 {
                worst = worst.max(per_node[v.index()].abs() / cap);
            } else if per_node[v.index()].abs() > 0.0 {
                worst = f64::INFINITY;
            }
        }
        worst
    }

    /// [`Self::routing_congestion`] specialized to the two-spike demand that
    /// ships `amount` units from `s` to `t`, in `O(depth)` instead of `O(n)`.
    ///
    /// Routing an s–t demand on a tree loads exactly the parent edges on the
    /// `s → lca` and `t → lca` paths with `|amount|` units each; every other
    /// tree edge carries zero. Because the max fold over non-negative terms
    /// is order-independent and zero-flow edges contribute nothing (including
    /// the `cap = 0` branch, which only fires for nonzero flow), the result
    /// is bit-identical to [`Self::routing_congestion`] on
    /// `Demand::st(g, s, t, amount)`.
    pub fn st_routing_congestion(&self, g: &Graph, s: NodeId, t: NodeId, amount: f64) -> f64 {
        let load = amount.abs();
        let l = self.lca(s, t);
        let mut worst: f64 = 0.0;
        for leg in [s, t] {
            let mut v = leg;
            while v != l {
                let cap = self
                    .parent_capacity(g, v)
                    .expect("non-root node of a capacitated tree has a parent capacity");
                if cap > 0.0 {
                    worst = worst.max(load / cap);
                } else if load > 0.0 {
                    worst = f64::INFINITY;
                }
                v = self.parent(v).expect("the lca is an ancestor of both legs");
            }
        }
        worst
    }

    /// Average stretch of the graph's edges with respect to this tree, in the
    /// paper's sense (Theorem 3.1): `Σ_e dT(u_e, v_e) / Σ_e ℓ(e)` where `ℓ`
    /// assigns each graph edge a length and the tree's parent edges inherit
    /// the length of their realizing graph edge.
    ///
    /// # Panics
    ///
    /// Panics if the tree is not a spanning subtree of `g` (some parent edge
    /// has no realizing graph edge).
    pub fn average_stretch(&self, g: &Graph, length: impl Fn(EdgeId) -> f64) -> f64 {
        let root_dist = self.root_distances(|v| {
            let e = self.parent_edge[v.index()].expect("spanning subtree required");
            length(e)
        });
        let mut total_tree_dist = 0.0;
        let mut total_length = 0.0;
        for (id, e) in g.edges() {
            total_length += length(id);
            total_tree_dist += self.tree_distance(&root_dist, e.tail, e.head);
        }
        if total_length <= 0.0 {
            0.0
        } else {
            total_tree_dist / total_length
        }
    }

    /// Per-edge stretch `dT(u_e, v_e) / ℓ(e)` for every graph edge.
    ///
    /// # Panics
    ///
    /// Panics if the tree is not a spanning subtree of `g`.
    pub fn edge_stretches(&self, g: &Graph, length: impl Fn(EdgeId) -> f64) -> Vec<f64> {
        let root_dist = self.root_distances(|v| {
            let e = self.parent_edge[v.index()].expect("spanning subtree required");
            length(e)
        });
        g.edges()
            .map(|(id, e)| {
                self.tree_distance(&root_dist, e.tail, e.head) / length(id).max(f64::MIN_POSITIVE)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Path 0-1-2-3 plus chord 0-3.
    fn diamond() -> Graph {
        GraphBuilder::new(4)
            .edge(0, 1, 1.0)
            .edge(1, 2, 1.0)
            .edge(2, 3, 1.0)
            .edge(0, 3, 1.0)
            .build()
            .unwrap()
    }

    fn path_tree(g: &Graph) -> RootedTree {
        RootedTree::spanning_from_edges(g, NodeId(0), &[EdgeId(0), EdgeId(1), EdgeId(2)]).unwrap()
    }

    #[test]
    fn spanning_tree_structure() {
        let g = diamond();
        let t = path_tree(&g);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(t.depth(NodeId(3)), 3);
        assert_eq!(t.max_depth(), 3);
        assert_eq!(t.children(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.graph_edges().len(), 3);
        assert_eq!(t.tree_edges().count(), 3);
    }

    #[test]
    fn lca_and_paths() {
        let g = diamond();
        let t = path_tree(&g);
        assert_eq!(t.lca(NodeId(3), NodeId(1)), NodeId(1));
        assert_eq!(t.lca(NodeId(3), NodeId(3)), NodeId(3));
        assert_eq!(t.path_hops(NodeId(0), NodeId(3)), 3);
        assert!(t.is_ancestor(NodeId(1), NodeId(3)));
        assert!(!t.is_ancestor(NodeId(3), NodeId(1)));
        assert_eq!(
            t.path_to_ancestor(NodeId(3), NodeId(1)),
            vec![NodeId(3), NodeId(2), NodeId(1)]
        );
    }

    #[test]
    fn subtree_sums_and_prefix_sums() {
        let g = diamond();
        let t = path_tree(&g);
        let vals = [1.0, 2.0, 3.0, 4.0];
        let sums = t.subtree_sums(&vals);
        assert_eq!(sums, vec![10.0, 9.0, 7.0, 4.0]);
        let prefix = t.prefix_sums_from_root(&vals);
        assert_eq!(prefix, vec![1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn route_demand_on_path() {
        let g = diamond();
        let t = path_tree(&g);
        let d = Demand::st(&g, NodeId(0), NodeId(3), 2.0);
        let per_node = t.route_demand(&d);
        // subtree(1) = {1,2,3} needs +2, so 2 units flow down edge (1->0)? No:
        // flow toward parent is -subtree_sum = -2 (i.e. 2 units flow from parent to child).
        assert!((per_node[1] + 2.0).abs() < 1e-12);
        assert!((per_node[3] + 2.0).abs() < 1e-12);
        let f = t.route_demand_on_graph(&g, &d).unwrap();
        let val = f
            .validate_st_flow(&g, NodeId(0), NodeId(3), 1e-6)
            .unwrap_err();
        // capacity 1.0 is violated by routing 2 units on the path; the check
        // reports the offending value.
        let _ = val;
        assert!((f.st_value(&g, NodeId(0)) - 2.0).abs() < 1e-12);
        assert!((f.max_congestion(&g) - 2.0).abs() < 1e-12);
        assert!((t.routing_congestion(&g, &d) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn route_balanced_demand_conserves() {
        let g = diamond();
        let t = path_tree(&g);
        let mut d = Demand::zeros(4);
        d.set(NodeId(0), -1.0);
        d.set(NodeId(1), 3.0);
        d.set(NodeId(2), -2.5);
        d.set(NodeId(3), 0.5);
        assert!(d.is_balanced(1e-12));
        let f = t.route_demand_on_graph(&g, &d).unwrap();
        let ex = f.excess(&g);
        for (v, x) in ex.iter().enumerate().take(4) {
            assert!(
                (x - d.get(NodeId(v as u32))).abs() < 1e-9,
                "excess mismatch at {v}"
            );
        }
    }

    #[test]
    fn subtree_cut_capacity() {
        let g = diamond();
        let t = path_tree(&g);
        let cut = t.subtree_cut(NodeId(2));
        // subtree {2,3}: crossing edges are (1,2) and (0,3) -> capacity 2.
        assert!((cut.capacity(&g) - 2.0).abs() < 1e-12);
        assert!(cut.contains(NodeId(2)));
        assert!(cut.contains(NodeId(3)));
        assert!(!cut.contains(NodeId(0)));
    }

    #[test]
    fn average_stretch_of_path_tree() {
        let g = diamond();
        let t = path_tree(&g);
        // Edges on the tree have stretch 1; chord (0,3) has tree distance 3.
        let s = t.average_stretch(&g, |e| g.capacity(e));
        assert!((s - (1.0 + 1.0 + 1.0 + 3.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn from_parents_rejects_disconnected() {
        let parent = vec![None, Some(NodeId(0)), None];
        let r = RootedTree::from_parents(NodeId(0), parent, vec![None; 3]);
        assert!(matches!(r, Err(GraphError::NotConnected)));
    }

    #[test]
    fn from_parents_rejects_cycle() {
        let parent = vec![None, Some(NodeId(2)), Some(NodeId(1))];
        let r = RootedTree::from_parents(NodeId(0), parent, vec![None; 3]);
        assert!(matches!(r, Err(GraphError::NotConnected)));
    }

    #[test]
    fn spanning_from_edges_requires_spanning_set() {
        let g = diamond();
        let r = RootedTree::spanning_from_edges(&g, NodeId(0), &[EdgeId(0)]);
        assert!(matches!(r, Err(GraphError::NotConnected)));
    }

    #[test]
    fn sparse_st_congestion_is_bit_identical_to_dense() {
        let g = diamond();
        let mut t = path_tree(&g);
        t.set_parent_capacity(NodeId(2), 0.37);
        for (s, tt, amount) in [
            (NodeId(0), NodeId(3), 1.0),
            (NodeId(3), NodeId(0), 2.5),
            (NodeId(1), NodeId(2), -0.75),
            (NodeId(2), NodeId(2), 1.0),
        ] {
            let dense = t.routing_congestion(&g, &Demand::st(&g, s, tt, amount));
            let sparse = t.st_routing_congestion(&g, s, tt, amount);
            assert_eq!(
                sparse.to_bits(),
                dense.to_bits(),
                "({s:?}, {tt:?}, {amount})"
            );
        }
        // The cap = 0 branch must still escalate to infinity.
        t.set_parent_capacity(NodeId(3), 0.0);
        let dense = t.routing_congestion(&g, &Demand::st(&g, NodeId(0), NodeId(3), 1.0));
        let sparse = t.st_routing_congestion(&g, NodeId(0), NodeId(3), 1.0);
        assert!(dense.is_infinite() && sparse.is_infinite());
    }

    #[test]
    fn virtual_capacities_override_graph() {
        let g = diamond();
        let mut t = path_tree(&g);
        assert_eq!(t.parent_capacity(&g, NodeId(1)), Some(1.0));
        t.set_parent_capacity(NodeId(1), 7.0);
        assert_eq!(t.parent_capacity(&g, NodeId(1)), Some(7.0));
        assert_eq!(t.parent_capacity(&g, NodeId(0)), None);
    }
}
