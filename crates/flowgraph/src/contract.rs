//! Quotient (contracted) multigraphs.
//!
//! Both the AKPW low-stretch tree construction (§7, Algorithm of Alon et al.:
//! "contract each resulting cluster to a single node … leave parallel edges in
//! place") and the cluster-graph machinery of §5/§8 work on graphs obtained by
//! contracting a partition of the nodes. [`ContractedGraph`] performs the
//! contraction while remembering, for every surviving multigraph edge, the
//! original graph edge that realizes it — exactly the invariant the paper
//! maintains ("every core edge is also a graph edge", §3).

use crate::graph::{EdgeId, Graph, NodeId};

/// A multigraph obtained from a base graph by contracting a node partition.
#[derive(Debug, Clone)]
pub struct ContractedGraph {
    /// The contracted multigraph; node `i` corresponds to cluster `i`.
    pub graph: Graph,
    /// Cluster label of every node of the base graph.
    pub cluster_of: Vec<usize>,
    /// For every edge of the contracted graph, the realizing edge of the base graph.
    pub original_edge: Vec<EdgeId>,
    /// Members of every cluster.
    pub members: Vec<Vec<NodeId>>,
}

impl ContractedGraph {
    /// Contracts `g` according to the partition `cluster_of` (labels must be
    /// dense in `0..num_clusters`). Self-loops (edges inside a cluster) are
    /// dropped; parallel edges are kept as separate multigraph edges.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_of.len() != g.num_nodes()` or labels are not dense.
    pub fn new(g: &Graph, cluster_of: &[usize]) -> Self {
        assert_eq!(
            cluster_of.len(),
            g.num_nodes(),
            "cluster labelling length mismatch"
        );
        let num_clusters = cluster_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut members = vec![Vec::new(); num_clusters];
        for (v, &c) in cluster_of.iter().enumerate() {
            assert!(c < num_clusters, "cluster labels must be dense");
            members[c].push(NodeId(v as u32));
        }
        assert!(
            members.iter().all(|m| !m.is_empty()),
            "cluster labels must be dense (every label used)"
        );
        let mut graph = Graph::with_nodes(num_clusters);
        let mut original_edge = Vec::new();
        for (id, e) in g.edges() {
            let (cu, cv) = (cluster_of[e.tail.index()], cluster_of[e.head.index()]);
            if cu == cv {
                continue;
            }
            graph
                .add_edge(NodeId(cu as u32), NodeId(cv as u32), e.capacity)
                .expect("contracted edge endpoints are valid clusters");
            original_edge.push(id);
        }
        ContractedGraph {
            graph,
            cluster_of: cluster_of.to_vec(),
            original_edge,
            members,
        }
    }

    /// Contracts by merging the endpoints of the given edges (every connected
    /// component of the chosen edge set becomes one cluster).
    pub fn by_merging_edges(g: &Graph, merge: &[EdgeId]) -> Self {
        let mut uf = crate::unionfind::UnionFind::new(g.num_nodes());
        for &e in merge {
            let edge = g.edge(e);
            uf.union(edge.tail.index(), edge.head.index());
        }
        let labels = uf.labels();
        ContractedGraph::new(g, &labels)
    }

    /// Number of clusters (nodes of the contracted multigraph).
    pub fn num_clusters(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The cluster containing base-graph node `v`.
    pub fn cluster(&self, v: NodeId) -> usize {
        self.cluster_of[v.index()]
    }

    /// The base-graph edge realizing contracted edge `e`.
    pub fn realize(&self, e: EdgeId) -> EdgeId {
        self.original_edge[e.index()]
    }

    /// Aggregates per-base-node values to per-cluster sums.
    pub fn aggregate_node_values(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(
            values.len(),
            self.cluster_of.len(),
            "value vector length mismatch"
        );
        let mut out = vec![0.0; self.num_clusters()];
        for (v, &c) in self.cluster_of.iter().enumerate() {
            out[c] += values[v];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn two_triangles() -> Graph {
        // Triangle {0,1,2} and triangle {3,4,5} joined by edges (2,3) and (0,5).
        GraphBuilder::new(6)
            .edge(0, 1, 1.0)
            .edge(1, 2, 1.0)
            .edge(2, 0, 1.0)
            .edge(3, 4, 1.0)
            .edge(4, 5, 1.0)
            .edge(5, 3, 1.0)
            .edge(2, 3, 5.0)
            .edge(0, 5, 7.0)
            .build()
            .unwrap()
    }

    #[test]
    fn contract_two_clusters() {
        let g = two_triangles();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let c = ContractedGraph::new(&g, &labels);
        assert_eq!(c.num_clusters(), 2);
        // Only the two joining edges survive, as parallel edges.
        assert_eq!(c.graph.num_edges(), 2);
        let caps: Vec<f64> = c.graph.edges().map(|(_, e)| e.capacity).collect();
        assert!(caps.contains(&5.0) && caps.contains(&7.0));
        assert_eq!(c.members[0].len(), 3);
        assert_eq!(c.cluster(NodeId(4)), 1);
        // The realizing edges are the original joining edges.
        let realized: Vec<EdgeId> = (0..2).map(|i| c.realize(EdgeId(i as u32))).collect();
        assert!(realized.contains(&EdgeId(6)));
        assert!(realized.contains(&EdgeId(7)));
    }

    #[test]
    fn contract_by_merging_edges() {
        let g = two_triangles();
        // Merge the first triangle's edges only.
        let c = ContractedGraph::by_merging_edges(&g, &[EdgeId(0), EdgeId(1)]);
        assert_eq!(c.num_clusters(), 4);
        // Edges inside the merged triangle disappear (edge 2 becomes a self-loop).
        assert_eq!(c.graph.num_edges(), g.num_edges() - 3);
    }

    #[test]
    fn aggregate_values() {
        let g = two_triangles();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let c = ContractedGraph::new(&g, &labels);
        let agg = c.aggregate_node_values(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(agg, vec![6.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_labels_panic() {
        let g = two_triangles();
        let labels = vec![0, 0, 0, 2, 2, 2];
        let _ = ContractedGraph::new(&g, &labels);
    }
}
