//! `GraphError` as a first-class `std::error::Error`: every variant's
//! `Display` message names the offending field or dimension, the type
//! composes with `?` behind `Box<dyn Error>` (the `anyhow`-style pattern
//! downstream binaries use), and the `congest` simulation errors join the
//! same ecosystem.

use std::error::Error;

use flowgraph::{gen, Graph, GraphError, NodeId};

/// Every variant with the substrings its message must carry: the offending
/// value AND the dimension/field it violated, so an operator can act on the
/// message without reading source code.
fn display_cases() -> Vec<(GraphError, Vec<&'static str>)> {
    vec![
        (
            GraphError::NodeOutOfRange {
                node: 17,
                num_nodes: 5,
            },
            vec!["17", "5", "node"],
        ),
        (
            GraphError::EdgeOutOfRange {
                edge: 99,
                num_edges: 12,
            },
            vec!["99", "12", "edge"],
        ),
        (
            GraphError::InvalidWeight { value: -2.5 },
            vec!["-2.5", "positive"],
        ),
        (GraphError::NotConnected, vec!["connected"]),
        (GraphError::SelfLoop { node: 3 }, vec!["3", "self-loop"]),
        (GraphError::Empty, vec!["empty"]),
        (
            GraphError::DemandMismatch {
                expected: 25,
                actual: 9,
            },
            vec!["25", "9"],
        ),
        (
            GraphError::InvalidConfig {
                parameter: "epsilon",
                reason: "must be a finite number > 0",
            },
            vec!["epsilon", "finite"],
        ),
        (
            GraphError::Internal {
                invariant: "batch left a query unanswered",
            },
            vec!["internal", "batch left a query unanswered", "report"],
        ),
    ]
}

#[test]
fn every_variant_names_the_offending_field() {
    for (err, must_contain) in display_cases() {
        let msg = err.to_string();
        for needle in must_contain {
            assert!(
                msg.contains(needle),
                "{err:?}: message {msg:?} lacks {needle:?}"
            );
        }
    }
}

#[test]
fn graph_error_is_a_std_error_without_a_synthetic_source() {
    // GraphError variants are leaf diagnoses — they wrap no underlying
    // error, so source() must be None (a fabricated chain would mislead
    // error-report walkers).
    for (err, _) in display_cases() {
        let as_error: &dyn Error = &err;
        assert!(as_error.source().is_none(), "{err:?}");
        // Display and Debug both carry content.
        assert!(!as_error.to_string().is_empty());
        assert!(!format!("{err:?}").is_empty());
    }
}

/// The `?`-composition pattern downstream binaries use: any `GraphError`
/// hops into `Box<dyn Error>` without glue code.
fn boxed_pipeline(g: &Graph) -> Result<f64, Box<dyn Error>> {
    let tree = flowgraph::spanning::bfs_tree(g, NodeId(0))?;
    let demand = flowgraph::Demand::st(g, NodeId(0), NodeId((g.num_nodes() - 1) as u32), 1.0);
    let flow = tree.route_demand_on_graph(g, &demand)?;
    Ok(flow.values().iter().map(|x| x.abs()).sum())
}

#[test]
fn question_mark_composes_through_box_dyn_error() {
    let ok = boxed_pipeline(&gen::path(5, 1.0)).expect("connected path routes");
    assert!(ok > 0.0);

    // A disconnected graph surfaces the typed error through the box, with
    // the message intact for the operator.
    let mut disconnected = Graph::with_nodes(4);
    disconnected.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    let err = boxed_pipeline(&disconnected).expect_err("disconnected graph cannot route");
    assert!(err.to_string().contains("connected"));
    assert!(err.downcast_ref::<GraphError>().is_some());
    assert!(matches!(
        err.downcast_ref::<GraphError>(),
        Some(GraphError::NotConnected)
    ));
}

#[test]
fn construction_errors_round_trip_through_results() {
    let mut g = Graph::with_nodes(3);
    // Self loops are rejected with the node named.
    let err = g.add_edge(NodeId(1), NodeId(1), 1.0).unwrap_err();
    assert!(matches!(err, GraphError::SelfLoop { node: 1 }));
    assert!(err.to_string().contains('1'));
    // Invalid weights are rejected with the value named.
    let err = g.add_edge(NodeId(0), NodeId(1), f64::NAN).unwrap_err();
    assert!(matches!(err, GraphError::InvalidWeight { .. }));
    // Out-of-range endpoints name both the index and the bound.
    let err = g.add_edge(NodeId(0), NodeId(7), 1.0).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('7') && msg.contains('3'), "{msg}");
}
