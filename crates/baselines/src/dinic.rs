//! Dinic's algorithm for exact maximum s–t flow on undirected capacitated
//! graphs.
//!
//! Undirected edges are modelled as two anti-parallel residual arcs, each
//! with the full edge capacity; the net flow over the pair is the signed flow
//! on the original undirected edge. This is the exact-optimum oracle the
//! experiments (E2) compare the `(1+ε)`-approximation against.

use flowgraph::{EdgeId, FlowVec, Graph, GraphError, NodeId};

/// Result of an exact max-flow computation.
#[derive(Debug, Clone)]
pub struct ExactFlow {
    /// The maximum flow value.
    pub value: f64,
    /// A feasible flow attaining it, as a signed flow on the undirected edges.
    pub flow: FlowVec,
    /// Number of Dinic phases (BFS level graphs) that were built.
    pub phases: usize,
}

struct Arc {
    to: usize,
    cap: f64,
    flow: f64,
    /// The undirected edge this arc belongs to and its orientation sign.
    edge: EdgeId,
    sign: f64,
}

struct DinicState {
    arcs: Vec<Arc>,
    /// Flat per-node arc lists in CSR layout: node `u`'s outgoing residual
    /// arcs are `head_arcs[head_offsets[u]..head_offsets[u+1]]`.
    head_offsets: Vec<u32>,
    head_arcs: Vec<u32>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl DinicState {
    fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut arcs = Vec::with_capacity(2 * g.num_edges());
        for (id, e) in g.edges() {
            arcs.push(Arc {
                to: e.head.index(),
                cap: e.capacity,
                flow: 0.0,
                edge: id,
                sign: 1.0,
            });
            arcs.push(Arc {
                to: e.tail.index(),
                cap: e.capacity,
                flow: 0.0,
                edge: id,
                sign: -1.0,
            });
        }
        // Arc 2e leaves the tail, arc 2e+1 leaves the head; the graph's CSR
        // gives each node's incident edges, so the per-node arc lists share
        // its offsets.
        let csr = g.csr();
        let mut head_arcs = Vec::with_capacity(csr.num_slots());
        for u in g.nodes() {
            for (e, _) in csr.incident(u) {
                let a = 2 * e.index() + usize::from(g.edge(e).head == u);
                head_arcs.push(a as u32);
            }
        }
        DinicState {
            arcs,
            head_offsets: csr.offsets().to_vec(),
            head_arcs,
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    #[inline]
    fn out_arcs(&self, u: usize) -> &[u32] {
        &self.head_arcs[self.head_offsets[u] as usize..self.head_offsets[u + 1] as usize]
    }

    fn residual(&self, arc: usize) -> f64 {
        self.arcs[arc].cap - self.arcs[arc].flow
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let range = self.head_offsets[u] as usize..self.head_offsets[u + 1] as usize;
            for i in range {
                let arc = &self.arcs[self.head_arcs[i] as usize];
                if self.level[arc.to] < 0 && arc.cap - arc.flow > 1e-12 {
                    self.level[arc.to] = self.level[u] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: f64) -> f64 {
        if u == t {
            return pushed;
        }
        while self.iter[u] < self.out_arcs(u).len() {
            let a = self.out_arcs(u)[self.iter[u]] as usize;
            let v = self.arcs[a].to;
            if self.level[v] == self.level[u] + 1 && self.residual(a) > 1e-12 {
                let d = self.dfs(v, t, pushed.min(self.residual(a)));
                if d > 1e-12 {
                    self.arcs[a].flow += d;
                    // The reverse arc is the partner with opposite sign on the
                    // same undirected edge: arcs are created in pairs.
                    let partner = a ^ 1;
                    self.arcs[partner].flow -= d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0.0
    }
}

/// Computes the exact maximum s–t flow with Dinic's algorithm.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfRange`] for invalid terminals and
/// [`GraphError::SelfLoop`] if `s == t`.
pub fn max_flow(g: &Graph, s: NodeId, t: NodeId) -> Result<ExactFlow, GraphError> {
    let n = g.num_nodes();
    for v in [s, t] {
        if v.index() >= n {
            return Err(GraphError::NodeOutOfRange {
                node: v.index(),
                num_nodes: n,
            });
        }
    }
    if s == t {
        return Err(GraphError::SelfLoop { node: s.index() });
    }
    let mut state = DinicState::new(g);
    let mut value = 0.0;
    let mut phases = 0usize;
    while state.bfs(s.index(), t.index()) {
        phases += 1;
        state.iter.iter_mut().for_each(|i| *i = 0);
        loop {
            let pushed = state.dfs(s.index(), t.index(), f64::INFINITY);
            if pushed <= 1e-12 {
                break;
            }
            value += pushed;
        }
        if phases > 10 * n + 10 {
            break; // numerical safety; cannot happen for rational capacities
        }
    }
    // Net signed flow per undirected edge.
    let mut flow = FlowVec::zeros(g.num_edges());
    for arc in &state.arcs {
        if arc.sign > 0.0 {
            flow.add(arc.edge, arc.flow);
        }
    }
    Ok(ExactFlow {
        value,
        flow,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::{cut, gen, GraphBuilder};

    #[test]
    fn path_bottleneck() {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 3.0)
            .edge(1, 2, 1.5)
            .edge(2, 3, 2.0)
            .build()
            .unwrap();
        let r = max_flow(&g, NodeId(0), NodeId(3)).unwrap();
        assert!((r.value - 1.5).abs() < 1e-9);
        r.flow
            .validate_st_flow(&g, NodeId(0), NodeId(3), 1e-9)
            .unwrap();
    }

    #[test]
    fn parallel_paths_add_up() {
        // Two disjoint s-t paths of capacities 2 and 3.
        let g = GraphBuilder::new(4)
            .edge(0, 1, 2.0)
            .edge(1, 3, 2.0)
            .edge(0, 2, 3.0)
            .edge(2, 3, 3.0)
            .build()
            .unwrap();
        let r = max_flow(&g, NodeId(0), NodeId(3)).unwrap();
        assert!((r.value - 5.0).abs() < 1e-9);
    }

    #[test]
    fn matches_exhaustive_min_cut_on_small_graphs() {
        for seed in 0..5 {
            let g = gen::random_gnp(10, 0.4, (1.0, 5.0), seed);
            let (s, t) = gen::default_terminals(&g);
            let r = max_flow(&g, s, t).unwrap();
            let mincut = cut::exhaustive_min_st_cut(&g, s, t);
            assert!(
                (r.value - mincut).abs() < 1e-6,
                "seed {seed}: flow {} vs min cut {mincut}",
                r.value
            );
            r.flow.validate_st_flow(&g, s, t, 1e-6).unwrap();
        }
    }

    #[test]
    fn grid_corner_to_corner() {
        let g = gen::grid(5, 5, 1.0);
        let r = max_flow(&g, NodeId(0), NodeId(24)).unwrap();
        assert!((r.value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_terminals_rejected() {
        let g = gen::path(3, 1.0);
        assert!(max_flow(&g, NodeId(0), NodeId(0)).is_err());
        assert!(max_flow(&g, NodeId(0), NodeId(7)).is_err());
    }

    #[test]
    fn flow_value_never_exceeds_degree_capacity() {
        let g = gen::random_regular(20, 4, 2.0, 3);
        let (s, t) = gen::default_terminals(&g);
        let r = max_flow(&g, s, t).unwrap();
        assert!(r.value <= g.weighted_degree(s) + 1e-9);
        assert!(r.value <= g.weighted_degree(t) + 1e-9);
    }
}
