//! Baselines for the distributed max-flow reproduction.
//!
//! The paper (§1.2) positions its `(D + √n)·n^{o(1)}`-round algorithm against
//! two kinds of prior art, both of which this crate implements:
//!
//! * **exact centralized algorithms** used as the quality oracle —
//!   [`dinic`] and the centralized [`push_relabel`];
//! * **trivial distributed strategies** used as the round-complexity
//!   yardstick — the `Ω(n²)`-round distributed push–relabel
//!   ([`push_relabel::distributed_max_flow`]), the `O(m)`-round
//!   collect-everything algorithm ([`trivial::collect_and_solve`]) and the
//!   single-spanning-tree routing ([`trivial::single_tree_flow`]).
//!
//! # Example
//!
//! ```
//! use baselines::dinic;
//! use flowgraph::{gen, NodeId};
//!
//! let g = gen::grid(4, 4, 1.0);
//! let exact = dinic::max_flow(&g, NodeId(0), NodeId(15)).unwrap();
//! assert!((exact.value - 2.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dinic;
pub mod push_relabel;
pub mod trivial;

pub use dinic::ExactFlow;
pub use push_relabel::{DistributedPushRelabel, PushRelabelFlow};
pub use trivial::{CollectAndSolve, SingleTreeFlow};
