//! Push–relabel max flow: the centralized exact algorithm and the
//! round-counted distributed variant.
//!
//! The paper's introduction (§1.2) singles out Goldberg–Tarjan push–relabel
//! as "very local and simple to implement in the CONGEST model", but needing
//! `Ω(n²)` rounds to converge — this is the baseline experiment E1 compares
//! the `(D + √n)·n^{o(1)}` algorithm against. The distributed variant below
//! executes the algorithm in synchronous rounds in which every active node
//! performs one push or relabel step based purely on local information
//! (its excess, its label and its residual edges), and reports the number of
//! rounds until no active node remains.

use flowgraph::{FlowVec, Graph, GraphError, NodeId};

/// Result of the centralized push–relabel computation.
#[derive(Debug, Clone)]
pub struct PushRelabelFlow {
    /// The maximum flow value.
    pub value: f64,
    /// A feasible flow attaining it (signed flow on the undirected edges).
    pub flow: FlowVec,
    /// Total number of push operations.
    pub pushes: usize,
    /// Total number of relabel operations.
    pub relabels: usize,
}

/// Result of the synchronous distributed push–relabel execution.
#[derive(Debug, Clone)]
pub struct DistributedPushRelabel {
    /// The maximum flow value.
    pub value: f64,
    /// Number of synchronous rounds until quiescence.
    pub rounds: u64,
    /// Total messages (one per push and one per relabel announcement).
    pub messages: u64,
}

struct Residual {
    /// `flow[e]` is the signed flow on undirected edge `e` (positive along
    /// the fixed orientation).
    flow: Vec<f64>,
}

impl Residual {
    fn residual_from(&self, g: &Graph, e: flowgraph::EdgeId, from: NodeId) -> f64 {
        let edge = g.edge(e);
        let cap = edge.capacity;
        if from == edge.tail {
            cap - self.flow[e.index()]
        } else {
            cap + self.flow[e.index()]
        }
    }

    fn push(&mut self, g: &Graph, e: flowgraph::EdgeId, from: NodeId, amount: f64) {
        let edge = g.edge(e);
        if from == edge.tail {
            self.flow[e.index()] += amount;
        } else {
            self.flow[e.index()] -= amount;
        }
    }
}

fn validate(g: &Graph, s: NodeId, t: NodeId) -> Result<(), GraphError> {
    for v in [s, t] {
        if v.index() >= g.num_nodes() {
            return Err(GraphError::NodeOutOfRange {
                node: v.index(),
                num_nodes: g.num_nodes(),
            });
        }
    }
    if s == t {
        return Err(GraphError::SelfLoop { node: s.index() });
    }
    Ok(())
}

/// Exact maximum s–t flow by FIFO push–relabel (centralized).
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] for
/// invalid terminals.
pub fn max_flow(g: &Graph, s: NodeId, t: NodeId) -> Result<PushRelabelFlow, GraphError> {
    validate(g, s, t)?;
    let n = g.num_nodes();
    let mut res = Residual {
        flow: vec![0.0; g.num_edges()],
    };
    let mut excess = vec![0.0; n];
    let mut label = vec![0usize; n];
    label[s.index()] = n;

    // Saturate all edges out of the source.
    for (e, other) in g.incident(s) {
        let cap = g.capacity(e);
        res.push(g, e, s, cap);
        excess[other.index()] += cap;
        excess[s.index()] -= cap;
    }

    let mut queue: std::collections::VecDeque<NodeId> = g
        .nodes()
        .filter(|&v| v != s && v != t && excess[v.index()] > 1e-12)
        .collect();
    let mut pushes = 0usize;
    let mut relabels = 0usize;
    let mut guard = 0u64;
    let guard_limit = 40 * (n as u64) * (n as u64) * (g.num_edges() as u64).max(1) + 1_000;

    while let Some(u) = queue.pop_front() {
        guard += 1;
        if guard > guard_limit {
            break;
        }
        if u == s || u == t {
            continue;
        }
        while excess[u.index()] > 1e-12 {
            // Try to push to an admissible neighbor.
            let mut pushed = false;
            for (e, v) in g.incident(u) {
                let r = res.residual_from(g, e, u);
                if r <= 1e-12 {
                    continue;
                }
                if label[u.index()] == label[v.index()] + 1 {
                    let amount = excess[u.index()].min(r);
                    res.push(g, e, u, amount);
                    excess[u.index()] -= amount;
                    let was_inactive = excess[v.index()] <= 1e-12;
                    excess[v.index()] += amount;
                    pushes += 1;
                    if was_inactive && v != s && v != t {
                        queue.push_back(v);
                    }
                    pushed = true;
                    if excess[u.index()] <= 1e-12 {
                        break;
                    }
                }
            }
            if pushed && excess[u.index()] <= 1e-12 {
                break;
            }
            if !pushed {
                // Relabel.
                let min_label = g
                    .incident(u)
                    .iter()
                    .filter(|&(e, _)| res.residual_from(g, e, u) > 1e-12)
                    .map(|(_, v)| label[v.index()])
                    .min();
                match min_label {
                    Some(l) => {
                        label[u.index()] = l + 1;
                        relabels += 1;
                        if label[u.index()] > 2 * n + 1 {
                            // Excess cannot reach t anymore; it will flow back
                            // to s eventually. Stop lifting unboundedly.
                            break;
                        }
                    }
                    None => break,
                }
            }
        }
    }

    let flow = FlowVec::from_values(res.flow);
    let value = flow.st_value(g, s);
    Ok(PushRelabelFlow {
        value,
        flow,
        pushes,
        relabels,
    })
}

/// Synchronous distributed push–relabel: in every round each active node
/// (positive excess, not `s`/`t`) performs one local step — either a push to
/// an admissible neighbor or a relabel — and announces it to its neighbors.
/// Returns the exact max-flow value and the number of rounds, which grows as
/// `Θ(n²)` in the worst case (the paper's baseline).
///
/// # Errors
///
/// Returns the same errors as [`max_flow`].
pub fn distributed_max_flow(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    max_rounds: u64,
) -> Result<DistributedPushRelabel, GraphError> {
    validate(g, s, t)?;
    let n = g.num_nodes();
    let mut res = Residual {
        flow: vec![0.0; g.num_edges()],
    };
    let mut excess = vec![0.0; n];
    let mut label = vec![0usize; n];
    label[s.index()] = n;
    let mut messages = 0u64;

    for (e, other) in g.incident(s) {
        let cap = g.capacity(e);
        res.push(g, e, s, cap);
        excess[other.index()] += cap;
        excess[s.index()] -= cap;
        messages += 1;
    }

    let mut rounds = 0u64;
    loop {
        let active: Vec<NodeId> = g
            .nodes()
            .filter(|&v| v != s && v != t && excess[v.index()] > 1e-12 && label[v.index()] <= 2 * n)
            .collect();
        if active.is_empty() || rounds >= max_rounds {
            break;
        }
        rounds += 1;

        // Every active node decides on one action based on the state at the
        // start of the round (labels are exchanged with neighbors, so this is
        // implementable with one message per edge per round).
        let label_snapshot = label.clone();
        let mut pushes: Vec<(NodeId, flowgraph::EdgeId, f64)> = Vec::new();
        let mut relabels: Vec<(NodeId, usize)> = Vec::new();
        for &u in &active {
            let mut best: Option<(flowgraph::EdgeId, f64)> = None;
            for (e, v) in g.incident(u) {
                let r = res.residual_from(g, e, u);
                if r <= 1e-12 {
                    continue;
                }
                if label_snapshot[u.index()] == label_snapshot[v.index()] + 1 {
                    best = Some((e, r));
                    break;
                }
            }
            match best {
                Some((e, r)) => pushes.push((u, e, excess[u.index()].min(r))),
                None => {
                    let min_label = g
                        .incident(u)
                        .iter()
                        .filter(|&(e, _)| res.residual_from(g, e, u) > 1e-12)
                        .map(|(_, v)| label_snapshot[v.index()])
                        .min();
                    if let Some(l) = min_label {
                        relabels.push((u, l + 1));
                    }
                }
            }
        }
        for (u, e, amount) in pushes {
            let amount = amount
                .min(excess[u.index()])
                .min(res.residual_from(g, e, u));
            if amount <= 1e-12 {
                continue;
            }
            let v = g.edge(e).other(u);
            res.push(g, e, u, amount);
            excess[u.index()] -= amount;
            excess[v.index()] += amount;
            messages += 1;
        }
        for (u, l) in relabels {
            label[u.index()] = l;
            messages += g.degree(u) as u64;
        }
    }

    let flow = FlowVec::from_values(res.flow);
    // Measure the value at the sink: it equals the max flow as soon as the
    // first stage has converged, even if some excess has not yet drained back
    // to the source.
    let value = -flow.st_value(g, t);
    Ok(DistributedPushRelabel {
        value,
        rounds,
        messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;
    use flowgraph::gen;

    #[test]
    fn centralized_matches_dinic() {
        for seed in 0..4 {
            let g = gen::random_gnp(14, 0.35, (1.0, 6.0), seed);
            let (s, t) = gen::default_terminals(&g);
            let pr = max_flow(&g, s, t).unwrap();
            let dn = dinic::max_flow(&g, s, t).unwrap();
            assert!(
                (pr.value - dn.value).abs() < 1e-6,
                "seed {seed}: push-relabel {} vs dinic {}",
                pr.value,
                dn.value
            );
            pr.flow.validate_st_flow(&g, s, t, 1e-6).unwrap();
        }
    }

    #[test]
    fn distributed_matches_dinic_and_counts_rounds() {
        let g = gen::grid(4, 4, 1.0);
        let (s, t) = (NodeId(0), NodeId(15));
        let d = distributed_max_flow(&g, s, t, 1_000_000).unwrap();
        let exact = dinic::max_flow(&g, s, t).unwrap();
        assert!(
            (d.value - exact.value).abs() < 1e-6,
            "{} vs {}",
            d.value,
            exact.value
        );
        assert!(d.rounds > 0);
        assert!(d.messages > 0);
    }

    #[test]
    fn distributed_rounds_grow_with_n_even_on_low_diameter_graphs() {
        // The interesting regime for the paper: on low-diameter graphs the
        // new algorithm pays Õ(D + √n) while push-relabel keeps paying
        // polynomially in n. Verify that the measured push-relabel round
        // count keeps growing roughly linearly when n doubles on grids
        // (whose diameter only grows like √n).
        let rounds: Vec<u64> = [5usize, 7, 10]
            .iter()
            .map(|&side| {
                let g = gen::grid(side, side, 1.0);
                let (s, t) = gen::default_terminals(&g);
                distributed_max_flow(&g, s, t, 10_000_000).unwrap().rounds
            })
            .collect();
        assert!(rounds[2] > rounds[0], "rounds must grow with n: {rounds:?}");
        let n0 = 25f64;
        let n2 = 100f64;
        let growth = rounds[2] as f64 / rounds[0] as f64;
        let diameter_growth = (2.0 * 9.0) / (2.0 * 4.0);
        assert!(
            growth > diameter_growth,
            "push-relabel rounds should outgrow the diameter: {rounds:?}"
        );
        let _ = (n0, n2);
    }

    #[test]
    fn push_relabel_on_barbell() {
        let g = gen::barbell(4, 2, 5.0, 2.0);
        let (s, t) = gen::default_terminals(&g);
        let pr = max_flow(&g, s, t).unwrap();
        assert!((pr.value - 2.0).abs() < 1e-6);
        assert!(pr.pushes > 0);
    }

    #[test]
    fn invalid_terminals_rejected() {
        let g = gen::path(3, 1.0);
        assert!(max_flow(&g, NodeId(1), NodeId(1)).is_err());
        assert!(distributed_max_flow(&g, NodeId(0), NodeId(9), 100).is_err());
    }
}
