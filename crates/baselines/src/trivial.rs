//! Trivial distributed baselines (paper §1.2).
//!
//! * [`collect_and_solve`] — "any problem whose input and output can be
//!   encoded with O(log n) bits per edge can be trivially solved in O(m)
//!   rounds by collecting all input at a single node, solving it there, and
//!   distributing the results back". We charge exactly that: `D` rounds to
//!   build a BFS tree plus `m` rounds of pipelining the edge list up and the
//!   per-edge flow values back down, and solve exactly with Dinic locally.
//! * [`single_tree_flow`] — route everything over one spanning tree and scale
//!   to feasibility: the cheapest distributed strategy, used as the quality
//!   floor in E2.

use congest::RoundCost;
use flowgraph::{max_weight_spanning_tree, Demand, FlowVec, Graph, GraphError, NodeId};

use crate::dinic;

/// Result of the collect-at-one-node baseline.
#[derive(Debug, Clone)]
pub struct CollectAndSolve {
    /// The exact max-flow value (computed centrally).
    pub value: f64,
    /// The exact flow.
    pub flow: FlowVec,
    /// The CONGEST round bill: `O(D + m)` for collection plus distribution.
    pub rounds: RoundCost,
}

/// Runs the trivial `O(m)`-round algorithm: collect the topology at one node
/// over a BFS tree, solve exactly, and ship the per-edge answers back.
///
/// # Errors
///
/// Returns graph errors for disconnected inputs or invalid terminals.
pub fn collect_and_solve(g: &Graph, s: NodeId, t: NodeId) -> Result<CollectAndSolve, GraphError> {
    let d = g.approx_hop_diameter()?;
    let exact = dinic::max_flow(g, s, t)?;
    let m = g.num_edges() as u64;
    // Upcast m edge descriptions (pipelined over the BFS tree): D + m rounds;
    // downcast m flow values: another D + m.
    let rounds = RoundCost::new(2 * (d as u64 + m), 2 * m * (g.num_nodes() as u64), 3);
    Ok(CollectAndSolve {
        value: exact.value,
        flow: exact.flow,
        rounds,
    })
}

/// Result of the single-spanning-tree baseline.
#[derive(Debug, Clone)]
pub struct SingleTreeFlow {
    /// Value of the feasible flow obtained by scaling the tree routing.
    pub value: f64,
    /// The feasible flow.
    pub flow: FlowVec,
    /// Maximum congestion of the unscaled tree routing of a unit of demand.
    pub unit_congestion: f64,
}

/// Routes one unit of s–t demand over the maximum-weight spanning tree,
/// scales to feasibility and returns the resulting flow — the simplest
/// possible "flow over a tree" strategy (what Algorithm 1 degenerates to with
/// zero `AlmostRoute` phases).
///
/// # Errors
///
/// Returns graph errors for disconnected inputs or invalid terminals.
pub fn single_tree_flow(g: &Graph, s: NodeId, t: NodeId) -> Result<SingleTreeFlow, GraphError> {
    if s == t {
        return Err(GraphError::SelfLoop { node: s.index() });
    }
    let tree = max_weight_spanning_tree(g, NodeId(0))?;
    let unit = Demand::st(g, s, t, 1.0);
    let mut flow = tree.route_demand_on_graph(g, &unit)?;
    let congestion = flow.max_congestion(g).max(f64::MIN_POSITIVE);
    flow.scale(1.0 / congestion);
    Ok(SingleTreeFlow {
        value: 1.0 / congestion,
        flow,
        unit_congestion: congestion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::gen;

    #[test]
    fn collect_and_solve_is_exact_but_pays_m_rounds() {
        let g = gen::grid(5, 5, 1.0);
        let (s, t) = (NodeId(0), NodeId(24));
        let r = collect_and_solve(&g, s, t).unwrap();
        assert!((r.value - 2.0).abs() < 1e-9);
        assert!(r.rounds.rounds >= 2 * g.num_edges() as u64);
        r.flow.validate_st_flow(&g, s, t, 1e-6).unwrap();
    }

    #[test]
    fn single_tree_flow_is_feasible_but_suboptimal() {
        let g = gen::grid(5, 5, 1.0);
        let (s, t) = (NodeId(0), NodeId(24));
        let tree = single_tree_flow(&g, s, t).unwrap();
        tree.flow.validate_st_flow(&g, s, t, 1e-6).unwrap();
        let exact = dinic::max_flow(&g, s, t).unwrap();
        assert!(tree.value <= exact.value + 1e-9);
        // A single tree can ship at most one unit corner-to-corner on a grid.
        assert!(tree.value <= 1.0 + 1e-9);
    }

    #[test]
    fn single_tree_flow_exact_on_trees() {
        let g = gen::path(6, 2.5);
        let (s, t) = gen::default_terminals(&g);
        let tree = single_tree_flow(&g, s, t).unwrap();
        assert!((tree.value - 2.5).abs() < 1e-9);
    }

    #[test]
    fn errors_propagate() {
        let g = gen::path(4, 1.0);
        assert!(single_tree_flow(&g, NodeId(2), NodeId(2)).is_err());
        let mut disconnected = Graph::with_nodes(3);
        disconnected.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(collect_and_solve(&disconnected, NodeId(0), NodeId(2)).is_err());
    }
}
