//! Round and message accounting.
//!
//! The paper's results are statements about *round complexity* in the CONGEST
//! model. Every distributed operation in this crate returns a [`RoundCost`]
//! describing how many synchronous rounds it used and how many messages were
//! sent. Costs compose: sequential composition adds rounds, parallel
//! composition (independent operations that can share rounds) takes the
//! maximum.

use serde::{Deserialize, Serialize};

/// Cost of a distributed computation: rounds, messages and the largest
/// message payload (in machine words of `O(log n)` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoundCost {
    /// Number of synchronous rounds.
    pub rounds: u64,
    /// Total number of point-to-point messages sent (retransmissions
    /// included: a frame resent over a lossy channel is a real message).
    pub messages: u64,
    /// Largest message size observed, in `O(log n)`-bit words.
    pub max_message_words: u64,
    /// How many of [`Self::messages`] were retransmissions — repeat sends of
    /// a payload whose earlier frame was dropped or not yet acknowledged.
    /// Always `0` under the reliable models (classic CONGEST, Congested
    /// Clique, `BCAST`); under the lossy model the retransmit-with-ack
    /// wrapper flags its resends so round bills separate useful traffic from
    /// recovery traffic.
    #[serde(default)]
    pub retransmissions: u64,
}

impl RoundCost {
    /// The zero cost.
    pub const ZERO: RoundCost = RoundCost {
        rounds: 0,
        messages: 0,
        max_message_words: 0,
        retransmissions: 0,
    };

    /// Creates a cost with the given number of rounds and no messages.
    pub fn rounds(rounds: u64) -> Self {
        RoundCost {
            rounds,
            ..RoundCost::ZERO
        }
    }

    /// Creates a cost record from explicit fields (no retransmissions).
    pub fn new(rounds: u64, messages: u64, max_message_words: u64) -> Self {
        RoundCost {
            rounds,
            messages,
            max_message_words,
            retransmissions: 0,
        }
    }

    /// Sequential composition: the second computation starts after the first.
    #[must_use]
    pub fn then(self, other: RoundCost) -> RoundCost {
        RoundCost {
            rounds: self.rounds + other.rounds,
            messages: self.messages + other.messages,
            max_message_words: self.max_message_words.max(other.max_message_words),
            retransmissions: self.retransmissions + other.retransmissions,
        }
    }

    /// Parallel composition: both computations run concurrently on disjoint
    /// edges/rounds budgets, so the round count is the maximum and messages
    /// add up.
    #[must_use]
    pub fn in_parallel(self, other: RoundCost) -> RoundCost {
        RoundCost {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
            max_message_words: self.max_message_words.max(other.max_message_words),
            retransmissions: self.retransmissions + other.retransmissions,
        }
    }

    /// Repeats this cost `k` times sequentially.
    #[must_use]
    pub fn repeat(self, k: u64) -> RoundCost {
        RoundCost {
            rounds: self.rounds * k,
            messages: self.messages * k,
            max_message_words: self.max_message_words,
            retransmissions: self.retransmissions * k,
        }
    }

    /// Accumulates another cost sequentially in place.
    pub fn add_sequential(&mut self, other: RoundCost) {
        *self = self.then(other);
    }

    /// Accumulates another cost in parallel in place.
    pub fn add_parallel(&mut self, other: RoundCost) {
        *self = self.in_parallel(other);
    }
}

impl std::fmt::Display for RoundCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} messages (max {} words/message)",
            self.rounds, self.messages, self.max_message_words
        )?;
        if self.retransmissions > 0 {
            write!(f, ", {} retransmissions", self.retransmissions)?;
        }
        Ok(())
    }
}

impl std::iter::Sum for RoundCost {
    fn sum<I: Iterator<Item = RoundCost>>(iter: I) -> RoundCost {
        iter.fold(RoundCost::ZERO, RoundCost::then)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_composition() {
        let a = RoundCost::new(10, 100, 2);
        let b = RoundCost::new(5, 50, 4);
        let seq = a.then(b);
        assert_eq!(seq.rounds, 15);
        assert_eq!(seq.messages, 150);
        assert_eq!(seq.max_message_words, 4);
        let par = a.in_parallel(b);
        assert_eq!(par.rounds, 10);
        assert_eq!(par.messages, 150);
    }

    #[test]
    fn repeat_and_sum() {
        let a = RoundCost::new(3, 7, 1);
        let r = a.repeat(4);
        assert_eq!(r.rounds, 12);
        assert_eq!(r.messages, 28);
        let total: RoundCost = vec![a, a, a].into_iter().sum();
        assert_eq!(total.rounds, 9);
    }

    #[test]
    fn display_formats() {
        let a = RoundCost::new(3, 7, 1);
        assert_eq!(a.to_string(), "3 rounds, 7 messages (max 1 words/message)");
    }

    #[test]
    fn retransmissions_compose_and_display() {
        let mut a = RoundCost::new(3, 7, 1);
        a.retransmissions = 2;
        let b = RoundCost::new(1, 2, 1);
        assert_eq!(a.then(b).retransmissions, 2);
        assert_eq!(a.in_parallel(b).retransmissions, 2);
        assert_eq!(a.repeat(3).retransmissions, 6);
        assert_eq!(
            a.to_string(),
            "3 rounds, 7 messages (max 1 words/message), 2 retransmissions"
        );
        // Reliable-model costs (retransmissions == 0) keep the PR-4 format.
        assert_eq!(b.to_string(), "1 rounds, 2 messages (max 1 words/message)");
    }

    #[test]
    fn in_place_accumulation() {
        let mut c = RoundCost::ZERO;
        c.add_sequential(RoundCost::rounds(5));
        c.add_parallel(RoundCost::rounds(3));
        assert_eq!(c.rounds, 5);
        c.add_sequential(RoundCost::rounds(2));
        assert_eq!(c.rounds, 7);
    }
}
