//! Retransmit-with-ack adapter: run an unchanged CONGEST protocol over
//! lossy channels.
//!
//! [`Reliable`] wraps any [`Protocol`] in a per-link stop-and-wait ARQ:
//! every payload the inner protocol emits is framed with a sequence number,
//! resent until the peer acknowledges it, delivered to the peer's inner
//! protocol exactly once and in order, and acknowledged cumulatively
//! (piggybacked on data frames where possible). The inner protocol observes
//! a legal CONGEST execution — at most one payload per incident edge per
//! round, every payload delivered exactly once — just on a slower clock, so
//! protocols whose *results* do not depend on the round counter (all the
//! library protocols: BFS flooding, broadcasts, convergecasts, the Lemma 8.2
//! forest aggregations) run unchanged under the lossy model of
//! [`crate::model`].
//!
//! Resent frames flag themselves via [`MessageSize::is_retransmission`], so
//! the engines bill the recovery traffic to
//! [`crate::RoundCost::retransmissions`] while honest first sends stay in
//! the plain message count. On a loss-free channel the
//! [`RETRANSMIT_AFTER`]-round timer never fires: wrapping a protocol costs
//! framing words but produces zero retransmissions.
//!
//! The adapter assumes FIFO links (no reordering within one edge
//! direction), which is exactly what the lossy engine provides; drops and
//! delays are recovered, duplicates are filtered by sequence number, and
//! lost acks are healed by re-acking duplicate data. A crash-stopped peer is
//! *not* recovered — its neighbors retransmit into the void until the round
//! cap trips, which is the honest CONGEST outcome absent a failure detector.

use std::collections::VecDeque;

use crate::engine::{Inbox, LocalView, MessageSize, Outbox, Protocol, SimulationError};

/// Rounds a payload stays unacknowledged before it is resent. Three rounds
/// cover the loss-free round trip (frame out in round `r`, delivered in
/// `r + 1`, ack back in `r + 2`), so reliable links see no spurious resends.
pub const RETRANSMIT_AFTER: u64 = 3;

/// Wraps an inner [`Protocol`] in the per-link stop-and-wait ARQ described
/// in the [module docs](self). The wrapper's outputs are the inner
/// protocol's outputs.
#[derive(Debug, Clone)]
pub struct Reliable<P> {
    inner: P,
}

impl<P> Reliable<P> {
    /// Wraps `inner` (use `Reliable::new(&protocol)` to borrow — a shared
    /// reference to a protocol is itself a protocol).
    pub fn new(inner: P) -> Self {
        Reliable { inner }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

/// One link frame of the ARQ: an optional payload with its sequence number,
/// an optional cumulative acknowledgement of the reverse direction, and the
/// retransmission flag the engines bill by.
#[derive(Debug, Clone)]
pub struct Frame<M> {
    seq: u32,
    data: Option<M>,
    ack: Option<u32>,
    resend: bool,
}

impl<M: MessageSize> MessageSize for Frame<M> {
    fn words(&self) -> u64 {
        // One control word (sequence number, ack and flags all fit in
        // O(log n) bits) on top of the payload.
        1 + self.data.as_ref().map_or(0, MessageSize::words)
    }

    fn is_retransmission(&self) -> bool {
        self.resend
    }
}

/// ARQ state of one directed link (one local incident-edge slot).
#[derive(Debug)]
struct LinkState<M> {
    /// Payloads the inner protocol queued but that are not yet in flight.
    queue: VecDeque<M>,
    /// The unacknowledged in-flight payload, if any (stop-and-wait).
    inflight: Option<(u32, M)>,
    /// Engine round the in-flight frame was last put on the wire (`None`:
    /// never sent yet).
    last_sent: Option<u64>,
    /// Sequence number the next fresh payload will carry.
    seq_next: u32,
    /// Sequence number expected from the peer next (everything below was
    /// delivered to the inner protocol already).
    expected: u32,
    /// Cumulative ack owed to the peer.
    ack_due: Option<u32>,
}

impl<M> LinkState<M> {
    fn new() -> Self {
        LinkState {
            queue: VecDeque::new(),
            inflight: None,
            last_sent: None,
            seq_next: 0,
            expected: 0,
            ack_due: None,
        }
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_none() && self.ack_due.is_none()
    }
}

/// Per-node state of [`Reliable`]: the inner state plus one ARQ link state
/// per incident edge and the scratch buffers the inner protocol's inbox and
/// outbox views are assembled over.
#[derive(Debug)]
pub struct ReliableState<S, M> {
    inner: S,
    links: Vec<LinkState<M>>,
    /// Payloads accepted this round, presented to the inner inbox.
    in_scratch: Vec<Option<M>>,
    /// The inner protocol's outbox slots for the current round.
    out_scratch: Vec<Option<M>>,
    dirty_scratch: Vec<u32>,
}

impl<P: Protocol> Reliable<P> {
    /// Drains the inner protocol's freshly queued payloads into the link
    /// queues and surfaces any model violation the inner protocol committed.
    fn absorb_inner_sends(
        state: &mut ReliableState<P::State, P::Msg>,
        violation: Option<SimulationError>,
    ) {
        if let Some(err) = violation {
            panic!("protocol violated the CONGEST rules under the Reliable adapter: {err}");
        }
        for &i in &state.dirty_scratch {
            let msg = state.out_scratch[i as usize]
                .take()
                .expect("dirty slot holds a message");
            state.links[i as usize].queue.push_back(msg);
        }
        state.dirty_scratch.clear();
    }

    /// Composes at most one frame per link — promoting queued payloads,
    /// firing the retransmit timer and flushing owed acks — and hands the
    /// frames to the real outbox.
    fn emit_frames(
        state: &mut ReliableState<P::State, P::Msg>,
        outbox: &mut Outbox<'_, Frame<P::Msg>>,
        round: u64,
    ) {
        for (i, link) in state.links.iter_mut().enumerate() {
            if link.inflight.is_none() {
                if let Some(msg) = link.queue.pop_front() {
                    link.inflight = Some((link.seq_next, msg));
                    link.seq_next += 1;
                    link.last_sent = None;
                }
            }
            let mut data = None;
            let mut seq = 0;
            let mut resend = false;
            if let Some((s, msg)) = &link.inflight {
                let due = match link.last_sent {
                    None => true,
                    Some(sent) => round.saturating_sub(sent) >= RETRANSMIT_AFTER,
                };
                if due {
                    resend = link.last_sent.is_some();
                    seq = *s;
                    data = Some(msg.clone());
                    link.last_sent = Some(round);
                }
            }
            let ack = link.ack_due.take();
            if data.is_some() || ack.is_some() {
                outbox.send_at(
                    i,
                    Frame {
                        seq,
                        data,
                        ack,
                        resend,
                    },
                );
            }
        }
    }
}

impl<P: Protocol> Protocol for Reliable<P> {
    type Msg = Frame<P::Msg>;
    type State = ReliableState<P::State, P::Msg>;
    type Output = P::Output;

    fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
        let deg = view.degree();
        let links: Vec<LinkState<P::Msg>> = (0..deg).map(|_| LinkState::new()).collect();
        let in_scratch = std::iter::repeat_with(|| None).take(deg).collect();
        let mut out_scratch: Vec<Option<P::Msg>> =
            std::iter::repeat_with(|| None).take(deg).collect();
        let mut dirty_scratch = Vec::with_capacity(deg);
        let mut violation = None;
        let inner = {
            let mut inner_outbox = Outbox::from_parts(
                view.node,
                view.incident_pairs(),
                &mut out_scratch,
                0,
                &mut dirty_scratch,
                &mut violation,
            );
            self.inner.init(view, &mut inner_outbox)
        };
        let mut state = ReliableState {
            inner,
            links,
            in_scratch,
            out_scratch,
            dirty_scratch,
        };
        Self::absorb_inner_sends(&mut state, violation);
        Self::emit_frames(&mut state, outbox, 0);
        state
    }

    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        round: u64,
    ) {
        // 1. Absorb arrived frames: clear acked in-flight payloads, accept
        //    in-order data for the inner inbox, re-ack duplicates (their
        //    earlier ack was lost).
        for (edge, frame) in inbox.iter() {
            let i = view
                .slot_via(edge)
                .expect("frame arrived over an incident edge");
            let link = &mut state.links[i];
            if let Some(acked) = frame.ack {
                if link.inflight.as_ref().is_some_and(|&(seq, _)| seq <= acked) {
                    link.inflight = None;
                    link.last_sent = None;
                }
            }
            if let Some(payload) = &frame.data {
                if frame.seq == link.expected {
                    state.in_scratch[i] = Some(payload.clone());
                    link.expected += 1;
                    link.ack_due = Some(frame.seq);
                } else if frame.seq < link.expected {
                    link.ack_due = Some(link.expected - 1);
                }
                // `seq > expected` cannot happen on a FIFO link under
                // stop-and-wait; ignore defensively.
            }
        }

        // 2. One inner round over exactly the accepted payloads.
        let mut violation = None;
        {
            let inner_inbox = Inbox::from_parts(view.incident_pairs(), &state.in_scratch);
            let mut inner_outbox = Outbox::from_parts(
                view.node,
                view.incident_pairs(),
                &mut state.out_scratch,
                0,
                &mut state.dirty_scratch,
                &mut violation,
            );
            self.inner.round(
                view,
                &mut state.inner,
                &inner_inbox,
                &mut inner_outbox,
                round,
            );
        }
        for slot in state.in_scratch.iter_mut() {
            *slot = None;
        }
        Self::absorb_inner_sends(state, violation);

        // 3. Put frames on the wire.
        Self::emit_frames(state, outbox, round);
    }

    fn is_terminated(&self, state: &Self::State) -> bool {
        self.inner.is_terminated(&state.inner) && state.links.iter().all(LinkState::is_idle)
    }

    fn output(&self, view: &LocalView<'_>, state: Self::State) -> Self::Output {
        self.inner.output(view, state.inner)
    }
}
