//! Pluggable communication models: one protocol, four fabrics.
//!
//! The paper's round bounds live in the clean synchronous CONGEST model, but
//! a production routing system must survive dropped messages, crashed nodes
//! and different communication fabrics. [`CommModel`] generalizes the engine
//! of [`crate::engine`] into a pluggable runtime with four deterministic,
//! seed-reproducible instantiations:
//!
//! 1. **[`CommModel::Classic`]** — per-edge CONGEST, exactly the PR-4
//!    engine: runs delegate to [`Simulator::run`] and are byte-identical to
//!    it (flows, [`RoundCost`], canonical transcripts).
//! 2. **[`CommModel::Lossy`]** — CONGEST with an [`Adversary`]: a seeded
//!    ChaCha8 stream plus scripted schedules drops messages, delays them on
//!    FIFO links and crash-stops nodes mid-run. Every fault is recorded in a
//!    [`FaultLog`]; [`RoundCost::retransmissions`] accounts the recovery
//!    traffic of the [`crate::reliable::Reliable`] wrapper.
//! 3. **[`CommModel::Clique`]** — the Congested Clique: all-pairs reliable
//!    unicast of one `O(log n)`-bit word per *ordered node pair* per round.
//!    Edge-addressed protocols run unchanged (graph links are a subset of
//!    the clique's `n²` links), but parallel edges of the multigraph no
//!    longer widen a pair's bandwidth: queueing two messages for the same
//!    peer in one round is a [`SimulationError::CliquePairOverflow`].
//! 4. **[`CommModel::Bcast`]** — `BCAST(log n)`: in every round each node
//!    emits at most **one** broadcast word that every other node hears.
//!    Edge-addressed protocols cannot run here; implement [`BcastProtocol`]
//!    instead (see `congest::treeops::bcast_subtree_sums` for the
//!    tree-aggregation port) and execute it with [`Simulator::run_bcast`].
//!
//! # Quickstart
//!
//! ```
//! use congest::engine::{Network, Simulator};
//! use congest::model::{Adversary, CommModel};
//! use congest::primitives::BfsProtocol;
//! use flowgraph::{gen, NodeId};
//!
//! let network = Network::new(gen::grid(4, 4, 1.0));
//! let protocol = BfsProtocol::new(NodeId(0));
//!
//! // Classic CONGEST: byte-identical to `Simulator::run`.
//! let classic = Simulator::new()
//!     .run_model(&network, &CommModel::Classic, &protocol)
//!     .unwrap();
//!
//! // Lossy CONGEST at 10% drop rate: the retransmit-with-ack wrapper makes
//! // the same protocol finish anyway, with a fault log and an inflated but
//! // finite round bill.
//! let lossy = CommModel::Lossy(Adversary::lossy(7, 0.1));
//! let (run, faults) = Simulator::new()
//!     .run_model_reliable(&network, &lossy, &protocol)
//!     .unwrap();
//! assert!(run.quiescent);
//! assert_eq!(run.outputs.len(), classic.0.outputs.len());
//! assert!(faults.dropped() > 0 || run.cost.retransmissions == 0);
//! ```
//!
//! # Determinism
//!
//! Every model run is a pure function of `(network, protocol, model)`: the
//! adversary's randomness comes from its own ChaCha8 seed, consumed in the
//! deterministic send order of the round loop, so the same seed reproduces
//! the same drops, delays, fault log and round bill on every machine. The
//! differential harness in `testkit::conformance` leans on this to replay
//! one protocol across the whole model × adversary × thread matrix.

use std::collections::VecDeque;

use flowgraph::{EdgeId, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cost::RoundCost;
use crate::engine::{
    DeliveryEvent, Inbox, LocalView, MessageSize, Network, Outbox, Protocol, RunResult,
    SimulationError, Simulator, Transcript,
};
use crate::reliable::Reliable;

/// The communication fabric a protocol executes on. See the [module
/// docs](self) for the four instantiations.
#[derive(Debug, Clone, Default)]
pub enum CommModel {
    /// Per-edge synchronous CONGEST — the classic model of the paper and the
    /// byte-identical default.
    #[default]
    Classic,
    /// CONGEST over lossy/faulty channels controlled by the [`Adversary`].
    Lossy(Adversary),
    /// The Congested Clique: reliable all-pairs unicast, one `O(log n)`-bit
    /// word per ordered node pair per round.
    Clique,
    /// `BCAST(log n)`: one broadcast word per node per round, heard by all.
    Bcast,
}

impl CommModel {
    /// Short stable name used in reports and failure messages.
    pub fn name(&self) -> &'static str {
        match self {
            CommModel::Classic => "classic",
            CommModel::Lossy(_) => "lossy",
            CommModel::Clique => "clique",
            CommModel::Bcast => "bcast",
        }
    }

    /// Whether messages on this model can be lost (and protocols therefore
    /// need the [`Reliable`] retransmit-with-ack wrapper to run unchanged).
    pub fn is_lossy(&self) -> bool {
        matches!(self, CommModel::Lossy(_))
    }

    /// The admissible message width on this model, in `O(log n)`-bit words,
    /// given the `base` budget of per-edge CONGEST. The lossy model grants
    /// one extra control word for the [`Reliable`] frame header; `BCAST`
    /// allows exactly one word per broadcast.
    pub fn width_budget(&self, base: u64) -> u64 {
        match self {
            CommModel::Classic | CommModel::Clique => base,
            CommModel::Lossy(_) => base + 1,
            CommModel::Bcast => 1,
        }
    }
}

/// A deterministic, seed-reproducible message/process adversary for
/// [`CommModel::Lossy`]. Random faults are drawn from a ChaCha8 stream;
/// scripted faults (edge drops, crash-stops) fire at exact rounds.
#[derive(Debug, Clone)]
pub struct Adversary {
    /// Seed of the ChaCha8 stream behind the probabilistic faults.
    pub seed: u64,
    /// Per-message probability that the message is silently dropped.
    pub drop_probability: f64,
    /// Per-message probability that delivery is delayed (on a FIFO link: a
    /// delayed message also delays everything queued behind it).
    pub delay_probability: f64,
    /// Maximum extra rounds a delayed message waits (uniform in
    /// `1..=max_delay`).
    pub max_delay: u64,
    /// Scripted crash-stops: node `v` halts at the start of round `r` — it
    /// stops stepping, its queued messages are lost and everything addressed
    /// to it from then on is dropped.
    pub crash_schedule: Vec<(u64, NodeId)>,
    /// Scripted edge faults: every message sent over edge `e` in round `r`
    /// is dropped.
    pub drop_schedule: Vec<(u64, EdgeId)>,
}

impl Default for Adversary {
    fn default() -> Self {
        Adversary::benign(0)
    }
}

impl Adversary {
    /// An adversary that never interferes: `Lossy(Adversary::benign(seed))`
    /// runs are byte-identical to [`CommModel::Classic`] runs.
    pub fn benign(seed: u64) -> Self {
        Adversary {
            seed,
            drop_probability: 0.0,
            delay_probability: 0.0,
            max_delay: 1,
            crash_schedule: Vec::new(),
            drop_schedule: Vec::new(),
        }
    }

    /// An adversary dropping each message independently with probability
    /// `drop_probability`.
    pub fn lossy(seed: u64, drop_probability: f64) -> Self {
        Adversary {
            drop_probability: drop_probability.clamp(0.0, 1.0),
            ..Adversary::benign(seed)
        }
    }

    /// Adds probabilistic delivery delays of up to `max_delay` extra rounds.
    #[must_use]
    pub fn with_delays(mut self, delay_probability: f64, max_delay: u64) -> Self {
        self.delay_probability = delay_probability.clamp(0.0, 1.0);
        self.max_delay = max_delay.max(1);
        self
    }

    /// Scripts a crash-stop of `node` at the start of round `round`.
    #[must_use]
    pub fn with_crash(mut self, round: u64, node: NodeId) -> Self {
        self.crash_schedule.push((round, node));
        self
    }

    /// Scripts a one-round blackout of `edge` in round `round`.
    #[must_use]
    pub fn with_edge_drop(mut self, round: u64, edge: EdgeId) -> Self {
        self.drop_schedule.push((round, edge));
        self
    }

    /// Whether this adversary can never interfere with an execution.
    pub fn is_benign(&self) -> bool {
        self.drop_probability == 0.0
            && self.delay_probability == 0.0
            && self.crash_schedule.is_empty()
            && self.drop_schedule.is_empty()
    }
}

/// One fault injected by the [`Adversary`] during an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultEvent {
    /// A message was dropped (by the random stream, a scripted edge drop, or
    /// because an endpoint had crashed). `round` is the round the drop
    /// happened in — the send round for channel drops, the would-be delivery
    /// round for messages addressed to a crashed node.
    Dropped {
        /// Round of the drop.
        round: u64,
        /// The edge the message travelled on.
        edge: EdgeId,
        /// The endpoint that never received it.
        receiver: NodeId,
    },
    /// A message's delivery was postponed to round `until`.
    Delayed {
        /// The round the message was sent in.
        round: u64,
        /// The edge it travels on.
        edge: EdgeId,
        /// The receiving endpoint.
        receiver: NodeId,
        /// The earliest round it can now be delivered in.
        until: u64,
    },
    /// A node crash-stopped at the start of `round`.
    Crashed {
        /// The round the crash took effect in.
        round: u64,
        /// The halted node.
        node: NodeId,
    },
}

/// The adversary's ledger for one execution: every injected fault, in the
/// deterministic order the round loop encountered them. The differential
/// harness uses it to reconcile lossy transcripts with classic ones
/// (`sent = delivered + dropped`, exactly).
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    /// All injected faults in encounter order.
    pub events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Number of dropped messages.
    pub fn dropped(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::Dropped { .. }))
            .count() as u64
    }

    /// Number of delayed messages.
    pub fn delayed(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::Delayed { .. }))
            .count() as u64
    }

    /// Number of crash-stopped nodes.
    pub fn crashes(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::Crashed { .. }))
            .count() as u64
    }

    /// Whether the adversary never interfered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Simulator {
    /// Runs `protocol` on `network` under the given communication model.
    ///
    /// [`CommModel::Classic`] delegates to [`Simulator::run`] and is
    /// byte-identical to it; [`CommModel::Lossy`] executes the *raw*
    /// protocol against the adversary (use
    /// [`Simulator::run_model_reliable`] for protocols that need delivery
    /// guarantees — a benign adversary is byte-identical to classic either
    /// way); [`CommModel::Clique`] enforces the one-word-per-ordered-pair
    /// rule on top of the classic semantics.
    ///
    /// # Errors
    ///
    /// The classic [`SimulationError`] conditions, plus
    /// [`SimulationError::CliquePairOverflow`] under the clique and
    /// [`SimulationError::UnsupportedModel`] for edge-addressed protocols on
    /// [`CommModel::Bcast`].
    pub fn run_model<P: Protocol>(
        &self,
        network: &Network,
        model: &CommModel,
        protocol: &P,
    ) -> Result<(RunResult<P::Output>, FaultLog), SimulationError> {
        match model {
            CommModel::Classic => Ok((self.run(network, protocol)?, FaultLog::default())),
            CommModel::Lossy(adv) => {
                model_run_impl(network, protocol, self.max_rounds(), Some(adv), false, None)
            }
            CommModel::Clique => {
                model_run_impl(network, protocol, self.max_rounds(), None, true, None)
            }
            CommModel::Bcast => Err(SimulationError::UnsupportedModel {
                model: "bcast",
                reason: "edge-addressed protocols cannot run on a broadcast fabric; \
                         implement BcastProtocol and use Simulator::run_bcast",
            }),
        }
    }

    /// Like [`Simulator::run_model`], additionally recording the canonical
    /// delivery [`Transcript`] (sorted by `(round, edge, receiver)`; dropped
    /// messages appear in the [`FaultLog`], not the transcript).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Simulator::run_model`].
    pub fn run_model_traced<P: Protocol>(
        &self,
        network: &Network,
        model: &CommModel,
        protocol: &P,
    ) -> Result<(RunResult<P::Output>, Transcript, FaultLog), SimulationError> {
        match model {
            CommModel::Classic => {
                let (run, transcript) = self.run_traced(network, protocol)?;
                Ok((run, transcript, FaultLog::default()))
            }
            CommModel::Lossy(adv) => {
                let mut transcript = Vec::new();
                let (run, faults) = model_run_impl(
                    network,
                    protocol,
                    self.max_rounds(),
                    Some(adv),
                    false,
                    Some(&mut transcript),
                )?;
                transcript.sort_unstable();
                Ok((run, transcript, faults))
            }
            CommModel::Clique => {
                let mut transcript = Vec::new();
                let (run, faults) = model_run_impl(
                    network,
                    protocol,
                    self.max_rounds(),
                    None,
                    true,
                    Some(&mut transcript),
                )?;
                transcript.sort_unstable();
                Ok((run, transcript, faults))
            }
            CommModel::Bcast => Err(SimulationError::UnsupportedModel {
                model: "bcast",
                reason: "edge-addressed protocols cannot run on a broadcast fabric; \
                         implement BcastProtocol and use Simulator::run_bcast",
            }),
        }
    }

    /// Runs `protocol` under `model` with delivery guarantees: on
    /// [`CommModel::Lossy`] the protocol is wrapped in the
    /// [`Reliable`] retransmit-with-ack adapter (outputs are the inner
    /// protocol's outputs; the recovery traffic shows up in
    /// [`RoundCost::messages`] and [`RoundCost::retransmissions`]); on the
    /// reliable fabrics it runs raw, so classic runs stay byte-identical to
    /// [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Simulator::run_model`].
    pub fn run_model_reliable<P: Protocol>(
        &self,
        network: &Network,
        model: &CommModel,
        protocol: &P,
    ) -> Result<(RunResult<P::Output>, FaultLog), SimulationError> {
        match model {
            // A benign adversary can never interfere, so the ARQ framing
            // would be pure overhead: run raw — byte-identical to classic.
            CommModel::Lossy(adv) if !adv.is_benign() => model_run_impl(
                network,
                &Reliable::new(protocol),
                self.max_rounds(),
                Some(adv),
                false,
                None,
            ),
            _ => self.run_model(network, model, protocol),
        }
    }

    /// Like [`Simulator::run_model_reliable`], additionally recording the
    /// canonical frame-level [`Transcript`] (under the lossy model the
    /// recorded deliveries are the [`Reliable`] adapter's frames — data,
    /// acks and retransmissions — not the inner payloads).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Simulator::run_model`].
    pub fn run_model_reliable_traced<P: Protocol>(
        &self,
        network: &Network,
        model: &CommModel,
        protocol: &P,
    ) -> Result<(RunResult<P::Output>, Transcript, FaultLog), SimulationError> {
        match model {
            CommModel::Lossy(adv) if !adv.is_benign() => {
                let mut transcript = Vec::new();
                let (run, faults) = model_run_impl(
                    network,
                    &Reliable::new(protocol),
                    self.max_rounds(),
                    Some(adv),
                    false,
                    Some(&mut transcript),
                )?;
                transcript.sort_unstable();
                Ok((run, transcript, faults))
            }
            _ => self.run_model_traced(network, model, protocol),
        }
    }
}

/// Shared execution loop of the lossy and clique models.
///
/// The loop mirrors [`Simulator::run`]'s structure (flat send/receive arenas,
/// dirty lists, identical round counting and quiescence rule) so that a
/// benign adversary reproduces the classic execution byte for byte; on top of
/// it, messages travel through per-link FIFO in-flight queues where the
/// adversary can drop or postpone them, and crash-stopped nodes freeze.
/// Unlike the classic engine this loop is not allocation-free (the in-flight
/// queues grow on demand); the zero-allocation guarantee applies to
/// [`CommModel::Classic`] only.
#[allow(clippy::too_many_lines)]
fn model_run_impl<P: Protocol>(
    network: &Network,
    protocol: &P,
    max_rounds: u64,
    adversary: Option<&Adversary>,
    clique: bool,
    mut trace: Option<&mut Vec<DeliveryEvent>>,
) -> Result<(RunResult<P::Output>, FaultLog), SimulationError> {
    let n = network.num_nodes();
    let slots = network.num_slots();
    let csr = network.graph().csr();

    let mut rng = adversary.map(|a| ChaCha8Rng::seed_from_u64(a.seed));
    let drop_p = adversary.map_or(0.0, |a| a.drop_probability);
    let delay_p = adversary.map_or(0.0, |a| a.delay_probability);
    let max_delay = adversary.map_or(1, |a| a.max_delay.max(1));

    // Owner node of every slot, for crash bookkeeping.
    let mut slot_owner = vec![0u32; slots];
    for v in network.graph().nodes() {
        for s in csr.slot_range(v) {
            slot_owner[s] = v.0;
        }
    }

    let mut send: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(slots).collect();
    let mut recv: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(slots).collect();
    let mut send_dirty: Vec<u32> = Vec::with_capacity(slots);
    let mut recv_dirty: Vec<u32> = Vec::with_capacity(slots);
    let mut states: Vec<P::State> = Vec::with_capacity(n);
    let mut violation: Option<SimulationError> = None;
    let mut cost = RoundCost::ZERO;
    let mut faults = FaultLog::default();
    let mut crashed = vec![false; n];
    // Per-receive-slot FIFO link queues of `(due round, message)`.
    let mut inflight: Vec<VecDeque<(u64, P::Msg)>> =
        std::iter::repeat_with(VecDeque::new).take(slots).collect();
    let mut inflight_count: usize = 0;
    let mut peers_scratch: Vec<u32> = Vec::new();

    for v in network.graph().nodes() {
        let view = network.view(v);
        let range = csr.slot_range(v);
        let dirty_before = send_dirty.len();
        let mut outbox = Outbox::from_parts(
            v,
            view.incident_pairs(),
            &mut send[range.clone()],
            range.start as u32,
            &mut send_dirty,
            &mut violation,
        );
        let state = protocol.init(&view, &mut outbox);
        if let Some(err) = violation.take() {
            return Err(err);
        }
        if clique {
            check_clique_pairs(v, &send_dirty[dirty_before..], csr, &mut peers_scratch)?;
        }
        states.push(state);
    }

    let mut round: u64 = 0;
    loop {
        if send_dirty.is_empty()
            && inflight_count == 0
            && states
                .iter()
                .zip(&crashed)
                .all(|(s, &c)| c || protocol.is_terminated(s))
        {
            break;
        }
        if round >= max_rounds {
            return Err(SimulationError::RoundLimitExceeded { max_rounds });
        }
        round += 1;

        // Scripted crash-stops take effect at the start of the round: the
        // node's queued messages are lost with it.
        if let Some(adv) = adversary {
            for &(r, v) in &adv.crash_schedule {
                if r == round && v.index() < n && !crashed[v.index()] {
                    crashed[v.index()] = true;
                    faults.events.push(FaultEvent::Crashed { round, node: v });
                }
            }
        }

        // Send phase: drain the dirty send slots into the per-link FIFO
        // queues; the adversary rules on each message at send time, in
        // deterministic slot order.
        for &s in &send_dirty {
            let s = s as usize;
            let msg = send[s].take().expect("dirty slot holds a message");
            let (edge, receiver) = csr.slot(s);
            cost.messages += 1;
            cost.retransmissions += u64::from(msg.is_retransmission());
            cost.max_message_words = cost.max_message_words.max(msg.words());
            if crashed[slot_owner[s] as usize] {
                // The sender crashed between queueing and the wire: billed as
                // sent (the node did emit it last round) and logged as
                // dropped, so the `sent = delivered + dropped` reconciliation
                // holds under crash adversaries too.
                faults.events.push(FaultEvent::Dropped {
                    round,
                    edge,
                    receiver,
                });
                continue;
            }
            let mut dropped = adversary.is_some_and(|a| {
                a.drop_schedule
                    .iter()
                    .any(|&(r, e)| r == round && e == edge)
            });
            let mut due = round;
            if let Some(rng) = rng.as_mut() {
                if !dropped && drop_p > 0.0 {
                    dropped = rng.gen_bool(drop_p);
                }
                if !dropped && delay_p > 0.0 && rng.gen_bool(delay_p) {
                    due = round + rng.gen_range(1..=max_delay);
                    faults.events.push(FaultEvent::Delayed {
                        round,
                        edge,
                        receiver,
                        until: due,
                    });
                }
            }
            if dropped {
                faults.events.push(FaultEvent::Dropped {
                    round,
                    edge,
                    receiver,
                });
                continue;
            }
            inflight[network.flip_slot(s)].push_back((due, msg));
            inflight_count += 1;
        }
        send_dirty.clear();

        // Delivery phase: the head of every link queue whose due round has
        // arrived moves into the receive arena — at most one message per
        // link per round, like the wire itself.
        recv_dirty.clear();
        for d in 0..slots {
            let Some(&(due, _)) = inflight[d].front() else {
                continue;
            };
            if due > round {
                continue;
            }
            let (_, msg) = inflight[d].pop_front().expect("front was just observed");
            inflight_count -= 1;
            let edge = csr.slot(d).0;
            let receiver = NodeId(slot_owner[d]);
            if crashed[receiver.index()] {
                faults.events.push(FaultEvent::Dropped {
                    round,
                    edge,
                    receiver,
                });
                continue;
            }
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(DeliveryEvent {
                    round,
                    edge,
                    receiver,
                });
            }
            recv[d] = Some(msg);
            recv_dirty.push(d as u32);
        }

        // Step phase: live nodes only; crashed nodes keep their final state.
        for v in network.graph().nodes() {
            if crashed[v.index()] {
                continue;
            }
            let view = network.view(v);
            let range = csr.slot_range(v);
            let dirty_before = send_dirty.len();
            let inbox = Inbox::from_parts(view.incident_pairs(), &recv[range.clone()]);
            let mut outbox = Outbox::from_parts(
                v,
                view.incident_pairs(),
                &mut send[range.clone()],
                range.start as u32,
                &mut send_dirty,
                &mut violation,
            );
            protocol.round(&view, &mut states[v.index()], &inbox, &mut outbox, round);
            if let Some(err) = violation.take() {
                return Err(err);
            }
            if clique {
                check_clique_pairs(v, &send_dirty[dirty_before..], csr, &mut peers_scratch)?;
            }
        }

        for &d in &recv_dirty {
            recv[d as usize] = None;
        }
    }
    cost.rounds = round;

    let outputs = network
        .graph()
        .nodes()
        .zip(states)
        .map(|(v, s)| protocol.output(&network.view(v), s))
        .collect();
    Ok((
        RunResult {
            outputs,
            cost,
            quiescent: true,
        },
        faults,
    ))
}

/// Enforces the clique's one-message-per-ordered-pair rule over the slots a
/// node dirtied this round.
fn check_clique_pairs(
    node: NodeId,
    new_dirty: &[u32],
    csr: &flowgraph::Csr,
    peers: &mut Vec<u32>,
) -> Result<(), SimulationError> {
    if new_dirty.len() < 2 {
        return Ok(());
    }
    peers.clear();
    peers.extend(new_dirty.iter().map(|&s| csr.slot(s as usize).1 .0));
    peers.sort_unstable();
    for w in peers.windows(2) {
        if w[0] == w[1] {
            return Err(SimulationError::CliquePairOverflow {
                node,
                peer: NodeId(w[0]),
            });
        }
    }
    Ok(())
}

/// Read handle on the broadcast words heard this round under
/// [`CommModel::Bcast`]: one optional word per node, indexed by sender id.
#[derive(Debug)]
pub struct BcastInbox<'a, W> {
    words: &'a [Option<W>],
}

impl<'a, W> BcastInbox<'a, W> {
    /// The word node `v` broadcast last round, if any.
    pub fn from(&self, v: NodeId) -> Option<&'a W> {
        self.words[v.index()].as_ref()
    }

    /// Iterates over `(sender, word)` pairs in sender-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &'a W)> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter_map(|(v, w)| w.as_ref().map(|w| (NodeId(v as u32), w)))
    }

    /// Number of words heard this round.
    pub fn len(&self) -> usize {
        self.words.iter().filter(|w| w.is_some()).count()
    }

    /// Whether no node broadcast last round.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(Option::is_none)
    }
}

/// A distributed algorithm in the `BCAST(log n)` model: in every round each
/// node may emit **one** broadcast word of `O(log n)` bits, and hears the
/// words all other nodes emitted in the previous round.
pub trait BcastProtocol {
    /// The broadcast word (one `O(log n)`-bit word; the width checkers in
    /// `testkit::congestcheck` reject wider words).
    type Word: Clone + MessageSize;
    /// Per-node state.
    type State;
    /// Per-node output at termination.
    type Output;

    /// Initializes a node, optionally emitting its round-1 broadcast.
    fn init(&self, view: &LocalView<'_>) -> (Self::State, Option<Self::Word>);

    /// Executes one round: `heard` holds the words broadcast last round; the
    /// return value is this node's broadcast for the next round.
    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        heard: &BcastInbox<'_, Self::Word>,
        round: u64,
    ) -> Option<Self::Word>;

    /// Whether this node has locally terminated.
    fn is_terminated(&self, state: &Self::State) -> bool;

    /// Extracts the node's output once the execution has ended.
    fn output(&self, view: &LocalView<'_>, state: Self::State) -> Self::Output;
}

impl Simulator {
    /// Executes a [`BcastProtocol`] under the `BCAST(log n)` model: per
    /// round, every node's single broadcast word (if any) is heard by all
    /// other nodes in the next round. One broadcast counts as one message in
    /// the returned [`RoundCost`]; the word width is recorded in
    /// `max_message_words` (the model admits exactly one word — checked by
    /// `testkit::congestcheck`, not enforced here, mirroring how the CONGEST
    /// engine treats widths).
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::RoundLimitExceeded`] if the protocol does
    /// not reach quiescence within the round cap.
    pub fn run_bcast<B: BcastProtocol>(
        &self,
        network: &Network,
        protocol: &B,
    ) -> Result<RunResult<B::Output>, SimulationError> {
        let n = network.num_nodes();
        let mut states: Vec<B::State> = Vec::with_capacity(n);
        let mut cur: Vec<Option<B::Word>> = Vec::with_capacity(n);
        let mut cost = RoundCost::ZERO;
        for v in network.graph().nodes() {
            let (state, word) = protocol.init(&network.view(v));
            if let Some(w) = &word {
                cost.messages += 1;
                cost.max_message_words = cost.max_message_words.max(w.words());
            }
            states.push(state);
            cur.push(word);
        }

        let mut next: Vec<Option<B::Word>> = Vec::with_capacity(n);
        let mut round: u64 = 0;
        loop {
            if cur.iter().all(Option::is_none) && states.iter().all(|s| protocol.is_terminated(s)) {
                break;
            }
            if round >= self.max_rounds() {
                return Err(SimulationError::RoundLimitExceeded {
                    max_rounds: self.max_rounds(),
                });
            }
            round += 1;

            next.clear();
            {
                let heard = BcastInbox { words: &cur };
                for v in network.graph().nodes() {
                    let word =
                        protocol.round(&network.view(v), &mut states[v.index()], &heard, round);
                    if let Some(w) = &word {
                        cost.messages += 1;
                        cost.max_message_words = cost.max_message_words.max(w.words());
                    }
                    next.push(word);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cost.rounds = round;

        let outputs = network
            .graph()
            .nodes()
            .zip(states)
            .map(|(v, s)| protocol.output(&network.view(v), s))
            .collect();
        Ok(RunResult {
            outputs,
            cost,
            quiescent: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{BfsProtocol, MinIdFlood};
    use flowgraph::gen;

    #[test]
    fn benign_lossy_run_is_byte_identical_to_classic() {
        for g in [gen::path(17, 1.0), gen::grid(5, 6, 1.0), gen::star(12, 2.0)] {
            let network = Network::new(g);
            let (classic, classic_t) = Simulator::new().run_traced(&network, &MinIdFlood).unwrap();
            for seed in [0u64, 7, 0xdead] {
                let lossy = CommModel::Lossy(Adversary::benign(seed));
                let (run, transcript, faults) = Simulator::new()
                    .run_model_traced(&network, &lossy, &MinIdFlood)
                    .unwrap();
                assert!(faults.is_empty());
                assert_eq!(run.outputs, classic.outputs, "seed {seed}");
                assert_eq!(run.cost, classic.cost, "seed {seed}");
                assert_eq!(run.cost.retransmissions, 0);
                assert_eq!(
                    format!("{transcript:?}").into_bytes(),
                    format!("{classic_t:?}").into_bytes(),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn classic_and_clique_models_match_the_engine_on_simple_graphs() {
        let network = Network::new(gen::grid(4, 4, 1.0));
        let (classic, classic_t) = Simulator::new().run_traced(&network, &MinIdFlood).unwrap();
        for model in [CommModel::Classic, CommModel::Clique] {
            let (run, transcript, faults) = Simulator::new()
                .run_model_traced(&network, &model, &MinIdFlood)
                .unwrap();
            assert!(faults.is_empty(), "{}", model.name());
            assert_eq!(run.outputs, classic.outputs, "{}", model.name());
            assert_eq!(run.cost, classic.cost, "{}", model.name());
            assert_eq!(transcript, classic_t, "{}", model.name());
        }
    }

    #[test]
    fn clique_rejects_parallel_edge_pair_overflow() {
        // Two parallel edges between nodes 0 and 1: legal in per-edge
        // CONGEST (one message per edge), illegal in the clique (one word
        // per ordered pair).
        let mut g = flowgraph::Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        let network = Network::new(g);
        assert!(Simulator::new().run(&network, &MinIdFlood).is_ok());
        let err = Simulator::new()
            .run_model(&network, &CommModel::Clique, &MinIdFlood)
            .unwrap_err();
        assert!(
            matches!(err, SimulationError::CliquePairOverflow { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("ordered pair"));
    }

    #[test]
    fn reliable_wrapper_survives_heavy_drops() {
        let network = Network::new(gen::grid(5, 5, 1.0));
        let classic = Simulator::new().run(&network, &MinIdFlood).unwrap();
        for drop_p in [0.1, 0.2] {
            for seed in [1u64, 2, 3] {
                let lossy = CommModel::Lossy(Adversary::lossy(seed, drop_p));
                let (run, transcript, faults) = Simulator::new()
                    .run_model_reliable_traced(&network, &lossy, &MinIdFlood)
                    .unwrap();
                assert!(run.quiescent);
                assert_eq!(run.outputs, classic.outputs, "p={drop_p} seed={seed}");
                // Accounting closes exactly: every sent frame was either
                // delivered or logged as dropped.
                assert_eq!(
                    run.cost.messages,
                    transcript.len() as u64 + faults.dropped(),
                    "p={drop_p} seed={seed}"
                );
                assert!(
                    faults.dropped() > 0 && run.cost.retransmissions > 0,
                    "p={drop_p} seed={seed}: adversary never fired"
                );
                // Recovery inflates the bill but stays finite.
                assert!(run.cost.rounds > classic.cost.rounds);
            }
        }
    }

    #[test]
    fn reliable_wrapper_recovers_from_delays_and_scripted_drops() {
        let network = Network::new(gen::path(9, 1.0));
        let classic = Simulator::new().run(&network, &MinIdFlood).unwrap();
        let adv = Adversary::lossy(11, 0.05)
            .with_delays(0.3, 3)
            .with_edge_drop(1, flowgraph::EdgeId(0))
            .with_edge_drop(2, flowgraph::EdgeId(4));
        let lossy = CommModel::Lossy(adv);
        let (run, faults) = Simulator::new()
            .run_model_reliable(&network, &lossy, &MinIdFlood)
            .unwrap();
        assert_eq!(run.outputs, classic.outputs);
        assert!(faults.delayed() > 0);
        assert!(faults.dropped() >= 2, "scripted drops must be logged");
    }

    #[test]
    fn lossy_runs_are_seed_reproducible() {
        let network = Network::new(gen::grid(4, 4, 1.0));
        let lossy = CommModel::Lossy(Adversary::lossy(42, 0.15));
        let (a, at, af) = Simulator::new()
            .run_model_reliable_traced(&network, &lossy, &MinIdFlood)
            .unwrap();
        let (b, bt, bf) = Simulator::new()
            .run_model_reliable_traced(&network, &lossy, &MinIdFlood)
            .unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.cost, b.cost);
        assert_eq!(at, bt);
        assert_eq!(af.events, bf.events);
    }

    #[test]
    fn crash_stop_freezes_a_node_and_is_logged() {
        // A 4x4 grid stays connected without node 5, so the flood still
        // converges everywhere else; the crashed node keeps whatever it knew.
        let network = Network::new(gen::grid(4, 4, 1.0));
        let crash_round = 1;
        let lossy = CommModel::Lossy(Adversary::benign(0).with_crash(crash_round, NodeId(5)));
        let (run, transcript, faults) = Simulator::new()
            .run_model_traced(&network, &lossy, &MinIdFlood)
            .unwrap();
        assert_eq!(faults.crashes(), 1);
        // The books close under crashes too: every billed message was either
        // delivered or logged as dropped (the crashed node's queued sends
        // and everything later addressed to it).
        assert_eq!(
            run.cost.messages,
            transcript.len() as u64 + faults.dropped()
        );
        assert!(faults.dropped() > 0, "node 5's queued sends die with it");
        assert!(faults.events.iter().any(|e| matches!(
            e,
            FaultEvent::Crashed {
                node: NodeId(5),
                ..
            }
        )));
        // Node 5 crashed before hearing anything beyond its own id announce.
        assert_eq!(run.outputs[5], 5);
        // Everyone else still learns 0 (node 0 is alive and the grid minus
        // node 5 is connected).
        for (v, &out) in run.outputs.iter().enumerate() {
            if v != 5 {
                assert_eq!(out, 0, "node {v}");
            }
        }
    }

    #[test]
    fn bfs_under_lossy_model_still_spans_the_graph() {
        let g = gen::grid(5, 5, 1.0);
        let dist = g.bfs_distances(NodeId(0));
        let network = Network::new(g);
        let lossy = CommModel::Lossy(Adversary::lossy(3, 0.2));
        let (run, _) = Simulator::new()
            .run_model_reliable(&network, &lossy, &BfsProtocol::new(NodeId(0)))
            .unwrap();
        // Drops may reshape the tree (a node can join via a longer path
        // first), but every node must join via an incident edge, and depths
        // can only exceed the true BFS distances.
        for (v, out) in run.outputs.iter().enumerate() {
            if v == 0 {
                assert!(out.is_none());
            } else {
                let (e, parent) = out.expect("every node joins eventually");
                let edge = network.graph().edge(e);
                assert!(edge.is_incident(NodeId(v as u32)));
                assert!(edge.is_incident(parent));
                let _ = dist;
            }
        }
    }

    #[test]
    fn bcast_model_rejects_edge_protocols() {
        let network = Network::new(gen::path(4, 1.0));
        let err = Simulator::new()
            .run_model(&network, &CommModel::Bcast, &MinIdFlood)
            .unwrap_err();
        assert!(matches!(err, SimulationError::UnsupportedModel { .. }));
    }

    /// BCAST leader election: every node broadcasts its id once; after one
    /// exchange everyone knows the minimum.
    struct BcastMinId;

    #[derive(Clone, Debug)]
    struct IdWord(u32);

    impl MessageSize for IdWord {}

    struct BcastMinState {
        best: u32,
        heard_all: bool,
    }

    impl BcastProtocol for BcastMinId {
        type Word = IdWord;
        type State = BcastMinState;
        type Output = u32;

        fn init(&self, view: &LocalView<'_>) -> (Self::State, Option<Self::Word>) {
            (
                BcastMinState {
                    best: view.node.0,
                    heard_all: false,
                },
                Some(IdWord(view.node.0)),
            )
        }

        fn round(
            &self,
            _view: &LocalView<'_>,
            state: &mut Self::State,
            heard: &BcastInbox<'_, Self::Word>,
            _round: u64,
        ) -> Option<Self::Word> {
            for (_, IdWord(id)) in heard.iter() {
                state.best = state.best.min(*id);
            }
            state.heard_all = true;
            None
        }

        fn is_terminated(&self, state: &Self::State) -> bool {
            state.heard_all
        }

        fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
            state.best
        }
    }

    #[test]
    fn bcast_leader_election_takes_one_round_regardless_of_diameter() {
        // On a path of 30 nodes, flooding needs 29 rounds; BCAST(log n)
        // needs one. That is the regime difference the model exists for.
        let network = Network::new(gen::path(30, 1.0));
        let run = Simulator::new().run_bcast(&network, &BcastMinId).unwrap();
        assert!(run.outputs.iter().all(|&b| b == 0));
        assert_eq!(run.cost.rounds, 1);
        assert_eq!(run.cost.messages, 30, "one broadcast per node");
        assert_eq!(run.cost.max_message_words, 1);
    }

    #[test]
    fn width_budgets_follow_the_model() {
        assert_eq!(CommModel::Classic.width_budget(4), 4);
        assert_eq!(CommModel::Clique.width_budget(4), 4);
        assert_eq!(CommModel::Lossy(Adversary::benign(0)).width_budget(4), 5);
        assert_eq!(CommModel::Bcast.width_budget(4), 1);
    }
}
