//! Distributed tree operations in `Õ(√n + D)` rounds.
//!
//! Routing on trees and evaluating tree-cut congestion both reduce to two
//! aggregations over a rooted spanning tree `T` of the network:
//!
//! * **subtree sums** — every node learns `Σ_{w ∈ subtree(v)} x_w`
//!   (the convergecast / "y-values" of §9.1), and
//! * **root-to-node prefix sums** — every node learns
//!   `Σ_{w on root→v path} x_w` (the downcast / node potentials π of §9.1).
//!
//! A naive convergecast costs `Θ(depth(T))` rounds, which can be `Θ(n)`.
//! The paper (Lemma 8.2, Lemma 9.1) instead cuts each tree edge independently
//! with probability `~1/√n`, which splits `T` into `Õ(√n)` components of
//! depth `Õ(√n)` w.h.p.; within components the aggregation is a real
//! convergecast, and the `Õ(√n)` per-component summaries are made global by
//! pipelining them over a BFS tree in `O(D + √n)` rounds.
//!
//! The within-component phases below are executed as genuine message-passing
//! protocols on the [`Simulator`]; the global
//! summary exchange is charged `2·(depth(BFS) + #components)` rounds via
//! [`pipelined_broadcast_cost`], i.e. with parameters measured on the actual
//! instance.

use flowgraph::{NodeId, RootedTree};
use rand::Rng;

use crate::cost::RoundCost;
use crate::engine::{Inbox, LocalView, MessageSize, Network, Outbox, Protocol, Simulator};
use crate::model::{BcastInbox, BcastProtocol, CommModel};
use crate::primitives::pipelined_broadcast_cost;

/// A decomposition of a rooted tree into low-depth components obtained by
/// cutting each non-root parent edge independently (Lemma 8.2 / Lemma 9.1).
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    /// Component label of every node (dense in `0..num_components`).
    pub component: Vec<usize>,
    /// Number of components.
    pub num_components: usize,
    /// The root node of every component (its parent edge was cut, or it is
    /// the tree root).
    pub component_roots: Vec<NodeId>,
    /// Maximum depth of a node below its component root.
    pub max_component_depth: usize,
}

impl TreeDecomposition {
    /// Cuts each non-root parent edge of `tree` independently with
    /// probability `cut_probability` and returns the resulting decomposition.
    ///
    /// With `cut_probability ≈ 1/√n` this yields `Õ(√n)` components of depth
    /// `Õ(√n)` w.h.p., which is the regime the paper uses.
    pub fn sample(tree: &RootedTree, cut_probability: f64, rng: &mut impl Rng) -> Self {
        let n = tree.num_nodes();
        let mut cut = vec![false; n];
        for v in 0..n {
            let v = NodeId(v as u32);
            if tree.parent(v).is_some() && rng.gen_bool(cut_probability.clamp(0.0, 1.0)) {
                cut[v.index()] = true;
            }
        }
        Self::from_cut_edges(tree, &cut)
    }

    /// Decomposition with no cut edges: a single component (the whole tree).
    pub fn trivial(tree: &RootedTree) -> Self {
        Self::from_cut_edges(tree, &vec![false; tree.num_nodes()])
    }

    /// Builds the decomposition from an explicit per-node "parent edge is
    /// cut" indicator.
    pub fn from_cut_edges(tree: &RootedTree, cut: &[bool]) -> Self {
        let n = tree.num_nodes();
        assert_eq!(cut.len(), n, "cut indicator length mismatch");
        let mut component = vec![usize::MAX; n];
        let mut component_roots = Vec::new();
        let mut depth_in_component = vec![0usize; n];
        let mut max_depth = 0usize;
        // Process in preorder so parents are labelled before children.
        for &v in tree.preorder() {
            let is_new_root = tree.parent(v).is_none() || cut[v.index()];
            if is_new_root {
                component[v.index()] = component_roots.len();
                component_roots.push(v);
                depth_in_component[v.index()] = 0;
            } else {
                let p = tree.parent(v).expect("non-root has parent");
                component[v.index()] = component[p.index()];
                depth_in_component[v.index()] = depth_in_component[p.index()] + 1;
                max_depth = max_depth.max(depth_in_component[v.index()]);
            }
        }
        TreeDecomposition {
            component,
            num_components: component_roots.len(),
            component_roots,
            max_component_depth: max_depth,
        }
    }

    /// The recommended cut probability `1/√n` for an `n`-node tree.
    pub fn recommended_probability(n: usize) -> f64 {
        if n <= 1 {
            0.0
        } else {
            1.0 / (n as f64).sqrt()
        }
    }
}

/// A spanning tree bundled with a sampled decomposition: a cached,
/// re-runnable handle for the two aggregation protocols the gradient descent
/// needs on every virtual tree (§9.1).
///
/// Sampling the Lemma 8.2 decomposition is a preprocessing step — the paper
/// performs it once per tree, not once per aggregation — so build-once /
/// query-many callers (the `PreparedMaxFlow` session) construct this handle
/// during `prepare` and re-run [`Self::subtree_sums`] /
/// [`Self::prefix_sums`] per query without re-sampling.
#[derive(Debug, Clone)]
pub struct DecomposedTree {
    tree: RootedTree,
    decomposition: TreeDecomposition,
}

impl DecomposedTree {
    /// Samples a decomposition for `tree` with the given cut probability
    /// (pass [`TreeDecomposition::recommended_probability`] for the paper's
    /// `1/√n` regime) and caches it alongside the tree.
    pub fn sample(tree: RootedTree, cut_probability: f64, rng: &mut impl Rng) -> Self {
        let decomposition = TreeDecomposition::sample(&tree, cut_probability, rng);
        DecomposedTree {
            tree,
            decomposition,
        }
    }

    /// Wraps an explicit decomposition (used by tests and ablations).
    pub fn from_decomposition(tree: RootedTree, decomposition: TreeDecomposition) -> Self {
        DecomposedTree {
            tree,
            decomposition,
        }
    }

    /// The underlying spanning tree.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// The cached Lemma 8.2 decomposition.
    pub fn decomposition(&self) -> &TreeDecomposition {
        &self.decomposition
    }

    /// Re-runs the distributed subtree-sum protocol (the "y-values"
    /// convergecast of §9.1) with the cached decomposition.
    ///
    /// # Panics
    ///
    /// Same conditions as [`distributed_subtree_sums`].
    pub fn subtree_sums(
        &self,
        network: &Network,
        bfs_tree: &RootedTree,
        values: &[f64],
    ) -> TreeAggregationResult {
        distributed_subtree_sums(network, &self.tree, &self.decomposition, bfs_tree, values)
    }

    /// Re-runs the distributed prefix-sum protocol (the potential downcast of
    /// §9.1) with the cached decomposition.
    ///
    /// # Panics
    ///
    /// Same conditions as [`distributed_prefix_sums`].
    pub fn prefix_sums(
        &self,
        network: &Network,
        bfs_tree: &RootedTree,
        values: &[f64],
    ) -> TreeAggregationResult {
        distributed_prefix_sums(network, &self.tree, &self.decomposition, bfs_tree, values)
    }

    /// [`Self::subtree_sums`] executed under an arbitrary communication
    /// model (classic is byte-identical to [`Self::subtree_sums`]; the lossy
    /// model runs the unchanged protocol through the retransmit-with-ack
    /// adapter).
    ///
    /// # Panics
    ///
    /// Same conditions as [`distributed_subtree_sums_on`].
    pub fn subtree_sums_on(
        &self,
        model: &CommModel,
        network: &Network,
        bfs_tree: &RootedTree,
        values: &[f64],
    ) -> TreeAggregationResult {
        distributed_subtree_sums_on(
            model,
            network,
            &self.tree,
            &self.decomposition,
            bfs_tree,
            values,
        )
    }

    /// [`Self::prefix_sums`] executed under an arbitrary communication
    /// model.
    ///
    /// # Panics
    ///
    /// Same conditions as [`distributed_prefix_sums_on`].
    pub fn prefix_sums_on(
        &self,
        model: &CommModel,
        network: &Network,
        bfs_tree: &RootedTree,
        values: &[f64],
    ) -> TreeAggregationResult {
        distributed_prefix_sums_on(
            model,
            network,
            &self.tree,
            &self.decomposition,
            bfs_tree,
            values,
        )
    }
}

/// Result of a distributed tree aggregation.
#[derive(Debug, Clone)]
pub struct TreeAggregationResult {
    /// Per-node aggregate (subtree sum or prefix sum, depending on the call).
    pub values: Vec<f64>,
    /// Rounds and messages used, including the global summary exchange.
    pub cost: RoundCost,
}

/// Computes all subtree sums of `values` over `tree` distributively using the
/// component decomposition, in
/// `O(max component depth) + O(D + #components)` rounds.
///
/// The result equals [`RootedTree::subtree_sums`]; the centralized routine is
/// used as the correctness oracle in tests.
///
/// # Panics
///
/// Panics if the vector lengths do not match the network size or the tree is
/// not a spanning subtree of the network graph.
pub fn distributed_subtree_sums(
    network: &Network,
    tree: &RootedTree,
    decomposition: &TreeDecomposition,
    bfs_tree: &RootedTree,
    values: &[f64],
) -> TreeAggregationResult {
    distributed_subtree_sums_on(
        &CommModel::Classic,
        network,
        tree,
        decomposition,
        bfs_tree,
        values,
    )
}

/// [`distributed_subtree_sums`] executed under an arbitrary communication
/// model: the two within-component protocol phases run on the model's fabric
/// (through the retransmit-with-ack adapter on the lossy model, so the
/// computed values are identical — only the round bill inflates), the
/// pipelined global exchange is charged analytically as before.
///
/// # Panics
///
/// Same conditions as [`distributed_subtree_sums`], plus a panic if the
/// model cannot carry edge-addressed protocols ([`CommModel::Bcast`] — use
/// [`bcast_subtree_sums`] there) or the protocol exceeds the model's round
/// cap under the adversary.
pub fn distributed_subtree_sums_on(
    model: &CommModel,
    network: &Network,
    tree: &RootedTree,
    decomposition: &TreeDecomposition,
    bfs_tree: &RootedTree,
    values: &[f64],
) -> TreeAggregationResult {
    assert_eq!(
        values.len(),
        network.num_nodes(),
        "value vector length mismatch"
    );

    // Phase 1 (real protocol): within-component subtree sums.
    let phase1 = forest_subtree_sums(model, network, tree, decomposition, values);

    // Phase 2 (pipelined BFS exchange, cost measured on the actual trees):
    // every node learns, for every component c, its total S_c and its parent
    // attachment, and locally computes the contracted-tree subtree totals.
    let k = decomposition.num_components as u64;
    let phase2_cost = pipelined_broadcast_cost(bfs_tree, k);
    let component_totals: Vec<f64> = decomposition
        .component_roots
        .iter()
        .map(|&r| phase1.values[r.index()])
        .collect();
    // Contracted tree: parent component of c = component of parent(root(c)).
    let comp_parent: Vec<Option<usize>> = decomposition
        .component_roots
        .iter()
        .map(|&r| tree.parent(r).map(|p| decomposition.component[p.index()]))
        .collect();
    // Subtree totals on the contracted tree (local computation at every node).
    let mut comp_subtree_total = component_totals.clone();
    // Process components bottom-up: order components by the depth of their root.
    let mut order: Vec<usize> = (0..decomposition.num_components).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(tree.depth(decomposition.component_roots[c])));
    for &c in &order {
        if let Some(p) = comp_parent[c] {
            let add = comp_subtree_total[c];
            comp_subtree_total[p] += add;
        }
    }

    // Phase 3 (real protocol): re-run the within-component aggregation with
    // the hanging-component totals added at the attachment nodes.
    let mut augmented = values.to_vec();
    for (&root, &total) in decomposition
        .component_roots
        .iter()
        .zip(&comp_subtree_total)
    {
        if let Some(p) = tree.parent(root) {
            augmented[p.index()] += total;
        }
    }
    let phase3 = forest_subtree_sums(model, network, tree, decomposition, &augmented);

    let cost = phase1.cost.then(phase2_cost).then(phase3.cost);
    TreeAggregationResult {
        values: phase3.values,
        cost,
    }
}

/// Computes, for every node, the sum of `values` along the tree path from the
/// root down to that node (inclusive), distributively via the component
/// decomposition, in `O(max component depth) + O(D + #components)` rounds.
///
/// The result equals [`RootedTree::prefix_sums_from_root`].
///
/// # Panics
///
/// Panics if the vector lengths do not match the network size or the tree is
/// not a spanning subtree of the network graph.
pub fn distributed_prefix_sums(
    network: &Network,
    tree: &RootedTree,
    decomposition: &TreeDecomposition,
    bfs_tree: &RootedTree,
    values: &[f64],
) -> TreeAggregationResult {
    distributed_prefix_sums_on(
        &CommModel::Classic,
        network,
        tree,
        decomposition,
        bfs_tree,
        values,
    )
}

/// [`distributed_prefix_sums`] executed under an arbitrary communication
/// model (see [`distributed_subtree_sums_on`] for the execution scheme).
///
/// # Panics
///
/// Same conditions as [`distributed_subtree_sums_on`].
pub fn distributed_prefix_sums_on(
    model: &CommModel,
    network: &Network,
    tree: &RootedTree,
    decomposition: &TreeDecomposition,
    bfs_tree: &RootedTree,
    values: &[f64],
) -> TreeAggregationResult {
    assert_eq!(
        values.len(),
        network.num_nodes(),
        "value vector length mismatch"
    );

    // Phase 1 (real protocol): prefix sums within each component (root of the
    // component acts as a local root with offset 0).
    let phase1 = forest_prefix_sums(model, network, tree, decomposition, values);

    // Phase 2: every node learns each component's "entry offset", i.e. the
    // prefix sum at the attachment node of the component root. Offsets are
    // computed on the contracted tree, which is made global by pipelining
    // O(#components) summaries over the BFS tree.
    let k = decomposition.num_components as u64;
    let phase2_cost = pipelined_broadcast_cost(bfs_tree, k);

    // The offset of component c = prefix sum (in the full tree) at parent(root(c)).
    // Compute offsets top-down over the contracted tree: offset(c) =
    // offset(parent component) + phase1-prefix at the attachment node.
    let comp_parent: Vec<Option<(usize, NodeId)>> = decomposition
        .component_roots
        .iter()
        .map(|&r| {
            tree.parent(r)
                .map(|p| (decomposition.component[p.index()], p))
        })
        .collect();
    let mut order: Vec<usize> = (0..decomposition.num_components).collect();
    order.sort_by_key(|&c| tree.depth(decomposition.component_roots[c]));
    let mut offset = vec![0.0; decomposition.num_components];
    for &c in &order {
        if let Some((pc, attach)) = comp_parent[c] {
            offset[c] = offset[pc] + phase1.values[attach.index()];
        }
    }

    // Phase 3 (local): every node adds its component's offset. This requires
    // each node to know its component offset, which was part of the phase-2
    // broadcast, so no extra rounds are charged.
    let values_out: Vec<f64> = phase1
        .values
        .iter()
        .enumerate()
        .map(|(v, &x)| x + offset[decomposition.component[v]])
        .collect();

    TreeAggregationResult {
        values: values_out,
        cost: phase1.cost.then(phase2_cost),
    }
}

/// Within-component subtree sums as a genuine message-passing protocol: the
/// cut parent edges are simply never used, so each component performs an
/// independent convergecast concurrently.
fn forest_subtree_sums(
    model: &CommModel,
    network: &Network,
    tree: &RootedTree,
    decomposition: &TreeDecomposition,
    values: &[f64],
) -> TreeAggregationResult {
    let protocol = ForestAggregate {
        tree,
        decomposition,
        values,
        direction: Direction::Up,
    };
    run_forest(model, network, &protocol)
}

/// Within-component prefix sums (downcast) as a genuine message-passing
/// protocol.
fn forest_prefix_sums(
    model: &CommModel,
    network: &Network,
    tree: &RootedTree,
    decomposition: &TreeDecomposition,
    values: &[f64],
) -> TreeAggregationResult {
    let protocol = ForestAggregate {
        tree,
        decomposition,
        values,
        direction: Direction::Down,
    };
    run_forest(model, network, &protocol)
}

/// Executes one forest-aggregation phase on the model's fabric. Classic
/// delegates to the raw engine (byte-identical to PR 4); the lossy model
/// runs the unchanged protocol through the retransmit-with-ack adapter, so
/// the aggregation still computes exact values, just with an inflated round
/// and message bill.
fn run_forest(
    model: &CommModel,
    network: &Network,
    protocol: &ForestAggregate<'_>,
) -> TreeAggregationResult {
    let (run, _faults) = Simulator::new()
        .run_model_reliable(network, model, protocol)
        .expect("forest aggregation respects the model's rules");
    TreeAggregationResult {
        values: run.outputs,
        cost: run.cost,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

struct ForestAggregate<'a> {
    tree: &'a RootedTree,
    decomposition: &'a TreeDecomposition,
    values: &'a [f64],
    direction: Direction,
}

#[derive(Clone, Debug)]
struct AggMsg(f64);

impl MessageSize for AggMsg {}

struct AggState {
    acc: f64,
    pending: usize,
    sent: bool,
    /// For downcasts: whether the node has received its prefix from above.
    received_prefix: bool,
}

impl<'a> ForestAggregate<'a> {
    fn same_component_children(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.tree.children(v).iter().copied().filter(move |c| {
            self.decomposition.component[c.index()] == self.decomposition.component[v.index()]
        })
    }

    fn is_component_root(&self, v: NodeId) -> bool {
        self.decomposition.component_roots[self.decomposition.component[v.index()]] == v
    }

    fn send_to_children(&self, v: NodeId, value: f64, outbox: &mut Outbox<'_, AggMsg>) {
        for c in self.same_component_children(v) {
            let e = self.tree.parent_edge(c).expect("child has a parent edge");
            outbox.send(e, AggMsg(value));
        }
    }
}

impl<'a> Protocol for ForestAggregate<'a> {
    type Msg = AggMsg;
    type State = AggState;
    type Output = f64;

    fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
        let v = view.node;
        let children = self.same_component_children(v).count();
        match self.direction {
            Direction::Up => {
                let mut state = AggState {
                    acc: self.values[v.index()],
                    pending: children,
                    sent: false,
                    received_prefix: true,
                };
                if children == 0 && !self.is_component_root(v) {
                    let e = self
                        .tree
                        .parent_edge(v)
                        .expect("non-root has a parent edge");
                    outbox.send(e, AggMsg(state.acc));
                    state.sent = true;
                }
                state
            }
            Direction::Down => {
                let is_root = self.is_component_root(v);
                let acc = self.values[v.index()];
                if is_root {
                    self.send_to_children(v, acc, outbox);
                }
                AggState {
                    acc,
                    pending: 0,
                    sent: is_root,
                    received_prefix: is_root,
                }
            }
        }
    }

    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        _round: u64,
    ) {
        let v = view.node;
        match self.direction {
            Direction::Up => {
                for (_, AggMsg(x)) in inbox.iter() {
                    state.acc += x;
                    state.pending -= 1;
                }
                if !state.sent && state.pending == 0 && !self.is_component_root(v) {
                    state.sent = true;
                    let e = self
                        .tree
                        .parent_edge(v)
                        .expect("non-root has a parent edge");
                    outbox.send(e, AggMsg(state.acc));
                }
            }
            Direction::Down => {
                if state.received_prefix {
                    return;
                }
                if let Some((_, AggMsg(prefix))) = inbox.first() {
                    state.acc += prefix;
                    state.received_prefix = true;
                    state.sent = true;
                    self.send_to_children(v, state.acc, outbox);
                }
            }
        }
    }

    fn is_terminated(&self, state: &Self::State) -> bool {
        match self.direction {
            Direction::Up => state.pending == 0,
            Direction::Down => state.received_prefix,
        }
    }

    fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
        state.acc
    }
}

/// Subtree sums in the `BCAST(log n)` model: every broadcast word is global,
/// so the Lemma 8.2 decomposition and the pipelined summary exchange are
/// unnecessary — each node broadcasts its completed subtree sum exactly once
/// and the whole aggregation finishes in `O(depth(T))` rounds with at most
/// one broadcast per node. The computed values equal
/// [`RootedTree::subtree_sums`], like the CONGEST protocol's.
///
/// # Panics
///
/// Panics if `values.len()` differs from the node count. (The tree's edges
/// need not exist in the network: `BCAST` does not route over graph edges.)
pub fn bcast_subtree_sums(
    network: &Network,
    tree: &RootedTree,
    values: &[f64],
) -> TreeAggregationResult {
    run_bcast_aggregate(network, tree, values, Direction::Up)
}

/// Root-to-node prefix sums in the `BCAST(log n)` model (see
/// [`bcast_subtree_sums`]); equals [`RootedTree::prefix_sums_from_root`].
///
/// # Panics
///
/// Panics if `values.len()` differs from the node count.
pub fn bcast_prefix_sums(
    network: &Network,
    tree: &RootedTree,
    values: &[f64],
) -> TreeAggregationResult {
    run_bcast_aggregate(network, tree, values, Direction::Down)
}

fn run_bcast_aggregate(
    network: &Network,
    tree: &RootedTree,
    values: &[f64],
    direction: Direction,
) -> TreeAggregationResult {
    assert_eq!(
        values.len(),
        network.num_nodes(),
        "value vector length mismatch"
    );
    let protocol = BcastTreeAggregate {
        tree,
        values,
        direction,
    };
    let run = Simulator::new()
        .run_bcast(network, &protocol)
        .expect("bcast tree aggregation terminates within the round cap");
    TreeAggregationResult {
        values: run.outputs,
        cost: run.cost,
    }
}

/// The tree aggregations as a [`BcastProtocol`]: upward, a node broadcasts
/// its subtree sum once all children have announced theirs; downward, a node
/// derives its prefix from its parent's broadcast and announces it to its
/// own children. One `O(log n)`-bit word per broadcast.
struct BcastTreeAggregate<'a> {
    tree: &'a RootedTree,
    values: &'a [f64],
    direction: Direction,
}

struct BcastAggState {
    acc: f64,
    pending: usize,
    done: bool,
}

impl BcastProtocol for BcastTreeAggregate<'_> {
    type Word = AggMsg;
    type State = BcastAggState;
    type Output = f64;

    fn init(&self, view: &LocalView<'_>) -> (Self::State, Option<Self::Word>) {
        let v = view.node;
        let acc = self.values[v.index()];
        let is_root = self.tree.parent(v).is_none();
        match self.direction {
            Direction::Up => {
                let pending = self.tree.children(v).len();
                if pending == 0 {
                    // Leaves announce immediately; the root's total interests
                    // nobody above it, so it stays silent.
                    (
                        BcastAggState {
                            acc,
                            pending,
                            done: true,
                        },
                        (!is_root).then_some(AggMsg(acc)),
                    )
                } else {
                    (
                        BcastAggState {
                            acc,
                            pending,
                            done: false,
                        },
                        None,
                    )
                }
            }
            Direction::Down => {
                if is_root {
                    let word = (!self.tree.children(v).is_empty()).then_some(AggMsg(acc));
                    (
                        BcastAggState {
                            acc,
                            pending: 0,
                            done: true,
                        },
                        word,
                    )
                } else {
                    (
                        BcastAggState {
                            acc,
                            pending: 0,
                            done: false,
                        },
                        None,
                    )
                }
            }
        }
    }

    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        heard: &BcastInbox<'_, Self::Word>,
        _round: u64,
    ) -> Option<Self::Word> {
        let v = view.node;
        if state.done {
            return None;
        }
        match self.direction {
            Direction::Up => {
                // Each child broadcasts exactly once, so a heard child is a
                // freshly completed subtree — no double counting.
                for &c in self.tree.children(v) {
                    if let Some(AggMsg(w)) = heard.from(c) {
                        state.acc += w;
                        state.pending -= 1;
                    }
                }
                if state.pending == 0 {
                    state.done = true;
                    if self.tree.parent(v).is_some() {
                        return Some(AggMsg(state.acc));
                    }
                }
                None
            }
            Direction::Down => {
                let p = self.tree.parent(v).expect("non-root has a parent");
                if let Some(AggMsg(prefix)) = heard.from(p) {
                    state.acc += prefix;
                    state.done = true;
                    if !self.tree.children(v).is_empty() {
                        return Some(AggMsg(state.acc));
                    }
                }
                None
            }
        }
    }

    fn is_terminated(&self, state: &Self::State) -> bool {
        state.done
    }

    fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
        state.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::build_bfs_tree;
    use flowgraph::{gen, spanning};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize) -> (Network, RootedTree, RootedTree) {
        // A path graph gives the deepest possible spanning tree, the worst
        // case the decomposition is designed for.
        let g = gen::path(n, 1.0);
        let tree = spanning::bfs_tree(&g, NodeId(0)).unwrap();
        let network = Network::new(g);
        let bfs = build_bfs_tree(&network, NodeId(0)).tree;
        (network, tree, bfs)
    }

    #[test]
    fn decomposition_reduces_depth() {
        let (_, tree, _) = setup(400);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = TreeDecomposition::recommended_probability(400);
        let dec = TreeDecomposition::sample(&tree, p, &mut rng);
        assert!(dec.num_components > 1);
        assert!(
            dec.max_component_depth < 399,
            "decomposition must cut the path"
        );
        // sanity: every node's component root is an ancestor in the same component
        for v in 0..400 {
            let c = dec.component[v];
            assert!(c < dec.num_components);
        }
    }

    #[test]
    fn trivial_decomposition_is_single_component() {
        let (_, tree, _) = setup(10);
        let dec = TreeDecomposition::trivial(&tree);
        assert_eq!(dec.num_components, 1);
        assert_eq!(dec.max_component_depth, 9);
    }

    #[test]
    fn distributed_subtree_sums_match_centralized() {
        let (network, tree, bfs) = setup(60);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let dec = TreeDecomposition::sample(&tree, 0.2, &mut rng);
        let values: Vec<f64> = (0..60).map(|v| (v % 7) as f64 - 3.0).collect();
        let result = distributed_subtree_sums(&network, &tree, &dec, &bfs, &values);
        let expected = tree.subtree_sums(&values);
        for (v, (got, want)) in result.values.iter().zip(&expected).enumerate() {
            assert!(
                (got - want).abs() < 1e-9,
                "subtree sum mismatch at node {v}: {got} vs {want}"
            );
        }
        assert!(result.cost.rounds > 0);
    }

    #[test]
    fn distributed_prefix_sums_match_centralized() {
        let (network, tree, bfs) = setup(60);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dec = TreeDecomposition::sample(&tree, 0.2, &mut rng);
        let values: Vec<f64> = (0..60).map(|v| ((v * 13) % 5) as f64).collect();
        let result = distributed_prefix_sums(&network, &tree, &dec, &bfs, &values);
        let expected = tree.prefix_sums_from_root(&values);
        for (v, (got, want)) in result.values.iter().zip(&expected).enumerate() {
            assert!(
                (got - want).abs() < 1e-9,
                "prefix sum mismatch at node {v}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn decomposition_beats_naive_depth_on_deep_trees() {
        let (network, tree, bfs) = setup(900);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let p = TreeDecomposition::recommended_probability(900);
        let dec = TreeDecomposition::sample(&tree, p, &mut rng);
        let values = vec![1.0; 900];
        let decomposed = distributed_subtree_sums(&network, &tree, &dec, &bfs, &values);
        let trivial = TreeDecomposition::trivial(&tree);
        let naive = distributed_subtree_sums(&network, &tree, &trivial, &bfs, &values);
        // Correctness for both.
        let expected = tree.subtree_sums(&values);
        for (v, want) in expected.iter().enumerate() {
            assert!((decomposed.values[v] - want).abs() < 1e-9);
            assert!((naive.values[v] - want).abs() < 1e-9);
        }
        // Phase-1/3 cost of the naive version is ~2*depth = ~1800 rounds; the
        // decomposed version should pay far less in tree rounds but more in
        // BFS pipelining. On a path (D = n-1) the BFS term dominates both, so
        // compare only the within-component portion: max component depth must
        // be much smaller than the tree depth.
        assert!(dec.max_component_depth * 4 < tree.max_depth());
        let _ = (decomposed.cost, naive.cost);
    }

    #[test]
    fn model_ports_compute_identical_values() {
        use crate::model::{Adversary, CommModel};
        // Integer-valued inputs make f64 sums exact regardless of the
        // delivery order a model induces, so every model must produce the
        // same bytes.
        let (network, tree, bfs) = setup(40);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let dec = TreeDecomposition::sample(&tree, 0.25, &mut rng);
        let values: Vec<f64> = (0..40).map(|v| ((v * 7) % 13) as f64 - 6.0).collect();
        let classic_up = distributed_subtree_sums(&network, &tree, &dec, &bfs, &values);
        let classic_down = distributed_prefix_sums(&network, &tree, &dec, &bfs, &values);
        let handle = DecomposedTree::from_decomposition(tree.clone(), dec.clone());
        for model in [
            CommModel::Classic,
            CommModel::Clique,
            CommModel::Lossy(Adversary::benign(5)),
            CommModel::Lossy(Adversary::lossy(5, 0.15)),
        ] {
            let up = handle.subtree_sums_on(&model, &network, &bfs, &values);
            let down = handle.prefix_sums_on(&model, &network, &bfs, &values);
            let up_bits: Vec<u64> = up.values.iter().map(|x| x.to_bits()).collect();
            let classic_up_bits: Vec<u64> = classic_up.values.iter().map(|x| x.to_bits()).collect();
            assert_eq!(up_bits, classic_up_bits, "model {}", model.name());
            let down_bits: Vec<u64> = down.values.iter().map(|x| x.to_bits()).collect();
            let classic_down_bits: Vec<u64> =
                classic_down.values.iter().map(|x| x.to_bits()).collect();
            assert_eq!(down_bits, classic_down_bits, "model {}", model.name());
            if model.is_lossy() {
                // Adversarial runs still finish; the recovery traffic is
                // visible in the bill whenever drops occurred.
                assert!(up.cost.rounds >= classic_up.cost.rounds);
            } else {
                assert_eq!(up.cost, classic_up.cost, "model {}", model.name());
                assert_eq!(down.cost, classic_down.cost, "model {}", model.name());
            }
        }
    }

    #[test]
    fn lossy_aggregation_inflates_but_finishes_the_bill() {
        use crate::model::{Adversary, CommModel};
        let (network, tree, bfs) = setup(60);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let dec = TreeDecomposition::sample(&tree, 0.2, &mut rng);
        let values: Vec<f64> = (0..60).map(|v| (v % 5) as f64).collect();
        let classic = distributed_subtree_sums(&network, &tree, &dec, &bfs, &values);
        let model = CommModel::Lossy(Adversary::lossy(13, 0.2));
        let lossy = distributed_subtree_sums_on(&model, &network, &tree, &dec, &bfs, &values);
        for (got, want) in lossy.values.iter().zip(&classic.values) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert!(lossy.cost.rounds > classic.cost.rounds);
        assert!(lossy.cost.retransmissions > 0);
        assert_eq!(classic.cost.retransmissions, 0);
    }

    #[test]
    fn bcast_aggregations_match_centralized_in_depth_rounds() {
        let g = gen::grid(7, 7, 1.0);
        let tree = spanning::max_weight_spanning_tree(&g, NodeId(0)).unwrap();
        let network = Network::new(g);
        let values: Vec<f64> = (0..49).map(|v| ((v * 3) % 11) as f64 - 5.0).collect();
        let up = bcast_subtree_sums(&network, &tree, &values);
        let down = bcast_prefix_sums(&network, &tree, &values);
        let expected_up = tree.subtree_sums(&values);
        let expected_down = tree.prefix_sums_from_root(&values);
        for v in 0..49 {
            assert_eq!(up.values[v].to_bits(), expected_up[v].to_bits(), "node {v}");
            assert_eq!(
                down.values[v].to_bits(),
                expected_down[v].to_bits(),
                "node {v}"
            );
        }
        let depth = tree.max_depth() as u64;
        assert!(up.cost.rounds <= depth + 2, "{} rounds", up.cost.rounds);
        assert!(down.cost.rounds <= depth + 2);
        // One O(log n)-bit word per broadcast, at most one broadcast per node.
        assert_eq!(up.cost.max_message_words, 1);
        assert!(up.cost.messages <= network.num_nodes() as u64);
        assert!(down.cost.messages <= network.num_nodes() as u64);
    }

    #[test]
    fn works_on_branchy_graphs_too() {
        let g = gen::grid(8, 8, 1.0);
        let tree = spanning::max_weight_spanning_tree(&g, NodeId(0)).unwrap();
        let network = Network::new(g);
        let bfs = build_bfs_tree(&network, NodeId(0)).tree;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dec = TreeDecomposition::sample(&tree, 0.3, &mut rng);
        let values: Vec<f64> = (0..64).map(|v| (v as f64).sin()).collect();
        let up = distributed_subtree_sums(&network, &tree, &dec, &bfs, &values);
        let down = distributed_prefix_sums(&network, &tree, &dec, &bfs, &values);
        let expected_up = tree.subtree_sums(&values);
        let expected_down = tree.prefix_sums_from_root(&values);
        for v in 0..64 {
            assert!((up.values[v] - expected_up[v]).abs() < 1e-9);
            assert!((down.values[v] - expected_down[v]).abs() < 1e-9);
        }
    }
}
