//! Genuine message-passing implementations of the distributed toolbox used
//! throughout the paper: BFS-tree construction, leader election, broadcast,
//! convergecast and pipelined aggregation of `k` values over a tree
//! (the "`D + k` convergecasts" bound quoted in Lemma 5.1 and §9).
//!
//! Each function wraps a [`Protocol`] run on the [`Simulator`], validates the
//! result and returns both the computed object and the measured
//! [`RoundCost`], so the higher layers can compose real measured costs. The
//! protocols write directly into the engine's flat message arenas via
//! [`Outbox`] and allocate nothing per round.

use flowgraph::{EdgeId, NodeId, RootedTree};

use crate::cost::RoundCost;
use crate::engine::{
    Inbox, LocalView, MessageSize, Network, Outbox, Protocol, SimulationError, Simulator,
};
use crate::model::CommModel;

/// Result of the distributed BFS-tree construction.
#[derive(Debug, Clone)]
pub struct BfsTreeResult {
    /// The constructed BFS tree, rooted at the requested node.
    pub tree: RootedTree,
    /// Rounds and messages used.
    pub cost: RoundCost,
}

/// Distributed BFS-tree construction by level-synchronized flooding from
/// `root`. Completes in (eccentricity of the root) + O(1) rounds.
///
/// # Panics
///
/// Panics if the graph is disconnected (the paper assumes a connected
/// network) or `root` is out of range.
pub fn build_bfs_tree(network: &Network, root: NodeId) -> BfsTreeResult {
    build_bfs_tree_on(&CommModel::Classic, network, root)
}

/// [`build_bfs_tree`] executed under an arbitrary edge-addressed
/// communication model (classic is byte-identical to [`build_bfs_tree`]; the
/// lossy model runs the unchanged flooding protocol through the
/// retransmit-with-ack adapter). Under an interfering adversary the returned
/// spanning tree may not be minimum-depth — a node can hear a longer path
/// first when the shorter announcement was dropped — which is exactly the
/// degradation a faulty network inflicts on the real protocol; the tree is
/// still a valid spanning tree rooted at `root`.
///
/// # Panics
///
/// Same conditions as [`build_bfs_tree`], plus a panic on
/// [`CommModel::Bcast`] (edge-addressed flooding cannot run there), on
/// [`CommModel::Clique`] if the graph has parallel edges (the flood's
/// one-announcement-per-edge exceeds the clique's one-word-per-ordered-pair
/// rule — callers that cannot rule multigraphs out should pre-check, as
/// `PreparedMaxFlow::distributed_max_flow_on` does), or if the adversary
/// prevents termination within the round cap.
pub fn build_bfs_tree_on(model: &CommModel, network: &Network, root: NodeId) -> BfsTreeResult {
    let protocol = BfsProtocol::new(root);
    let (run, _faults) = Simulator::new()
        .run_model_reliable(network, model, &protocol)
        .expect("BFS flooding respects the model's rules");
    let mut parent = vec![None; network.num_nodes()];
    let mut parent_edge = vec![None; network.num_nodes()];
    for (v, out) in run.outputs.iter().enumerate() {
        if let Some((edge, par)) = out {
            parent[v] = Some(*par);
            parent_edge[v] = Some(*edge);
        }
    }
    let tree = RootedTree::from_parents(root, parent, parent_edge)
        .expect("BFS on a connected graph yields a spanning tree");
    BfsTreeResult {
        tree,
        cost: run.cost,
    }
}

/// The level-synchronized BFS flooding protocol behind [`build_bfs_tree`].
/// Public so differential suites can execute the same protocol on both the
/// arena engine and the reference engine; each node outputs its
/// `(parent edge, parent)` pair (`None` at the root).
pub struct BfsProtocol {
    root: NodeId,
}

impl BfsProtocol {
    /// A BFS flood rooted at `root`.
    pub fn new(root: NodeId) -> Self {
        BfsProtocol { root }
    }
}

/// The (payload-free) join announcement of [`BfsProtocol`].
#[derive(Clone, Debug)]
pub struct BfsMsg;

impl MessageSize for BfsMsg {}

/// Per-node state of [`BfsProtocol`].
pub struct BfsState {
    joined: bool,
    parent: Option<(EdgeId, NodeId)>,
}

impl Protocol for BfsProtocol {
    type Msg = BfsMsg;
    type State = BfsState;
    type Output = Option<(EdgeId, NodeId)>;

    fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
        if view.node == self.root {
            outbox.broadcast(BfsMsg);
            BfsState {
                joined: true,
                parent: None,
            }
        } else {
            BfsState {
                joined: false,
                parent: None,
            }
        }
    }

    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        _round: u64,
    ) {
        if state.joined {
            return;
        }
        // Join via the smallest arrival edge id for determinism (the inbox
        // order is the incident-edge order, so the first message is it).
        let Some((edge, _)) = inbox.first() else {
            return;
        };
        let parent = view
            .neighbor_via(edge)
            .expect("message arrived over an incident edge");
        state.joined = true;
        state.parent = Some((edge, parent));
        for (i, (e, _)) in view.incident_pairs().iter().enumerate() {
            if e != edge {
                outbox.send_at(i, BfsMsg);
            }
        }
    }

    fn is_terminated(&self, state: &Self::State) -> bool {
        state.joined
    }

    fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
        state.parent
    }
}

/// Result of a leader election.
#[derive(Debug, Clone)]
pub struct LeaderResult {
    /// The elected leader (the node with the smallest identifier).
    pub leader: NodeId,
    /// Rounds and messages used.
    pub cost: RoundCost,
}

/// Elects the node with the minimum identifier by flooding, in `O(D)` rounds.
///
/// # Panics
///
/// Panics if the protocol fails to converge within the simulator's round cap
/// (only possible on disconnected graphs).
pub fn elect_leader(network: &Network) -> LeaderResult {
    let run = Simulator::new()
        .run(network, &MinIdFlood)
        .expect("flooding respects the CONGEST rules");
    let leader = NodeId(run.outputs[0]);
    debug_assert!(run.outputs.iter().all(|&b| b == run.outputs[0]));
    LeaderResult {
        leader,
        cost: run.cost,
    }
}

/// The minimum-identifier flooding protocol behind [`elect_leader`]: every
/// node announces the smallest id it has seen and re-floods on improvement;
/// each node outputs that minimum. Public because its outputs are
/// independent of message delivery order — which makes it the canonical
/// replay subject of the differential conformance suites (`testkit`): the
/// same outputs must emerge on every engine, model and adversary.
pub struct MinIdFlood;

/// The id announcement of [`MinIdFlood`] (one `O(log n)`-bit word).
#[derive(Clone, Debug)]
pub struct MinMsg(u32);

impl MessageSize for MinMsg {}

/// Per-node state of [`MinIdFlood`].
pub struct MinState {
    best: u32,
    announced: Option<u32>,
}

impl Protocol for MinIdFlood {
    type Msg = MinMsg;
    type State = MinState;
    type Output = u32;

    fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
        outbox.broadcast(MinMsg(view.node.0));
        MinState {
            best: view.node.0,
            announced: Some(view.node.0),
        }
    }

    fn round(
        &self,
        _view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        _round: u64,
    ) {
        for (_, MinMsg(id)) in inbox.iter() {
            state.best = state.best.min(*id);
        }
        if state.announced != Some(state.best) {
            state.announced = Some(state.best);
            outbox.broadcast(MinMsg(state.best));
        }
    }

    fn is_terminated(&self, _state: &Self::State) -> bool {
        true
    }

    fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
        state.best
    }
}

/// Result of a broadcast over a tree.
#[derive(Debug, Clone)]
pub struct BroadcastResult {
    /// The value received by every node (indexed by node id).
    pub values: Vec<f64>,
    /// Rounds and messages used.
    pub cost: RoundCost,
}

/// Broadcasts `value` from the root of `tree` to every node, using only tree
/// edges, in (tree depth) rounds.
///
/// # Panics
///
/// Panics if `tree` is not a spanning subtree of the network graph (every
/// parent edge must be realized by a graph edge).
pub fn broadcast_over_tree(network: &Network, tree: &RootedTree, value: f64) -> BroadcastResult {
    let protocol = TreeBroadcast { tree, value };
    let run = Simulator::new()
        .run(network, &protocol)
        .expect("tree broadcast respects the CONGEST rules");
    let values = run.outputs;
    BroadcastResult {
        values,
        cost: run.cost,
    }
}

struct TreeBroadcast<'a> {
    tree: &'a RootedTree,
    value: f64,
}

#[derive(Clone, Debug)]
struct ValueMsg(f64);

impl MessageSize for ValueMsg {}

struct BroadcastState {
    value: Option<f64>,
    forwarded: bool,
}

impl<'a> TreeBroadcast<'a> {
    fn send_to_children(&self, v: NodeId, value: f64, outbox: &mut Outbox<'_, ValueMsg>) {
        for &c in self.tree.children(v) {
            let e = self
                .tree
                .parent_edge(c)
                .expect("spanning tree children have realizing parent edges");
            outbox.send(e, ValueMsg(value));
        }
    }
}

impl<'a> Protocol for TreeBroadcast<'a> {
    type Msg = ValueMsg;
    type State = BroadcastState;
    type Output = f64;

    fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
        if view.node == self.tree.root() {
            self.send_to_children(view.node, self.value, outbox);
            BroadcastState {
                value: Some(self.value),
                forwarded: true,
            }
        } else {
            BroadcastState {
                value: None,
                forwarded: false,
            }
        }
    }

    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        _round: u64,
    ) {
        if state.forwarded {
            return;
        }
        if let Some((_, ValueMsg(v))) = inbox.first() {
            state.value = Some(*v);
            state.forwarded = true;
            self.send_to_children(view.node, *v, outbox);
        }
    }

    fn is_terminated(&self, state: &Self::State) -> bool {
        state.value.is_some()
    }

    fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
        state
            .value
            .expect("broadcast reached every node of a spanning tree")
    }
}

/// Result of a convergecast (aggregation towards the root).
#[derive(Debug, Clone)]
pub struct ConvergecastResult {
    /// The aggregate received by the root.
    pub root_value: f64,
    /// Per-node partial aggregates (the subtree sums seen by each node).
    pub subtree_values: Vec<f64>,
    /// Rounds and messages used.
    pub cost: RoundCost,
}

/// Aggregates `values` (one per node) towards the root of `tree` by summing
/// along tree edges; completes in (tree depth) rounds.
///
/// As a by-product every node learns the sum of its own subtree, which is the
/// primitive used to evaluate tree-cut congestion (Figure 2 of the paper).
///
/// # Panics
///
/// Panics if `values.len()` differs from the node count or the tree is not a
/// spanning subtree of the network graph.
pub fn convergecast_sum(
    network: &Network,
    tree: &RootedTree,
    values: &[f64],
) -> ConvergecastResult {
    assert_eq!(
        values.len(),
        network.num_nodes(),
        "value vector length mismatch"
    );
    let protocol = TreeConvergecast { tree, values };
    let run = Simulator::new()
        .run(network, &protocol)
        .expect("tree convergecast respects the CONGEST rules");
    let subtree_values = run.outputs;
    let root_value = subtree_values[tree.root().index()];
    ConvergecastResult {
        root_value,
        subtree_values,
        cost: run.cost,
    }
}

struct TreeConvergecast<'a> {
    tree: &'a RootedTree,
    values: &'a [f64],
}

struct ConvergecastState {
    pending_children: usize,
    acc: f64,
    sent: bool,
}

impl<'a> Protocol for TreeConvergecast<'a> {
    type Msg = ValueMsg;
    type State = ConvergecastState;
    type Output = f64;

    fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
        let children = self.tree.children(view.node).len();
        let mut state = ConvergecastState {
            pending_children: children,
            acc: self.values[view.node.index()],
            sent: false,
        };
        if children == 0 && view.node != self.tree.root() {
            let e = self
                .tree
                .parent_edge(view.node)
                .expect("non-root node of a spanning tree has a parent edge");
            outbox.send(e, ValueMsg(state.acc));
            state.sent = true;
        }
        state
    }

    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        _round: u64,
    ) {
        for (_, ValueMsg(v)) in inbox.iter() {
            state.acc += v;
            state.pending_children -= 1;
        }
        if !state.sent && state.pending_children == 0 && view.node != self.tree.root() {
            state.sent = true;
            let e = self
                .tree
                .parent_edge(view.node)
                .expect("non-root node of a spanning tree has a parent edge");
            outbox.send(e, ValueMsg(state.acc));
        }
    }

    fn is_terminated(&self, state: &Self::State) -> bool {
        state.pending_children == 0
    }

    fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
        state.acc
    }
}

/// Result of a pipelined multi-value aggregation.
#[derive(Debug, Clone)]
pub struct PipelinedResult {
    /// The `k` aggregated totals received by the root.
    pub totals: Vec<f64>,
    /// Rounds and messages used.
    pub cost: RoundCost,
}

/// Aggregates `k` independent value vectors towards the root of `tree` with
/// pipelining: one `(index, partial sum)` message per tree edge per round.
///
/// This is the classic "`k` convergecasts on a depth-`d` tree take `O(d + k)`
/// rounds" primitive (used in Lemma 5.1 and §9 for handling the Õ(√n) large
/// clusters / component summaries).
///
/// # Panics
///
/// Panics if the per-node value vectors do not all have length `k`, or the
/// tree is not a spanning subtree of the network graph.
pub fn pipelined_convergecast(
    network: &Network,
    tree: &RootedTree,
    per_node_values: &[Vec<f64>],
    k: usize,
) -> PipelinedResult {
    assert_eq!(
        per_node_values.len(),
        network.num_nodes(),
        "need one value vector per node"
    );
    assert!(
        per_node_values.iter().all(|v| v.len() == k),
        "every node must hold exactly k values"
    );
    let protocol = PipelinedConvergecast {
        tree,
        values: per_node_values,
        k,
    };
    let run = Simulator::new()
        .run(network, &protocol)
        .expect("pipelined convergecast respects the CONGEST rules");
    let totals = run.outputs[tree.root().index()].clone();
    PipelinedResult {
        totals,
        cost: run.cost,
    }
}

struct PipelinedConvergecast<'a> {
    tree: &'a RootedTree,
    values: &'a [Vec<f64>],
    k: usize,
}

#[derive(Clone, Debug)]
struct IndexedValueMsg {
    index: u32,
    value: f64,
}

impl MessageSize for IndexedValueMsg {
    fn words(&self) -> u64 {
        2
    }
}

struct PipelinedState {
    /// Partial sums per index.
    acc: Vec<f64>,
    /// Remaining child reports per index.
    pending: Vec<usize>,
    /// Next index to forward to the parent.
    next_to_send: usize,
}

impl<'a> Protocol for PipelinedConvergecast<'a> {
    type Msg = IndexedValueMsg;
    type State = PipelinedState;
    type Output = Vec<f64>;

    fn init(&self, view: &LocalView<'_>, _outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
        let children = self.tree.children(view.node).len();
        PipelinedState {
            acc: self.values[view.node.index()].clone(),
            pending: vec![children; self.k],
            next_to_send: 0,
        }
    }

    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        _round: u64,
    ) {
        for (_, msg) in inbox.iter() {
            let i = msg.index as usize;
            state.acc[i] += msg.value;
            state.pending[i] -= 1;
        }
        if view.node == self.tree.root() || state.next_to_send >= self.k {
            return;
        }
        let i = state.next_to_send;
        if state.pending[i] == 0 {
            state.next_to_send += 1;
            let e = self
                .tree
                .parent_edge(view.node)
                .expect("non-root node of a spanning tree has a parent edge");
            outbox.send(
                e,
                IndexedValueMsg {
                    index: i as u32,
                    value: state.acc[i],
                },
            );
        }
    }

    fn is_terminated(&self, state: &Self::State) -> bool {
        state.pending.iter().all(|&p| p == 0)
    }

    fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
        state.acc
    }
}

/// Convenience: the measured cost of making `k` values of global interest
/// known to every node via the BFS tree (convergecast of `k` values followed
/// by a pipelined broadcast), as used by Lemma 5.1. The returned cost is
/// `O(depth + k)` rounds with the constant measured on the actual tree.
pub fn pipelined_broadcast_cost(tree: &RootedTree, k: u64) -> RoundCost {
    let d = tree.max_depth() as u64;
    // Upcast k values (pipelined): d + k rounds; downcast another d + k.
    RoundCost::rounds(2 * (d + k))
}

/// Re-export of the simulation error type for callers that run protocols
/// directly.
pub type ProtocolError = SimulationError;

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::gen;

    fn grid_network() -> Network {
        Network::new(gen::grid(4, 4, 1.0))
    }

    #[test]
    fn bfs_tree_has_correct_depths() {
        let network = grid_network();
        let result = build_bfs_tree(&network, NodeId(0));
        let dist = network.graph().bfs_distances(NodeId(0));
        for v in network.graph().nodes() {
            assert_eq!(
                result.tree.depth(v),
                dist[v.index()],
                "depth mismatch at {v}"
            );
        }
        assert!(result.cost.rounds as usize >= result.tree.max_depth());
        assert!(result.cost.rounds as usize <= result.tree.max_depth() + 2);
    }

    #[test]
    fn leader_election_finds_minimum() {
        let network = Network::new(gen::cycle(9, 1.0));
        let result = elect_leader(&network);
        assert_eq!(result.leader, NodeId(0));
        assert!(result.cost.rounds >= 4);
    }

    #[test]
    fn broadcast_reaches_all_nodes_in_depth_rounds() {
        let network = grid_network();
        let bfs = build_bfs_tree(&network, NodeId(0));
        let result = broadcast_over_tree(&network, &bfs.tree, 42.5);
        assert!(result.values.iter().all(|&v| (v - 42.5).abs() < 1e-12));
        assert!(result.cost.rounds as usize <= bfs.tree.max_depth() + 2);
        // Broadcast uses only tree edges: n - 1 messages.
        assert_eq!(result.cost.messages as usize, network.num_nodes() - 1);
    }

    #[test]
    fn convergecast_computes_subtree_sums() {
        let network = grid_network();
        let bfs = build_bfs_tree(&network, NodeId(0));
        let values: Vec<f64> = (0..network.num_nodes()).map(|v| v as f64).collect();
        let result = convergecast_sum(&network, &bfs.tree, &values);
        let expected_total: f64 = values.iter().sum();
        assert!((result.root_value - expected_total).abs() < 1e-9);
        let reference = bfs.tree.subtree_sums(&values);
        for v in network.graph().nodes() {
            assert!(
                (result.subtree_values[v.index()] - reference[v.index()]).abs() < 1e-9,
                "subtree sum mismatch at {v}"
            );
        }
        assert!(result.cost.rounds as usize <= bfs.tree.max_depth() + 2);
    }

    #[test]
    fn pipelined_convergecast_is_depth_plus_k() {
        let network = Network::new(gen::path(20, 1.0));
        let bfs = build_bfs_tree(&network, NodeId(0));
        let k = 8;
        let per_node: Vec<Vec<f64>> = (0..network.num_nodes())
            .map(|v| (0..k).map(|i| (v * i) as f64).collect())
            .collect();
        let result = pipelined_convergecast(&network, &bfs.tree, &per_node, k);
        for (i, total) in result.totals.iter().enumerate() {
            let expected: f64 = (0..network.num_nodes()).map(|v| (v * i) as f64).sum();
            assert!(
                (total - expected).abs() < 1e-9,
                "total mismatch at index {i}"
            );
        }
        let depth = bfs.tree.max_depth() as u64;
        // Pipelining: depth + k (+ slack), NOT depth * k.
        assert!(result.cost.rounds <= depth + k as u64 + 3);
        assert!(result.cost.rounds >= depth);
        assert_eq!(result.cost.max_message_words, 2);
    }

    #[test]
    fn pipelined_broadcast_cost_scales_linearly() {
        let network = grid_network();
        let bfs = build_bfs_tree(&network, NodeId(0));
        let c1 = pipelined_broadcast_cost(&bfs.tree, 1);
        let c10 = pipelined_broadcast_cost(&bfs.tree, 10);
        assert!(c10.rounds > c1.rounds);
        assert!(c10.rounds <= c1.rounds + 20);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn convergecast_checks_value_length() {
        let network = grid_network();
        let bfs = build_bfs_tree(&network, NodeId(0));
        let _ = convergecast_sum(&network, &bfs.tree, &[1.0, 2.0]);
    }

    #[test]
    fn bfs_round_accounting_tracks_eccentricity_on_every_family() {
        // The BFS protocol must finish within ecc(root) + O(1) rounds on
        // every workload family — the round bill may not hide a Θ(n) sweep.
        for fam in gen::Family::ALL {
            let network = Network::new(fam.generate(30, 3));
            let result = build_bfs_tree(&network, NodeId(0));
            let ecc = *network
                .graph()
                .bfs_distances(NodeId(0))
                .iter()
                .max()
                .expect("non-empty graph");
            assert_eq!(
                result.tree.max_depth(),
                ecc,
                "family {fam}: wrong BFS depth"
            );
            assert!(
                (result.cost.rounds as usize) >= ecc,
                "family {fam}: BFS cannot beat the eccentricity"
            );
            assert!(
                (result.cost.rounds as usize) <= ecc + 2,
                "family {fam}: {} rounds for eccentricity {ecc}",
                result.cost.rounds
            );
            // CONGEST bandwidth: BFS announcements fit in one word.
            assert!(result.cost.max_message_words <= 1, "family {fam}");
        }
    }

    #[test]
    fn bfs_message_count_is_bounded_by_edge_work() {
        // Every edge carries O(1) BFS announcements in each direction.
        let network = grid_network();
        let result = build_bfs_tree(&network, NodeId(0));
        let m = network.graph().num_edges() as u64;
        assert!(
            result.cost.messages <= 4 * m,
            "{} messages on {m} edges",
            result.cost.messages
        );
    }
}
