//! A synchronous CONGEST-model simulator and the distributed building blocks
//! used by the max-flow algorithm of Ghaffari et al. (PODC 2015).
//!
//! The CONGEST model (§1.1 of the paper): computation proceeds in synchronous
//! rounds; in every round each node may send one message of `B = O(log n)`
//! bits over each incident edge. The simulator in [`engine`] executes
//! per-node programs round by round, enforces the one-message-per-edge rule
//! and accounts rounds, messages and message sizes.
//!
//! On top of the raw model the crate provides:
//!
//! * [`primitives`] — genuine message-passing implementations of the
//!   standard toolbox: BFS-tree construction, flooding/leader election,
//!   broadcast, convergecast and pipelined aggregation of `k` values over a
//!   tree (the `D + k` bound used throughout §5 and §9 of the paper);
//! * [`cluster`] — distributed cluster graphs (Definition 5.1) and the cost
//!   accounting of the simulation lemma (Lemma 5.1);
//! * [`treeops`] — subtree sums and root-to-node prefix sums ("downcasts") on
//!   a (possibly deep) spanning tree in `Õ(√n + D)` rounds via the random
//!   edge-sampling decomposition of Lemma 8.2 / Lemma 9.1;
//! * [`cost`] — composable round/message cost records used by the
//!   round-accounted execution of the full pipeline;
//! * [`model`] — pluggable communication models on top of the same engine:
//!   classic per-edge CONGEST, lossy/faulty CONGEST under a seeded
//!   [`Adversary`], the Congested Clique and `BCAST(log n)`;
//! * [`reliable`] — the retransmit-with-ack adapter that runs unchanged
//!   protocols over the lossy model.
//!
//! # Example: distributed BFS tree
//!
//! ```
//! use congest::engine::Network;
//! use congest::primitives::build_bfs_tree;
//! use flowgraph::{gen, NodeId};
//!
//! let g = gen::grid(4, 4, 1.0);
//! let network = Network::new(g);
//! let result = build_bfs_tree(&network, NodeId(0));
//! assert_eq!(result.tree.root(), NodeId(0));
//! // A BFS tree of a 4x4 grid from a corner has depth 6 and is found in
//! // depth + O(1) rounds.
//! assert_eq!(result.tree.max_depth(), 6);
//! assert!(result.cost.rounds >= 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod engine;
pub mod model;
pub mod primitives;
pub mod reliable;
pub mod treeops;

pub use cost::RoundCost;
pub use treeops::{DecomposedTree, TreeDecomposition};

pub use engine::{
    DeliveryEvent, Inbox, LocalView, MessageSize, Network, Outbox, Protocol, RunResult, Simulator,
    Transcript,
};
pub use model::{Adversary, BcastInbox, BcastProtocol, CommModel, FaultEvent, FaultLog};
pub use parallel::Parallelism;
pub use reliable::Reliable;
