//! Distributed cluster graphs (Definition 5.1) and the simulation lemma
//! (Lemma 5.1).
//!
//! Higher levels of the congestion-approximator recursion operate on *cluster
//! graphs*: the nodes of the network are partitioned into clusters, each
//! cluster has a leader and a low-depth spanning tree, and edges between
//! clusters are realized by actual graph edges (the mapping ψ). A round of a
//! cluster-level algorithm is simulated on the network graph by
//!
//! 1. broadcasting each cluster's outgoing message inside the cluster
//!    (small clusters use their own spanning tree; the ≤ √n large clusters
//!    pipeline over a global BFS tree),
//! 2. exchanging messages over the realizing edges (1 round), and
//! 3. aggregating the incoming messages back to the leaders (again small
//!    clusters internally, large clusters over the BFS tree).
//!
//! [`ClusterGraph::simulation_round_cost`] charges exactly these phases with
//! parameters measured on the actual instance, which is the Lemma 5.1 bound
//! `O(D + √n)` per simulated round.

use flowgraph::contract::ContractedGraph;
use flowgraph::{EdgeId, Graph, NodeId, RootedTree};

use crate::cost::RoundCost;

/// A distributed cluster graph per Definition 5.1 of the paper.
#[derive(Debug, Clone)]
pub struct ClusterGraph {
    /// Cluster label of every network node (dense in `0..num_clusters`).
    pub cluster_of: Vec<usize>,
    /// The leader (cluster ID holder) of every cluster — the minimum node id.
    pub leaders: Vec<NodeId>,
    /// Members of every cluster.
    pub members: Vec<Vec<NodeId>>,
    /// Depth of every cluster's internal BFS spanning tree.
    pub cluster_depths: Vec<usize>,
    /// The contracted multigraph between clusters; every edge remembers the
    /// realizing network edge (the mapping ψ of Definition 5.1).
    pub contracted: ContractedGraph,
}

impl ClusterGraph {
    /// Builds a cluster graph from a dense partition labelling. Each cluster
    /// must induce a connected subgraph (condition III of Definition 5.1).
    ///
    /// # Panics
    ///
    /// Panics if the labelling is not dense, or some cluster induces a
    /// disconnected subgraph.
    pub fn from_partition(g: &Graph, cluster_of: &[usize]) -> Self {
        let contracted = ContractedGraph::new(g, cluster_of);
        let num_clusters = contracted.num_clusters();
        let mut leaders = Vec::with_capacity(num_clusters);
        let mut cluster_depths = Vec::with_capacity(num_clusters);
        // Clusters partition the node set, so one shared depth array serves
        // every per-cluster BFS (total work O(n + m) over all clusters).
        let mut depth = vec![u32::MAX; g.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        for members in &contracted.members {
            let leader = *members.iter().min().expect("clusters are non-empty");
            leaders.push(leader);
            cluster_depths.push(Self::internal_bfs_depth(
                g, cluster_of, members, leader, &mut depth, &mut queue,
            ));
        }
        ClusterGraph {
            cluster_of: cluster_of.to_vec(),
            leaders,
            members: contracted.members.clone(),
            cluster_depths,
            contracted,
        }
    }

    /// The trivial cluster graph in which every node is its own cluster
    /// (level 0 of the recursion in Theorem 8.10).
    pub fn singletons(g: &Graph) -> Self {
        let labels: Vec<usize> = (0..g.num_nodes()).collect();
        Self::from_partition(g, &labels)
    }

    /// Builds the cluster graph whose clusters are the components of the
    /// forest `T \ cut`, where `cut[v]` marks the parent edge of `v` as
    /// removed — the shape produced by the j-tree construction (§8.3).
    ///
    /// # Panics
    ///
    /// Panics if the tree is not a spanning tree of `g`.
    pub fn from_tree_components(g: &Graph, tree: &RootedTree, cut: &[bool]) -> Self {
        assert_eq!(cut.len(), g.num_nodes(), "cut indicator length mismatch");
        let mut label = vec![usize::MAX; g.num_nodes()];
        let mut next = 0usize;
        for &v in tree.preorder() {
            if tree.parent(v).is_none() || cut[v.index()] {
                label[v.index()] = next;
                next += 1;
            } else {
                let p = tree.parent(v).expect("non-root has parent");
                label[v.index()] = label[p.index()];
            }
        }
        Self::from_partition(g, &label)
    }

    fn internal_bfs_depth(
        g: &Graph,
        cluster_of: &[usize],
        members: &[NodeId],
        leader: NodeId,
        depth: &mut [u32],
        queue: &mut std::collections::VecDeque<NodeId>,
    ) -> usize {
        let target = cluster_of[leader.index()];
        depth[leader.index()] = 0;
        queue.clear();
        queue.push_back(leader);
        let mut max_depth = 0u32;
        let mut reached = 1usize;
        while let Some(u) = queue.pop_front() {
            let du = depth[u.index()];
            for (_, w) in g.incident(u) {
                if cluster_of[w.index()] == target && depth[w.index()] == u32::MAX {
                    depth[w.index()] = du + 1;
                    max_depth = max_depth.max(du + 1);
                    reached += 1;
                    queue.push_back(w);
                }
            }
        }
        assert_eq!(
            reached,
            members.len(),
            "cluster {target} does not induce a connected subgraph"
        );
        max_depth as usize
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.leaders.len()
    }

    /// Number of nodes of the underlying network.
    pub fn num_network_nodes(&self) -> usize {
        self.cluster_of.len()
    }

    /// The cluster containing network node `v`.
    pub fn cluster(&self, v: NodeId) -> usize {
        self.cluster_of[v.index()]
    }

    /// The cluster multigraph (nodes = clusters, edges = inter-cluster edges
    /// with capacities inherited from the realizing edges).
    pub fn cluster_multigraph(&self) -> &Graph {
        &self.contracted.graph
    }

    /// The realizing network edge of cluster edge `e` (the mapping ψ).
    pub fn realize(&self, e: EdgeId) -> EdgeId {
        self.contracted.realize(e)
    }

    /// Maximum depth of any cluster's internal spanning tree.
    pub fn max_cluster_depth(&self) -> usize {
        self.cluster_depths.iter().copied().max().unwrap_or(0)
    }

    /// Number of "large" clusters (more than √n members), which must be
    /// handled via the global BFS tree in Lemma 5.1.
    pub fn num_large_clusters(&self) -> usize {
        let threshold = (self.num_network_nodes() as f64).sqrt();
        self.members
            .iter()
            .filter(|m| m.len() as f64 > threshold)
            .count()
    }

    /// Cost of simulating one round of a cluster-level CONGEST algorithm on
    /// the network graph (Lemma 5.1), with every parameter measured on the
    /// actual instance:
    ///
    /// * broadcast inside small clusters: `max depth of a small cluster`,
    /// * pipeline the ≤ √n large-cluster messages over the BFS tree:
    ///   `depth(BFS) + #large clusters`,
    /// * 1 round for the actual inter-cluster message exchange,
    /// * the mirror-image aggregation phase.
    pub fn simulation_round_cost(&self, bfs_tree: &RootedTree) -> RoundCost {
        let threshold = (self.num_network_nodes() as f64).sqrt();
        let small_depth = self
            .members
            .iter()
            .zip(&self.cluster_depths)
            .filter(|(m, _)| m.len() as f64 <= threshold)
            .map(|(_, &d)| d)
            .max()
            .unwrap_or(0) as u64;
        let large = self.num_large_clusters() as u64;
        let bfs_depth = bfs_tree.max_depth() as u64;
        let one_direction = small_depth + bfs_depth + large;
        RoundCost::rounds(2 * one_direction + 1)
    }

    /// Cost of simulating `t` rounds of a cluster-level algorithm
    /// (Lemma 5.1: `O((D + √n)·t)`).
    pub fn simulation_cost(&self, bfs_tree: &RootedTree, t: u64) -> RoundCost {
        self.simulation_round_cost(bfs_tree).repeat(t)
    }

    /// Aggregates per-node values to per-cluster sums at the leaders
    /// (convergecast on each cluster tree, all clusters in parallel). Returns
    /// the per-cluster sums and the cost (`max cluster depth` rounds).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` does not match the network size.
    pub fn aggregate_to_leaders(&self, values: &[f64]) -> (Vec<f64>, RoundCost) {
        assert_eq!(
            values.len(),
            self.num_network_nodes(),
            "value vector length mismatch"
        );
        let sums = self.contracted.aggregate_node_values(values);
        (sums, RoundCost::rounds(self.max_cluster_depth() as u64))
    }

    /// Broadcasts one value per cluster from the leaders to all members
    /// (broadcast on each cluster tree, all clusters in parallel). Returns
    /// the per-node values and the cost (`max cluster depth` rounds).
    ///
    /// # Panics
    ///
    /// Panics if `cluster_values.len()` does not match the cluster count.
    pub fn broadcast_from_leaders(&self, cluster_values: &[f64]) -> (Vec<f64>, RoundCost) {
        assert_eq!(
            cluster_values.len(),
            self.num_clusters(),
            "cluster value vector length mismatch"
        );
        let per_node = self.cluster_of.iter().map(|&c| cluster_values[c]).collect();
        (per_node, RoundCost::rounds(self.max_cluster_depth() as u64))
    }

    /// Refines this cluster graph: interprets `coarser_of` as a partition of
    /// the *clusters* and returns the cluster graph over the network whose
    /// clusters are unions of the current ones (used when recursing: a
    /// cluster graph on `G_{i-1}` is also a cluster graph on `G`,
    /// Theorem 8.10).
    ///
    /// # Panics
    ///
    /// Panics if `coarser_of.len()` does not match the current cluster count
    /// or if a merged cluster does not induce a connected subgraph of the
    /// network graph.
    pub fn coarsen(&self, g: &Graph, coarser_of: &[usize]) -> ClusterGraph {
        assert_eq!(
            coarser_of.len(),
            self.num_clusters(),
            "coarser labelling must cover every current cluster"
        );
        let labels: Vec<usize> = self.cluster_of.iter().map(|&c| coarser_of[c]).collect();
        ClusterGraph::from_partition(g, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::build_bfs_tree;
    use crate::Network;
    use flowgraph::{gen, spanning};

    #[test]
    fn singleton_clusters() {
        let g = gen::grid(3, 3, 1.0);
        let c = ClusterGraph::singletons(&g);
        assert_eq!(c.num_clusters(), 9);
        assert_eq!(c.max_cluster_depth(), 0);
        assert_eq!(c.cluster_multigraph().num_edges(), g.num_edges());
        assert_eq!(c.num_large_clusters(), 0);
    }

    #[test]
    fn partition_into_rows() {
        let g = gen::grid(3, 4, 1.0);
        // Cluster = row index.
        let labels: Vec<usize> = (0..12).map(|v| v / 4).collect();
        let c = ClusterGraph::from_partition(&g, &labels);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.members[0].len(), 4);
        // Rows are paths of 4 nodes, leader is the left end -> depth 3.
        assert_eq!(c.max_cluster_depth(), 3);
        // Inter-cluster edges: 4 between consecutive rows, 8 total.
        assert_eq!(c.cluster_multigraph().num_edges(), 8);
        // Every cluster edge is realized by a network edge between the right clusters.
        for (e, edge) in c.cluster_multigraph().edges() {
            let real = c.realize(e);
            let real_edge = g.edge(real);
            let cu = c.cluster(real_edge.tail);
            let cv = c.cluster(real_edge.head);
            let want = (edge.tail.index(), edge.head.index());
            assert!(
                (cu, cv) == want || (cv, cu) == want,
                "realizing edge connects the wrong clusters"
            );
        }
    }

    #[test]
    fn aggregation_and_broadcast() {
        let g = gen::grid(3, 4, 1.0);
        let labels: Vec<usize> = (0..12).map(|v| v / 4).collect();
        let c = ClusterGraph::from_partition(&g, &labels);
        let values: Vec<f64> = (0..12).map(|v| v as f64).collect();
        let (sums, cost) = c.aggregate_to_leaders(&values);
        assert_eq!(
            sums,
            vec![
                0.0 + 1.0 + 2.0 + 3.0,
                4.0 + 5.0 + 6.0 + 7.0,
                8.0 + 9.0 + 10.0 + 11.0
            ]
        );
        assert_eq!(cost.rounds, 3);
        let (per_node, _) = c.broadcast_from_leaders(&sums);
        assert_eq!(per_node[0], 6.0);
        assert_eq!(per_node[11], 38.0);
    }

    #[test]
    fn simulation_cost_is_d_plus_sqrt_n_per_round() {
        let g = gen::grid(6, 6, 1.0);
        let network = Network::new(g.clone());
        let bfs = build_bfs_tree(&network, NodeId(0)).tree;
        let labels: Vec<usize> = (0..36).map(|v| v / 6).collect();
        let c = ClusterGraph::from_partition(&g, &labels);
        let per_round = c.simulation_round_cost(&bfs);
        // Each phase is bounded by cluster depth (5) + BFS depth (10) + #large clusters (0).
        assert!(per_round.rounds <= 2 * (5 + 10) + 1);
        let ten = c.simulation_cost(&bfs, 10);
        assert_eq!(ten.rounds, per_round.rounds * 10);
    }

    #[test]
    fn tree_component_clusters() {
        let g = gen::path(8, 1.0);
        let tree = spanning::bfs_tree(&g, NodeId(0)).unwrap();
        // Cut the parent edges of nodes 3 and 6 -> components {0,1,2}, {3,4,5}, {6,7}.
        let mut cut = vec![false; 8];
        cut[3] = true;
        cut[6] = true;
        let c = ClusterGraph::from_tree_components(&g, &tree, &cut);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.members[c.cluster(NodeId(4))].len(), 3);
        assert_eq!(c.members[c.cluster(NodeId(7))].len(), 2);
    }

    #[test]
    fn coarsening_merges_clusters() {
        let g = gen::grid(3, 4, 1.0);
        let labels: Vec<usize> = (0..12).map(|v| v / 4).collect();
        let c = ClusterGraph::from_partition(&g, &labels);
        // Merge rows 0 and 1.
        let coarser = vec![0, 0, 1];
        let merged = c.coarsen(&g, &coarser);
        assert_eq!(merged.num_clusters(), 2);
        assert_eq!(merged.members[merged.cluster(NodeId(0))].len(), 8);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_cluster_panics() {
        let g = gen::path(4, 1.0);
        // Cluster {0, 2} is not connected in the path.
        let labels = vec![0, 1, 0, 1];
        let _ = ClusterGraph::from_partition(&g, &labels);
    }
}
