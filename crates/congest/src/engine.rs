//! The synchronous CONGEST simulator.
//!
//! Algorithms are expressed as [`Protocol`]s: per-node state machines that,
//! in every round, consume the messages delivered over their incident edges
//! and emit at most one message per incident edge. The [`Simulator`] executes
//! all nodes in lock step, enforces the congestion constraint and records a
//! [`RoundCost`].
//!
//! # Message arenas
//!
//! The engine allocates **no memory in the steady-state round loop**. All
//! message traffic lives in two flat arenas with one slot per directed edge
//! endpoint, indexed by the graph's CSR offsets (see [`flowgraph::csr`]):
//!
//! ```text
//! send: [ .. node 0 slots .. | .. node 1 slots .. | .. ]   (2m Option<Msg>)
//! recv: [ .. node 0 slots .. | .. node 1 slots .. | .. ]   (2m Option<Msg>)
//! flip: [ s -> mirrored slot at the other endpoint ]       (2m u32)
//! ```
//!
//! A node's [`Outbox`] is its `send` sub-slice; sending writes the slot and
//! pushes the global slot index onto a dirty list. Delivery walks only the
//! dirty slots, moving each message to the mirrored `recv` slot of the
//! receiving endpoint (the `flip` permutation, precomputed once per
//! [`Network`]). After all nodes have executed the round, the delivered slots
//! are cleared through the same list — the arenas, the dirty lists and the
//! per-node states are allocated exactly once per [`Simulator::run`].
//!
//! # Inbox ordering
//!
//! A node's [`Inbox`] iterates its incident slots in CSR order, i.e. in edge
//! insertion order — *not* in sender-id order like a per-round
//! `Vec<Vec<(EdgeId, Msg)>>` inbox would. Protocols must not rely on message
//! arrival order; where a deterministic choice is needed they should pick it
//! explicitly (the BFS protocol, for instance, joins via the minimum incident
//! edge id). [`reference_run_traced`] provides a straightforward
//! allocation-per-round implementation of the same semantics that the test
//! suites diff the arena engine against.

use flowgraph::{EdgeId, Graph, NodeId};

use crate::cost::RoundCost;

/// Message types must report their size in `O(log n)`-bit machine words so
/// the simulator can verify the CONGEST bandwidth constraint.
pub trait MessageSize {
    /// Number of `O(log n)`-bit words needed to encode this message.
    fn words(&self) -> u64 {
        1
    }
}

/// What a node knows locally at the start of an algorithm (paper §1.1:
/// "Initially, each node only knows its identifier, its incident edges, and
/// their capacities"). Knowing the total node count `n` and the identifiers
/// of neighbors is standard (both can be obtained in `O(D)` / 1 rounds).
///
/// The view borrows the network's CSR slices — constructing one performs no
/// allocation.
#[derive(Debug, Clone, Copy)]
pub struct LocalView<'a> {
    /// This node's identifier.
    pub node: NodeId,
    /// Total number of nodes in the network.
    pub num_nodes: usize,
    incident: &'a [(EdgeId, NodeId)],
    caps: &'a [f64],
}

impl<'a> LocalView<'a> {
    /// The degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.incident.len()
    }

    /// The incident `(edge, neighbor)` slots as a CSR slice, in edge
    /// insertion order (sorted by edge id).
    #[inline]
    pub fn incident_pairs(&self) -> &'a [(EdgeId, NodeId)] {
        self.incident
    }

    /// Iterates over `(edge, neighbor, capacity)` triples.
    pub fn incident(&self) -> impl Iterator<Item = (EdgeId, NodeId, f64)> + 'a {
        self.incident
            .iter()
            .zip(self.caps)
            .map(|(&(e, w), &c)| (e, w, c))
    }

    /// Looks up the neighbor reached through `edge` by binary search over the
    /// edge-id-sorted incident slice (`O(log degree)`, previously a linear
    /// scan).
    #[inline]
    pub fn neighbor_via(&self, edge: EdgeId) -> Option<NodeId> {
        self.slot_via(edge).map(|i| self.incident[i].1)
    }

    /// Looks up the capacity of incident `edge` (`O(log degree)`).
    #[inline]
    pub fn capacity_via(&self, edge: EdgeId) -> Option<f64> {
        self.slot_via(edge).map(|i| self.caps[i])
    }

    /// The local slot index of incident `edge`, if any.
    #[inline]
    pub fn slot_via(&self, edge: EdgeId) -> Option<usize> {
        slot_lookup(self.incident, edge)
    }
}

/// Shared slot lookup over an edge-id-sorted incident slice (the CSR
/// per-node ordering contract); the single implementation behind
/// [`LocalView::slot_via`] and [`Outbox::send`].
#[inline]
fn slot_lookup(incident: &[(EdgeId, NodeId)], edge: EdgeId) -> Option<usize> {
    incident.binary_search_by_key(&edge, |&(e, _)| e).ok()
}

/// A network topology on which protocols are executed.
///
/// Construction forces the graph's CSR index, captures per-slot capacities
/// and precomputes the `flip` permutation mapping every directed edge
/// endpoint slot to the mirrored slot at the other endpoint.
#[derive(Debug, Clone)]
pub struct Network {
    graph: Graph,
    /// Capacity of the edge at every CSR slot.
    caps: Vec<f64>,
    /// `flip[s]` is the slot of the same edge at the other endpoint.
    flip: Vec<u32>,
}

impl Network {
    /// Wraps a graph as a CONGEST network.
    pub fn new(graph: Graph) -> Self {
        let csr = graph.csr();
        let slots = csr.num_slots();
        let mut caps = Vec::with_capacity(slots);
        let mut flip = vec![0u32; slots];
        // Pair up the two slots of every edge in one linear pass: remember
        // the first slot seen per edge, mirror on the second encounter.
        let mut first_slot = vec![u32::MAX; graph.num_edges()];
        let mut s = 0u32;
        for v in graph.nodes() {
            for &(e, _) in csr.incident(v) {
                caps.push(graph.capacity(e));
                let first = &mut first_slot[e.index()];
                if *first == u32::MAX {
                    *first = s;
                } else {
                    flip[s as usize] = *first;
                    flip[*first as usize] = s;
                }
                s += 1;
            }
        }
        Network { graph, caps, flip }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of directed edge endpoint slots (`2m`).
    pub fn num_slots(&self) -> usize {
        self.flip.len()
    }

    /// The local view of node `v` (borrowed CSR slices; no allocation).
    pub fn view(&self, v: NodeId) -> LocalView<'_> {
        let range = self.graph.csr().slot_range(v);
        LocalView {
            node: v,
            num_nodes: self.graph.num_nodes(),
            incident: self.graph.csr().incident(v),
            caps: &self.caps[range],
        }
    }
}

/// Write handle for the messages a node sends in the current round: a view
/// over the node's slice of the flat send arena. At most one message per
/// incident edge; violations are recorded and surfaced by the simulator as
/// [`SimulationError`]s after the node's step.
#[derive(Debug)]
pub struct Outbox<'a, M> {
    node: NodeId,
    incident: &'a [(EdgeId, NodeId)],
    slots: &'a mut [Option<M>],
    /// Global slot index of local slot 0 (for the dirty list).
    base: u32,
    dirty: &'a mut Vec<u32>,
    violation: &'a mut Option<SimulationError>,
}

impl<M> Outbox<'_, M> {
    /// Queues `msg` over `edge`. Records [`SimulationError::NotIncident`] if
    /// the edge is not incident to this node and
    /// [`SimulationError::DuplicateSend`] if a message was already queued on
    /// it this round.
    pub fn send(&mut self, edge: EdgeId, msg: M) {
        match slot_lookup(self.incident, edge) {
            Some(i) => self.send_at(i, msg),
            None => self.record(SimulationError::NotIncident {
                node: self.node,
                edge,
            }),
        }
    }

    /// Queues `msg` on the incident edge at local slot `i` (the position in
    /// [`LocalView::incident_pairs`]). Avoids the edge-id lookup of
    /// [`Outbox::send`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= degree`.
    pub fn send_at(&mut self, i: usize, msg: M) {
        if self.slots[i].is_some() {
            self.record(SimulationError::DuplicateSend {
                node: self.node,
                edge: self.incident[i].0,
            });
            return;
        }
        self.slots[i] = Some(msg);
        self.dirty.push(self.base + i as u32);
    }

    /// Queues a clone of `msg` on every incident edge.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.incident.len() {
            self.send_at(i, msg.clone());
        }
    }

    /// The degree of the sending node.
    pub fn degree(&self) -> usize {
        self.incident.len()
    }

    fn record(&mut self, err: SimulationError) {
        if self.violation.is_none() {
            *self.violation = Some(err);
        }
    }
}

/// Read handle for the messages delivered to a node this round: a view over
/// the node's slice of the flat receive arena. Iteration follows the node's
/// incident-edge order (ascending edge id), not sender order.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    incident: &'a [(EdgeId, NodeId)],
    slots: &'a [Option<M>],
}

impl<'a, M> Inbox<'a, M> {
    /// Iterates over the delivered `(arrival edge, message)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, &'a M)> + '_ {
        self.incident
            .iter()
            .zip(self.slots)
            .filter_map(|(&(e, _), m)| m.as_ref().map(|m| (e, m)))
    }

    /// Number of delivered messages (`O(degree)`).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|m| m.is_some()).count()
    }

    /// Returns `true` if no message arrived this round (`O(degree)`).
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// The first delivered message in incident-edge order, if any.
    pub fn first(&self) -> Option<(EdgeId, &'a M)> {
        self.iter().next()
    }
}

/// A distributed algorithm in the CONGEST model, described as a per-node
/// state machine. Messages are emitted through the [`Outbox`] (at most one
/// per incident edge per round) and arrive through the [`Inbox`].
pub trait Protocol {
    /// Message type exchanged over edges.
    type Msg: Clone + MessageSize;
    /// Per-node state.
    type State;
    /// Per-node output produced at termination.
    type Output;

    /// Initializes the state of a node, queueing the messages it sends in
    /// the first round on `outbox`.
    fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State;

    /// Executes one round at a node: `inbox` holds the messages delivered in
    /// this round; messages for the next round go to `outbox`.
    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        round: u64,
    );

    /// Whether this node has locally terminated (it will still receive
    /// messages if neighbors keep sending, but a quiescent network with all
    /// nodes terminated ends the execution).
    fn is_terminated(&self, state: &Self::State) -> bool;

    /// Extracts the node's output once the execution has ended.
    fn output(&self, view: &LocalView<'_>, state: Self::State) -> Self::Output;
}

/// Result of executing a protocol.
#[derive(Debug, Clone)]
pub struct RunResult<T> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<T>,
    /// Rounds and messages used.
    pub cost: RoundCost,
    /// Whether the protocol reached quiescence (as opposed to the round cap).
    pub quiescent: bool,
}

/// One delivered message in an execution transcript: which edge carried it,
/// who received it, and in which round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DeliveryEvent {
    /// The round in which the message was delivered (1-based).
    pub round: u64,
    /// The edge it travelled over.
    pub edge: EdgeId,
    /// The receiving endpoint.
    pub receiver: NodeId,
}

/// A canonical execution transcript: every delivery event, sorted by
/// `(round, edge, receiver)` so that two engines with different internal
/// delivery orders produce byte-identical transcripts for identical
/// executions.
pub type Transcript = Vec<DeliveryEvent>;

/// Error produced when a protocol violates the model or fails to terminate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulationError {
    /// A node attempted to send two messages over the same edge in one round.
    DuplicateSend {
        /// The offending node.
        node: NodeId,
        /// The edge on which two messages were queued.
        edge: EdgeId,
    },
    /// A node attempted to send over an edge that is not incident to it.
    NotIncident {
        /// The offending node.
        node: NodeId,
        /// The edge in question.
        edge: EdgeId,
    },
    /// The protocol did not reach quiescence within the round cap.
    RoundLimitExceeded {
        /// The configured cap.
        max_rounds: u64,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::DuplicateSend { node, edge } => {
                write!(
                    f,
                    "node {node} sent two messages over edge {edge} in one round"
                )
            }
            SimulationError::NotIncident { node, edge } => {
                write!(
                    f,
                    "node {node} attempted to send over non-incident edge {edge}"
                )
            }
            SimulationError::RoundLimitExceeded { max_rounds } => {
                write!(f, "protocol did not terminate within {max_rounds} rounds")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// Executes [`Protocol`]s on a [`Network`] with the flat double-buffered
/// message arenas described in the [module docs](self).
#[derive(Debug, Clone)]
pub struct Simulator {
    max_rounds: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator {
            max_rounds: 1_000_000,
        }
    }
}

impl Simulator {
    /// Creates a simulator with the default round cap (10^6).
    pub fn new() -> Self {
        Simulator::default()
    }

    /// Sets the maximum number of rounds before the execution is aborted.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Runs `protocol` on `network` until quiescence (no messages in flight
    /// and every node locally terminated) or until the round cap is hit.
    ///
    /// # Errors
    ///
    /// Returns a [`SimulationError`] if the protocol violates the CONGEST
    /// sending rules or exceeds the round cap.
    pub fn run<P: Protocol>(
        &self,
        network: &Network,
        protocol: &P,
    ) -> Result<RunResult<P::Output>, SimulationError> {
        self.run_impl(network, protocol, None)
    }

    /// Like [`Simulator::run`], additionally recording the canonical
    /// [`Transcript`] of all delivered messages (used by the differential
    /// suites that compare engines).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Simulator::run`].
    pub fn run_traced<P: Protocol>(
        &self,
        network: &Network,
        protocol: &P,
    ) -> Result<(RunResult<P::Output>, Transcript), SimulationError> {
        let mut transcript = Vec::new();
        let result = self.run_impl(network, protocol, Some(&mut transcript))?;
        transcript.sort_unstable();
        Ok((result, transcript))
    }

    fn run_impl<P: Protocol>(
        &self,
        network: &Network,
        protocol: &P,
        mut trace: Option<&mut Vec<DeliveryEvent>>,
    ) -> Result<RunResult<P::Output>, SimulationError> {
        let n = network.num_nodes();
        let slots = network.num_slots();
        let csr = network.graph().csr();

        // Everything below is allocated exactly once per run; the round loop
        // itself performs no heap allocation.
        let mut send: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(slots).collect();
        let mut recv: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(slots).collect();
        let mut send_dirty: Vec<u32> = Vec::with_capacity(slots);
        let mut recv_dirty: Vec<u32> = Vec::with_capacity(slots);
        let mut states: Vec<P::State> = Vec::with_capacity(n);
        let mut violation: Option<SimulationError> = None;
        let mut cost = RoundCost::ZERO;

        for v in network.graph().nodes() {
            let view = network.view(v);
            let range = csr.slot_range(v);
            let mut outbox = Outbox {
                node: v,
                incident: view.incident,
                base: range.start as u32,
                slots: &mut send[range],
                dirty: &mut send_dirty,
                violation: &mut violation,
            };
            let state = protocol.init(&view, &mut outbox);
            if let Some(err) = violation.take() {
                return Err(err);
            }
            states.push(state);
        }

        let mut round: u64 = 0;
        loop {
            if send_dirty.is_empty() && states.iter().all(|s| protocol.is_terminated(s)) {
                break;
            }
            if round >= self.max_rounds {
                return Err(SimulationError::RoundLimitExceeded {
                    max_rounds: self.max_rounds,
                });
            }
            round += 1;

            // Deliver: move every queued message to the mirrored slot at the
            // other endpoint. Only touched slots are visited.
            recv_dirty.clear();
            for &s in &send_dirty {
                let msg = send[s as usize].take().expect("dirty slot holds a message");
                cost.messages += 1;
                cost.max_message_words = cost.max_message_words.max(msg.words());
                if let Some(tr) = trace.as_deref_mut() {
                    let (edge, receiver) = csr.slot(s as usize);
                    tr.push(DeliveryEvent {
                        round,
                        edge,
                        receiver,
                    });
                }
                let d = network.flip[s as usize];
                recv[d as usize] = Some(msg);
                recv_dirty.push(d);
            }
            send_dirty.clear();

            // Execute the round at every node.
            for v in network.graph().nodes() {
                let view = network.view(v);
                let range = csr.slot_range(v);
                let inbox = Inbox {
                    incident: view.incident,
                    slots: &recv[range.clone()],
                };
                let mut outbox = Outbox {
                    node: v,
                    incident: view.incident,
                    base: range.start as u32,
                    slots: &mut send[range],
                    dirty: &mut send_dirty,
                    violation: &mut violation,
                };
                protocol.round(&view, &mut states[v.index()], &inbox, &mut outbox, round);
                if let Some(err) = violation.take() {
                    return Err(err);
                }
            }

            // Clear the delivered slots for the next round.
            for &d in &recv_dirty {
                recv[d as usize] = None;
            }
        }
        cost.rounds = round;

        let outputs = network
            .graph()
            .nodes()
            .zip(states)
            .map(|(v, s)| protocol.output(&network.view(v), s))
            .collect();
        Ok(RunResult {
            outputs,
            cost,
            quiescent: true,
        })
    }
}

/// Reference implementation of the simulator semantics that allocates fresh
/// per-node mailboxes in every round (the legacy `Vec<Vec<_>>` execution
/// shape) and delivers in plain slot order. It is deliberately simple — the
/// executable specification the arena engine of [`Simulator`] is diffed
/// against by the equivalence suites and benchmarked against by
/// `simulate_round`.
///
/// Baseline fidelity: quiescence is tracked with a counter (like the legacy
/// engine's O(n) outbox-length sum), but delivery scans every degree slot of
/// the freshly allocated boxes rather than draining message-only vectors, so
/// for *sparse* rounds this baseline does somewhat more scanning than the
/// deleted legacy engine did. The `simulate_round` benchmark avoids that
/// skew by saturating every slot each round (full message load), where the
/// per-round work of both shapes is dominated by the same `2m` messages.
///
/// # Errors
///
/// Same error conditions as [`Simulator::run`].
pub fn reference_run_traced<P: Protocol>(
    network: &Network,
    protocol: &P,
    max_rounds: u64,
) -> Result<(RunResult<P::Output>, Transcript), SimulationError> {
    let mut transcript = Vec::new();
    let result = reference_run_impl(network, protocol, max_rounds, Some(&mut transcript))?;
    transcript.sort_unstable();
    Ok((result, transcript))
}

/// [`reference_run_traced`] without transcript recording — the fair baseline
/// for the `simulate_round` benchmarks (no per-message trace bookkeeping).
///
/// # Errors
///
/// Same error conditions as [`Simulator::run`].
pub fn reference_run<P: Protocol>(
    network: &Network,
    protocol: &P,
    max_rounds: u64,
) -> Result<RunResult<P::Output>, SimulationError> {
    reference_run_impl(network, protocol, max_rounds, None)
}

fn reference_run_impl<P: Protocol>(
    network: &Network,
    protocol: &P,
    max_rounds: u64,
    mut trace: Option<&mut Vec<DeliveryEvent>>,
) -> Result<RunResult<P::Output>, SimulationError> {
    let n = network.num_nodes();
    let csr = network.graph().csr();
    let mut cost = RoundCost::ZERO;
    let mut violation: Option<SimulationError> = None;

    let fresh_boxes = |network: &Network| -> Vec<Vec<Option<P::Msg>>> {
        network
            .graph()
            .nodes()
            .map(|v| {
                std::iter::repeat_with(|| None)
                    .take(csr.degree(v))
                    .collect()
            })
            .collect()
    };

    // Per-node jagged mailboxes, reallocated every round like the legacy
    // engine reallocated its inboxes and outboxes.
    let mut send: Vec<Vec<Option<P::Msg>>> = fresh_boxes(network);
    let mut states: Vec<P::State> = Vec::with_capacity(n);
    // In-flight messages are counted as they are queued (the legacy engine's
    // cheap O(n) outbox-length sum), not by rescanning the boxes.
    let mut in_flight = 0usize;
    for v in network.graph().nodes() {
        let view = network.view(v);
        let range = csr.slot_range(v);
        let mut scratch_dirty = Vec::new();
        let mut outbox = Outbox {
            node: v,
            incident: view.incident,
            base: range.start as u32,
            slots: &mut send[v.index()],
            dirty: &mut scratch_dirty,
            violation: &mut violation,
        };
        let state = protocol.init(&view, &mut outbox);
        if let Some(err) = violation.take() {
            return Err(err);
        }
        in_flight += scratch_dirty.len();
        states.push(state);
    }

    let mut round: u64 = 0;
    loop {
        if in_flight == 0 && states.iter().all(|s| protocol.is_terminated(s)) {
            break;
        }
        if round >= max_rounds {
            return Err(SimulationError::RoundLimitExceeded { max_rounds });
        }
        round += 1;

        // Deliver into freshly allocated per-node inboxes, scanning all
        // slots in sender order.
        let mut recv: Vec<Vec<Option<P::Msg>>> = fresh_boxes(network);
        for v in network.graph().nodes() {
            let base = csr.slot_range(v).start;
            for (i, slot) in send[v.index()].iter_mut().enumerate() {
                if let Some(msg) = slot.take() {
                    cost.messages += 1;
                    cost.max_message_words = cost.max_message_words.max(msg.words());
                    let (edge, receiver) = csr.slot(base + i);
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.push(DeliveryEvent {
                            round,
                            edge,
                            receiver,
                        });
                    }
                    let d = network.flip[base + i] as usize;
                    let d_range = csr.slot_range(receiver);
                    recv[receiver.index()][d - d_range.start] = Some(msg);
                }
            }
        }

        let mut next_send: Vec<Vec<Option<P::Msg>>> = fresh_boxes(network);
        in_flight = 0;
        for v in network.graph().nodes() {
            let view = network.view(v);
            let range = csr.slot_range(v);
            let inbox = Inbox {
                incident: view.incident,
                slots: &recv[v.index()],
            };
            let mut scratch_dirty = Vec::new();
            let mut outbox = Outbox {
                node: v,
                incident: view.incident,
                base: range.start as u32,
                slots: &mut next_send[v.index()],
                dirty: &mut scratch_dirty,
                violation: &mut violation,
            };
            protocol.round(&view, &mut states[v.index()], &inbox, &mut outbox, round);
            if let Some(err) = violation.take() {
                return Err(err);
            }
            in_flight += scratch_dirty.len();
        }
        send = next_send;
    }
    cost.rounds = round;

    let outputs = network
        .graph()
        .nodes()
        .zip(states)
        .map(|(v, s)| protocol.output(&network.view(v), s))
        .collect();
    Ok(RunResult {
        outputs,
        cost,
        quiescent: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::gen;

    /// A toy protocol: every node floods the smallest identifier it has seen;
    /// used to exercise the engine itself.
    struct MinIdFlood;

    #[derive(Clone, Debug)]
    struct MinMsg(u32);

    impl MessageSize for MinMsg {}

    struct MinState {
        best: u32,
        announced: u32,
    }

    impl Protocol for MinIdFlood {
        type Msg = MinMsg;
        type State = MinState;
        type Output = u32;

        fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
            outbox.broadcast(MinMsg(view.node.0));
            MinState {
                best: view.node.0,
                announced: view.node.0,
            }
        }

        fn round(
            &self,
            _view: &LocalView<'_>,
            state: &mut Self::State,
            inbox: &Inbox<'_, Self::Msg>,
            outbox: &mut Outbox<'_, Self::Msg>,
            _round: u64,
        ) {
            for (_, MinMsg(id)) in inbox.iter() {
                state.best = state.best.min(*id);
            }
            if state.best < state.announced {
                state.announced = state.best;
                outbox.broadcast(MinMsg(state.best));
            }
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
            state.best
        }
    }

    #[test]
    fn min_id_flood_converges_in_diameter_rounds() {
        let g = gen::path(10, 1.0);
        let network = Network::new(g);
        let result = Simulator::new().run(&network, &MinIdFlood).unwrap();
        assert!(result.outputs.iter().all(|&b| b == 0));
        assert!(result.quiescent);
        // Information must travel 9 hops; allow a couple of extra quiescence rounds.
        assert!(result.cost.rounds >= 9 && result.cost.rounds <= 12);
        assert!(result.cost.messages > 0);
        assert_eq!(result.cost.max_message_words, 1);
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = gen::path(10, 1.0);
        let network = Network::new(g);
        let err = Simulator::new()
            .with_max_rounds(2)
            .run(&network, &MinIdFlood)
            .unwrap_err();
        assert!(matches!(err, SimulationError::RoundLimitExceeded { .. }));
    }

    /// A protocol that illegally sends two messages over the same edge.
    struct Misbehaving;

    impl Protocol for Misbehaving {
        type Msg = MinMsg;
        type State = ();
        type Output = ();

        fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
            if let Some(&(e, _)) = view.incident_pairs().first() {
                outbox.send(e, MinMsg(0));
                outbox.send(e, MinMsg(1));
            }
        }

        fn round(
            &self,
            _view: &LocalView<'_>,
            _state: &mut Self::State,
            _inbox: &Inbox<'_, Self::Msg>,
            _outbox: &mut Outbox<'_, Self::Msg>,
            _round: u64,
        ) {
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView<'_>, _state: Self::State) -> Self::Output {}
    }

    #[test]
    fn duplicate_sends_are_rejected() {
        let g = gen::path(3, 1.0);
        let network = Network::new(g);
        let err = Simulator::new().run(&network, &Misbehaving).unwrap_err();
        assert!(matches!(err, SimulationError::DuplicateSend { .. }));
    }

    /// A protocol that sends over an edge it is not incident to.
    struct OffNetwork;

    impl Protocol for OffNetwork {
        type Msg = MinMsg;
        type State = ();
        type Output = ();

        fn init(&self, _view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
            outbox.send(EdgeId(999), MinMsg(0));
        }

        fn round(
            &self,
            _view: &LocalView<'_>,
            _state: &mut Self::State,
            _inbox: &Inbox<'_, Self::Msg>,
            _outbox: &mut Outbox<'_, Self::Msg>,
            _round: u64,
        ) {
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView<'_>, _state: Self::State) -> Self::Output {}
    }

    #[test]
    fn non_incident_sends_are_rejected() {
        let g = gen::path(3, 1.0);
        let network = Network::new(g);
        let err = Simulator::new().run(&network, &OffNetwork).unwrap_err();
        assert!(matches!(err, SimulationError::NotIncident { .. }));
    }

    #[test]
    fn local_view_contents() {
        let g = gen::star(4, 2.0);
        let network = Network::new(g);
        let hub = network.view(NodeId(0));
        assert_eq!(hub.degree(), 3);
        assert_eq!(hub.num_nodes, 4);
        let leaf = network.view(NodeId(2));
        assert_eq!(leaf.degree(), 1);
        let (e, nb, cap) = leaf.incident().next().unwrap();
        assert_eq!(nb, NodeId(0));
        assert_eq!(cap, 2.0);
        assert_eq!(leaf.neighbor_via(e), Some(NodeId(0)));
        assert_eq!(leaf.capacity_via(e), Some(2.0));
        assert_eq!(leaf.neighbor_via(EdgeId(999)), None);
    }

    #[test]
    fn neighbor_via_is_correct_on_a_high_degree_star() {
        // Regression for the former O(degree) linear scan: with CSR views the
        // lookup is a binary search over the edge-id-sorted incident slice.
        // Verify correctness at every hub slot of a large star (where a
        // linear scan would be quadratic across the loop) and at the leaves.
        let n = 4096;
        let g = gen::star(n, 1.0);
        let network = Network::new(g);
        let hub = network.view(NodeId(0));
        assert_eq!(hub.degree(), n - 1);
        for (i, &(e, w)) in hub.incident_pairs().iter().enumerate() {
            assert_eq!(w, NodeId((i + 1) as u32));
            assert_eq!(hub.neighbor_via(e), Some(w), "hub lookup for {e}");
        }
        assert_eq!(hub.neighbor_via(EdgeId(n as u32)), None);
        let leaf = network.view(NodeId((n - 1) as u32));
        let (e, _) = leaf.incident_pairs()[0];
        assert_eq!(leaf.neighbor_via(e), Some(NodeId(0)));
    }

    #[test]
    fn arena_and_reference_engines_agree_on_flooding() {
        for g in [
            gen::path(17, 1.0),
            gen::grid(5, 6, 1.0),
            gen::star(12, 2.0),
            gen::cycle(9, 1.0),
        ] {
            let network = Network::new(g);
            let (arena, arena_t) = Simulator::new().run_traced(&network, &MinIdFlood).unwrap();
            let (reference, reference_t) =
                reference_run_traced(&network, &MinIdFlood, 1_000_000).unwrap();
            assert_eq!(arena.outputs, reference.outputs);
            assert_eq!(arena.cost, reference.cost);
            assert_eq!(arena_t, reference_t);
            // Byte-identical transcripts, not merely equal.
            assert_eq!(
                format!("{arena_t:?}").into_bytes(),
                format!("{reference_t:?}").into_bytes()
            );
        }
    }
}
