//! The synchronous CONGEST simulator.
//!
//! Algorithms are expressed as [`Protocol`]s: per-node state machines that,
//! in every round, consume the messages delivered over their incident edges
//! and emit at most one message per incident edge. The [`Simulator`] executes
//! all nodes in lock step, enforces the congestion constraint and records a
//! [`RoundCost`].
//!
//! # Message arenas
//!
//! The engine allocates **no memory in the steady-state round loop**. All
//! message traffic lives in two flat arenas with one slot per directed edge
//! endpoint, indexed by the graph's CSR offsets (see [`flowgraph::csr`]):
//!
//! ```text
//! send: [ .. node 0 slots .. | .. node 1 slots .. | .. ]   (2m Option<Msg>)
//! recv: [ .. node 0 slots .. | .. node 1 slots .. | .. ]   (2m Option<Msg>)
//! flip: [ s -> mirrored slot at the other endpoint ]       (2m u32)
//! ```
//!
//! A node's [`Outbox`] is its `send` sub-slice; sending writes the slot and
//! pushes the global slot index onto a dirty list. Delivery walks only the
//! dirty slots, moving each message to the mirrored `recv` slot of the
//! receiving endpoint (the `flip` permutation, precomputed once per
//! [`Network`]). After all nodes have executed the round, the delivered slots
//! are cleared through the same list — the arenas, the dirty lists and the
//! per-node states are allocated exactly once per [`Simulator::run`].
//!
//! # Inbox ordering
//!
//! A node's [`Inbox`] iterates its incident slots in CSR order, i.e. in edge
//! insertion order — *not* in sender-id order like a per-round
//! `Vec<Vec<(EdgeId, Msg)>>` inbox would. Protocols must not rely on message
//! arrival order; where a deterministic choice is needed they should pick it
//! explicitly (the BFS protocol, for instance, joins via the minimum incident
//! edge id). [`reference_run_traced`] provides a straightforward
//! allocation-per-round implementation of the same semantics that the test
//! suites diff the arena engine against.
//!
//! # Sharded execution
//!
//! [`Simulator::run_sharded`] executes the same round loop across a team of
//! worker threads. Nodes are partitioned into contiguous ranges (balanced by
//! incident slot count), and because the arenas are CSR-ordered every node
//! range owns a contiguous, disjoint range of `send`/`recv` slots — each
//! worker receives its arena chunks, its state chunk and its dirty lists by
//! `&mut` for the whole run, so protocol stepping and arena bookkeeping need
//! no locks at all. Cross-shard traffic flows through a `shards × shards`
//! matrix of staging buffers: in the first half of a round every worker
//! drains its own dirty slots into the `(my shard, destination shard)`
//! cells, and after a barrier every worker empties its column into its own
//! `recv` chunk and steps its nodes. Round termination is agreed through a
//! double-buffered consensus cell. All buffers (staging cells, dirty lists,
//! arenas) are allocated once and reused, preserving the zero-allocation
//! guarantee in the steady-state round loop; and since per-node stepping is
//! order-independent and message delivery moves each value to the same slot
//! regardless of schedule, outputs, [`RoundCost`] and canonical
//! [`Transcript`]s are **byte-identical** to [`Simulator::run`] for every
//! thread count.

use std::sync::Mutex;

use flowgraph::{EdgeId, Graph, IncidentSlots, NodeId};
use parallel::{Parallelism, TeamBarrier};

use crate::cost::RoundCost;

/// Message types must report their size in `O(log n)`-bit machine words so
/// the simulator can verify the CONGEST bandwidth constraint.
pub trait MessageSize {
    /// Number of `O(log n)`-bit words needed to encode this message.
    fn words(&self) -> u64 {
        1
    }

    /// Whether this message is a *retransmission* — a repeat send of a
    /// payload whose earlier frame was dropped or not yet acknowledged. The
    /// engines bill such sends to [`RoundCost::retransmissions`] on top of
    /// the ordinary message count. Plain protocol messages never are (the
    /// default); only adapter frames like
    /// [`crate::reliable::Frame`] override this.
    fn is_retransmission(&self) -> bool {
        false
    }
}

/// What a node knows locally at the start of an algorithm (paper §1.1:
/// "Initially, each node only knows its identifier, its incident edges, and
/// their capacities"). Knowing the total node count `n` and the identifiers
/// of neighbors is standard (both can be obtained in `O(D)` / 1 rounds).
///
/// The view borrows the network's CSR slices — constructing one performs no
/// allocation.
#[derive(Debug, Clone, Copy)]
pub struct LocalView<'a> {
    /// This node's identifier.
    pub node: NodeId,
    /// Total number of nodes in the network.
    pub num_nodes: usize,
    incident: IncidentSlots<'a>,
    caps: &'a [f64],
}

impl<'a> LocalView<'a> {
    /// The degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.incident.len()
    }

    /// The incident `(edge, neighbor)` slots of this node as a borrowed CSR
    /// view (two parallel `u32` slices), in edge insertion order (sorted by
    /// edge id).
    #[inline]
    pub fn incident_pairs(&self) -> IncidentSlots<'a> {
        self.incident
    }

    /// Iterates over `(edge, neighbor, capacity)` triples.
    pub fn incident(&self) -> impl Iterator<Item = (EdgeId, NodeId, f64)> + 'a {
        self.incident
            .iter()
            .zip(self.caps)
            .map(|((e, w), &c)| (e, w, c))
    }

    /// Looks up the neighbor reached through `edge` by binary search over the
    /// edge-id-sorted incident slice (`O(log degree)`, previously a linear
    /// scan).
    #[inline]
    pub fn neighbor_via(&self, edge: EdgeId) -> Option<NodeId> {
        self.slot_via(edge).map(|i| self.incident.get(i).1)
    }

    /// Looks up the capacity of incident `edge` (`O(log degree)`).
    #[inline]
    pub fn capacity_via(&self, edge: EdgeId) -> Option<f64> {
        self.slot_via(edge).map(|i| self.caps[i])
    }

    /// The local slot index of incident `edge`, if any.
    #[inline]
    pub fn slot_via(&self, edge: EdgeId) -> Option<usize> {
        self.incident.position_of(edge)
    }
}

/// A network topology on which protocols are executed.
///
/// Construction forces the graph's CSR index, captures per-slot capacities
/// and precomputes the `flip` permutation mapping every directed edge
/// endpoint slot to the mirrored slot at the other endpoint.
#[derive(Debug, Clone)]
pub struct Network {
    graph: Graph,
    /// Capacity of the edge at every CSR slot.
    caps: Vec<f64>,
    /// `flip[s]` is the slot of the same edge at the other endpoint.
    flip: Vec<u32>,
}

impl Network {
    /// Wraps a graph as a CONGEST network.
    pub fn new(graph: Graph) -> Self {
        let csr = graph.csr();
        let slots = csr.num_slots();
        let mut caps = Vec::with_capacity(slots);
        let mut flip = vec![0u32; slots];
        // Pair up the two slots of every edge in one linear pass: remember
        // the first slot seen per edge, mirror on the second encounter.
        let mut first_slot = vec![u32::MAX; graph.num_edges()];
        let mut s = 0u32;
        for v in graph.nodes() {
            for (e, _) in csr.incident(v) {
                caps.push(graph.capacity(e));
                let first = &mut first_slot[e.index()];
                if *first == u32::MAX {
                    *first = s;
                } else {
                    flip[s as usize] = *first;
                    flip[*first as usize] = s;
                }
                s += 1;
            }
        }
        Network { graph, caps, flip }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of directed edge endpoint slots (`2m`).
    pub fn num_slots(&self) -> usize {
        self.flip.len()
    }

    /// The mirrored slot of `slot` at the other endpoint of its edge (used
    /// by the model executors in [`crate::model`]).
    pub(crate) fn flip_slot(&self, slot: usize) -> usize {
        self.flip[slot] as usize
    }

    /// The local view of node `v` (borrowed CSR slices; no allocation).
    pub fn view(&self, v: NodeId) -> LocalView<'_> {
        let range = self.graph.csr().slot_range(v);
        LocalView {
            node: v,
            num_nodes: self.graph.num_nodes(),
            incident: self.graph.csr().incident(v),
            caps: &self.caps[range],
        }
    }
}

/// Write handle for the messages a node sends in the current round: a view
/// over the node's slice of the flat send arena. At most one message per
/// incident edge; violations are recorded and surfaced by the simulator as
/// [`SimulationError`]s after the node's step.
#[derive(Debug)]
pub struct Outbox<'a, M> {
    node: NodeId,
    incident: IncidentSlots<'a>,
    slots: &'a mut [Option<M>],
    /// Global slot index of local slot 0 (for the dirty list).
    base: u32,
    dirty: &'a mut Vec<u32>,
    violation: &'a mut Option<SimulationError>,
}

impl<'a, M> Outbox<'a, M> {
    /// Assembles an outbox over caller-owned slots (used by the model
    /// executors in [`crate::model`] and the retransmit adapter in
    /// [`crate::reliable`]).
    pub(crate) fn from_parts(
        node: NodeId,
        incident: IncidentSlots<'a>,
        slots: &'a mut [Option<M>],
        base: u32,
        dirty: &'a mut Vec<u32>,
        violation: &'a mut Option<SimulationError>,
    ) -> Self {
        Outbox {
            node,
            incident,
            slots,
            base,
            dirty,
            violation,
        }
    }

    /// Queues `msg` over `edge`. Records [`SimulationError::NotIncident`] if
    /// the edge is not incident to this node and
    /// [`SimulationError::DuplicateSend`] if a message was already queued on
    /// it this round.
    pub fn send(&mut self, edge: EdgeId, msg: M) {
        match self.incident.position_of(edge) {
            Some(i) => self.send_at(i, msg),
            None => self.record(SimulationError::NotIncident {
                node: self.node,
                edge,
            }),
        }
    }

    /// Queues `msg` on the incident edge at local slot `i` (the position in
    /// [`LocalView::incident_pairs`]). Avoids the edge-id lookup of
    /// [`Outbox::send`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= degree`.
    pub fn send_at(&mut self, i: usize, msg: M) {
        if self.slots[i].is_some() {
            self.record(SimulationError::DuplicateSend {
                node: self.node,
                edge: self.incident.get(i).0,
            });
            return;
        }
        self.slots[i] = Some(msg);
        self.dirty.push(self.base + i as u32);
    }

    /// Queues a clone of `msg` on every incident edge.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.incident.len() {
            self.send_at(i, msg.clone());
        }
    }

    /// The degree of the sending node.
    pub fn degree(&self) -> usize {
        self.incident.len()
    }

    fn record(&mut self, err: SimulationError) {
        if self.violation.is_none() {
            *self.violation = Some(err);
        }
    }
}

/// Read handle for the messages delivered to a node this round: a view over
/// the node's slice of the flat receive arena. Iteration follows the node's
/// incident-edge order (ascending edge id), not sender order.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    incident: IncidentSlots<'a>,
    slots: &'a [Option<M>],
}

impl<'a, M> Inbox<'a, M> {
    /// Assembles an inbox view over caller-owned slots (used by the model
    /// executors in [`crate::model`] and the retransmit adapter in
    /// [`crate::reliable`], which present payloads through buffers they own).
    pub(crate) fn from_parts(incident: IncidentSlots<'a>, slots: &'a [Option<M>]) -> Self {
        Inbox { incident, slots }
    }

    /// Iterates over the delivered `(arrival edge, message)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, &'a M)> + '_ {
        self.incident
            .iter()
            .zip(self.slots)
            .filter_map(|((e, _), m)| m.as_ref().map(|m| (e, m)))
    }

    /// Number of delivered messages (`O(degree)`).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|m| m.is_some()).count()
    }

    /// Returns `true` if no message arrived this round (`O(degree)`).
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// The first delivered message in incident-edge order, if any.
    pub fn first(&self) -> Option<(EdgeId, &'a M)> {
        self.iter().next()
    }
}

/// A distributed algorithm in the CONGEST model, described as a per-node
/// state machine. Messages are emitted through the [`Outbox`] (at most one
/// per incident edge per round) and arrive through the [`Inbox`].
pub trait Protocol {
    /// Message type exchanged over edges.
    type Msg: Clone + MessageSize;
    /// Per-node state.
    type State;
    /// Per-node output produced at termination.
    type Output;

    /// Initializes the state of a node, queueing the messages it sends in
    /// the first round on `outbox`.
    fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State;

    /// Executes one round at a node: `inbox` holds the messages delivered in
    /// this round; messages for the next round go to `outbox`.
    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        round: u64,
    );

    /// Whether this node has locally terminated (it will still receive
    /// messages if neighbors keep sending, but a quiescent network with all
    /// nodes terminated ends the execution).
    fn is_terminated(&self, state: &Self::State) -> bool;

    /// Extracts the node's output once the execution has ended.
    fn output(&self, view: &LocalView<'_>, state: Self::State) -> Self::Output;
}

/// Protocols execute through `&self`, so a shared reference is itself a
/// protocol. This is what lets adapters like [`crate::reliable::Reliable`]
/// wrap a borrowed protocol without cloning it.
impl<P: Protocol + ?Sized> Protocol for &P {
    type Msg = P::Msg;
    type State = P::State;
    type Output = P::Output;

    fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
        (**self).init(view, outbox)
    }

    fn round(
        &self,
        view: &LocalView<'_>,
        state: &mut Self::State,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        round: u64,
    ) {
        (**self).round(view, state, inbox, outbox, round);
    }

    fn is_terminated(&self, state: &Self::State) -> bool {
        (**self).is_terminated(state)
    }

    fn output(&self, view: &LocalView<'_>, state: Self::State) -> Self::Output {
        (**self).output(view, state)
    }
}

/// Result of executing a protocol.
#[derive(Debug, Clone)]
pub struct RunResult<T> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<T>,
    /// Rounds and messages used.
    pub cost: RoundCost,
    /// Whether the protocol reached quiescence (as opposed to the round cap).
    pub quiescent: bool,
}

/// One delivered message in an execution transcript: which edge carried it,
/// who received it, and in which round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DeliveryEvent {
    /// The round in which the message was delivered (1-based).
    pub round: u64,
    /// The edge it travelled over.
    pub edge: EdgeId,
    /// The receiving endpoint.
    pub receiver: NodeId,
}

/// A canonical execution transcript: every delivery event, sorted by
/// `(round, edge, receiver)` so that two engines with different internal
/// delivery orders produce byte-identical transcripts for identical
/// executions.
pub type Transcript = Vec<DeliveryEvent>;

/// Error produced when a protocol violates the model or fails to terminate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulationError {
    /// A node attempted to send two messages over the same edge in one round.
    DuplicateSend {
        /// The offending node.
        node: NodeId,
        /// The edge on which two messages were queued.
        edge: EdgeId,
    },
    /// A node attempted to send over an edge that is not incident to it.
    NotIncident {
        /// The offending node.
        node: NodeId,
        /// The edge in question.
        edge: EdgeId,
    },
    /// The protocol did not reach quiescence within the round cap.
    RoundLimitExceeded {
        /// The configured cap.
        max_rounds: u64,
    },
    /// Under the Congested Clique model a node queued two messages for the
    /// same peer in one round (over parallel edges of the multigraph). The
    /// clique fabric carries at most one `O(log n)`-bit word per *ordered
    /// node pair* per round — parallel edges do not widen the pair's link
    /// like they do in per-edge CONGEST.
    CliquePairOverflow {
        /// The sending node.
        node: NodeId,
        /// The peer that would have received two messages.
        peer: NodeId,
    },
    /// The protocol was executed on a communication model that cannot carry
    /// it (e.g. an edge-addressed protocol on `BCAST(log n)`, whose nodes
    /// emit one shared broadcast word per round instead of per-edge
    /// messages).
    UnsupportedModel {
        /// The model that rejected the protocol.
        model: &'static str,
        /// Why the protocol cannot run there.
        reason: &'static str,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::DuplicateSend { node, edge } => {
                write!(
                    f,
                    "node {node} sent two messages over edge {edge} in one round"
                )
            }
            SimulationError::NotIncident { node, edge } => {
                write!(
                    f,
                    "node {node} attempted to send over non-incident edge {edge}"
                )
            }
            SimulationError::RoundLimitExceeded { max_rounds } => {
                write!(f, "protocol did not terminate within {max_rounds} rounds")
            }
            SimulationError::CliquePairOverflow { node, peer } => {
                write!(
                    f,
                    "node {node} queued two messages for peer {peer} in one round; the \
                     congested clique carries one word per ordered pair per round"
                )
            }
            SimulationError::UnsupportedModel { model, reason } => {
                write!(f, "protocol cannot run on the {model} model: {reason}")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// Executes [`Protocol`]s on a [`Network`] with the flat double-buffered
/// message arenas described in the [module docs](self).
#[derive(Debug, Clone)]
pub struct Simulator {
    max_rounds: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator {
            max_rounds: 1_000_000,
        }
    }
}

impl Simulator {
    /// Creates a simulator with the default round cap (10^6).
    pub fn new() -> Self {
        Simulator::default()
    }

    /// Sets the maximum number of rounds before the execution is aborted.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The configured round cap.
    pub fn max_rounds(&self) -> u64 {
        self.max_rounds
    }

    /// Runs `protocol` on `network` until quiescence (no messages in flight
    /// and every node locally terminated) or until the round cap is hit.
    ///
    /// # Errors
    ///
    /// Returns a [`SimulationError`] if the protocol violates the CONGEST
    /// sending rules or exceeds the round cap.
    pub fn run<P: Protocol>(
        &self,
        network: &Network,
        protocol: &P,
    ) -> Result<RunResult<P::Output>, SimulationError> {
        self.run_impl(network, protocol, None)
    }

    /// Like [`Simulator::run`], additionally recording the canonical
    /// [`Transcript`] of all delivered messages (used by the differential
    /// suites that compare engines).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Simulator::run`].
    pub fn run_traced<P: Protocol>(
        &self,
        network: &Network,
        protocol: &P,
    ) -> Result<(RunResult<P::Output>, Transcript), SimulationError> {
        let mut transcript = Vec::new();
        let result = self.run_impl(network, protocol, Some(&mut transcript))?;
        transcript.sort_unstable();
        Ok((result, transcript))
    }

    fn run_impl<P: Protocol>(
        &self,
        network: &Network,
        protocol: &P,
        mut trace: Option<&mut Vec<DeliveryEvent>>,
    ) -> Result<RunResult<P::Output>, SimulationError> {
        let n = network.num_nodes();
        let slots = network.num_slots();
        let csr = network.graph().csr();

        // Everything below is allocated exactly once per run; the round loop
        // itself performs no heap allocation.
        let mut send: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(slots).collect();
        let mut recv: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(slots).collect();
        let mut send_dirty: Vec<u32> = Vec::with_capacity(slots);
        let mut recv_dirty: Vec<u32> = Vec::with_capacity(slots);
        let mut states: Vec<P::State> = Vec::with_capacity(n);
        let mut violation: Option<SimulationError> = None;
        let mut cost = RoundCost::ZERO;

        for v in network.graph().nodes() {
            let view = network.view(v);
            let range = csr.slot_range(v);
            let mut outbox = Outbox {
                node: v,
                incident: view.incident,
                base: range.start as u32,
                slots: &mut send[range],
                dirty: &mut send_dirty,
                violation: &mut violation,
            };
            let state = protocol.init(&view, &mut outbox);
            if let Some(err) = violation.take() {
                return Err(err);
            }
            states.push(state);
        }

        let mut round: u64 = 0;
        loop {
            if send_dirty.is_empty() && states.iter().all(|s| protocol.is_terminated(s)) {
                break;
            }
            if round >= self.max_rounds {
                return Err(SimulationError::RoundLimitExceeded {
                    max_rounds: self.max_rounds,
                });
            }
            round += 1;

            // Deliver: move every queued message to the mirrored slot at the
            // other endpoint. Only touched slots are visited.
            recv_dirty.clear();
            for &s in &send_dirty {
                let msg = send[s as usize].take().expect("dirty slot holds a message");
                cost.messages += 1;
                cost.retransmissions += u64::from(msg.is_retransmission());
                cost.max_message_words = cost.max_message_words.max(msg.words());
                if let Some(tr) = trace.as_deref_mut() {
                    let (edge, receiver) = csr.slot(s as usize);
                    tr.push(DeliveryEvent {
                        round,
                        edge,
                        receiver,
                    });
                }
                let d = network.flip[s as usize];
                recv[d as usize] = Some(msg);
                recv_dirty.push(d);
            }
            send_dirty.clear();

            // Execute the round at every node.
            for v in network.graph().nodes() {
                let view = network.view(v);
                let range = csr.slot_range(v);
                let inbox = Inbox {
                    incident: view.incident,
                    slots: &recv[range.clone()],
                };
                let mut outbox = Outbox {
                    node: v,
                    incident: view.incident,
                    base: range.start as u32,
                    slots: &mut send[range],
                    dirty: &mut send_dirty,
                    violation: &mut violation,
                };
                protocol.round(&view, &mut states[v.index()], &inbox, &mut outbox, round);
                if let Some(err) = violation.take() {
                    return Err(err);
                }
            }

            // Clear the delivered slots for the next round.
            for &d in &recv_dirty {
                recv[d as usize] = None;
            }
        }
        cost.rounds = round;

        let outputs = network
            .graph()
            .nodes()
            .zip(states)
            .map(|(v, s)| protocol.output(&network.view(v), s))
            .collect();
        Ok(RunResult {
            outputs,
            cost,
            quiescent: true,
        })
    }

    /// Runs `protocol` with the round loop sharded across the workers of
    /// `par` (see the [module docs](self) for the execution scheme).
    /// Byte-identical to [`Simulator::run`] for every thread count;
    /// `Parallelism::sequential()` takes the sequential engine exactly.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Simulator::run`]; on a model violation the
    /// reported error is the one the sequential engine would report (the
    /// first in node order within the first offending round — and a protocol
    /// panic at an earlier node likewise wins over a later violation, as it
    /// would sequentially). One behavioral caveat: the sequential engine
    /// stops stepping at the first violating node, while the shard team only
    /// agrees to stop at the round boundary, so nodes *after* the violation
    /// may still be stepped once; protocols with external side effects must
    /// not rely on the exact stopping point.
    pub fn run_sharded<P>(
        &self,
        network: &Network,
        protocol: &P,
        par: &Parallelism,
    ) -> Result<RunResult<P::Output>, SimulationError>
    where
        P: Protocol + Sync,
        P::Msg: Send,
        P::State: Send,
    {
        Ok(self.run_sharded_impl(network, protocol, par, false)?.0)
    }

    /// Like [`Simulator::run_sharded`], additionally recording the canonical
    /// [`Transcript`]. Because transcripts are sorted by
    /// `(round, edge, receiver)`, the sharded engine's transcript is
    /// byte-identical to the sequential and reference engines'.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Simulator::run_sharded`].
    pub fn run_sharded_traced<P>(
        &self,
        network: &Network,
        protocol: &P,
        par: &Parallelism,
    ) -> Result<(RunResult<P::Output>, Transcript), SimulationError>
    where
        P: Protocol + Sync,
        P::Msg: Send,
        P::State: Send,
    {
        let (result, transcript) = self.run_sharded_impl(network, protocol, par, true)?;
        Ok((result, transcript.expect("tracing was requested")))
    }

    fn run_sharded_impl<P>(
        &self,
        network: &Network,
        protocol: &P,
        par: &Parallelism,
        traced: bool,
    ) -> Result<(RunResult<P::Output>, Option<Transcript>), SimulationError>
    where
        P: Protocol + Sync,
        P::Msg: Send,
        P::State: Send,
    {
        let n = network.num_nodes();
        let shards = par.threads().min(n.max(1));
        if shards <= 1 {
            return if traced {
                let mut transcript = Vec::new();
                let result = self.run_impl(network, protocol, Some(&mut transcript))?;
                transcript.sort_unstable();
                Ok((result, Some(transcript)))
            } else {
                Ok((self.run_impl(network, protocol, None)?, None))
            };
        }

        let csr = network.graph().csr();
        let slots = network.num_slots();

        // Contiguous node ranges balanced by slot count (CSR order makes the
        // induced slot ranges contiguous and disjoint). Heavily skewed
        // degrees (a star's hub) may leave some shards empty; they simply
        // idle through the barriers.
        let mut node_bounds = Vec::with_capacity(shards + 1);
        node_bounds.push(0usize);
        for i in 1..shards {
            let target = slots * i / shards;
            let mut v = *node_bounds.last().expect("non-empty");
            while v < n && csr.slot_range(NodeId(v as u32)).end <= target {
                v += 1;
            }
            node_bounds.push(v);
        }
        node_bounds.push(n);
        let slot_bounds: Vec<usize> = node_bounds
            .iter()
            .map(|&v| {
                if v == n {
                    slots
                } else {
                    csr.slot_range(NodeId(v as u32)).start
                }
            })
            .collect();
        // Destination shard of a global slot index.
        let shard_of_slot =
            |slot: usize| -> usize { slot_bounds[1..shards].partition_point(|&b| b <= slot) };

        // Arenas, states and per-shard dirty lists — allocated exactly once.
        let mut send: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(slots).collect();
        let mut recv: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(slots).collect();
        let mut states: Vec<P::State> = Vec::with_capacity(n);
        let mut send_dirty: Vec<Vec<u32>> = (0..shards)
            .map(|i| Vec::with_capacity(slot_bounds[i + 1] - slot_bounds[i]))
            .collect();
        let mut recv_dirty: Vec<Vec<u32>> = (0..shards)
            .map(|i| Vec::with_capacity(slot_bounds[i + 1] - slot_bounds[i]))
            .collect();

        // Init is a one-time cost; run it sequentially, filing each node's
        // queued sends into its shard's dirty list.
        let mut violation: Option<SimulationError> = None;
        {
            let mut shard = 0usize;
            for v in network.graph().nodes() {
                while v.index() >= node_bounds[shard + 1] {
                    shard += 1;
                }
                let view = network.view(v);
                let range = csr.slot_range(v);
                let mut outbox = Outbox {
                    node: v,
                    incident: view.incident,
                    base: range.start as u32,
                    slots: &mut send[range],
                    dirty: &mut send_dirty[shard],
                    violation: &mut violation,
                };
                let state = protocol.init(&view, &mut outbox);
                if let Some(err) = violation.take() {
                    return Err(err);
                }
                states.push(state);
            }
        }

        // Round-consensus cells, double-buffered by round parity so that a
        // shard can contribute the next round's tallies while peers still
        // read the current round's.
        let init_pending: u64 = send_dirty.iter().map(|d| d.len() as u64).sum();
        let init_terminated = states.iter().all(|s| protocol.is_terminated(s));
        let consensus = [
            Mutex::new(Consensus {
                pending: init_pending,
                all_terminated: init_terminated,
                contributed: shards,
            }),
            Mutex::new(Consensus {
                pending: 0,
                all_terminated: true,
                contributed: 0,
            }),
        ];
        // Poisonable barrier: if a worker dies (a panicking protocol), peers
        // unwind out of their waits instead of deadlocking, and the original
        // panic is re-thrown below.
        let barrier = TeamBarrier::new(shards);
        let panic_slot: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        // First model violation by (shard, node-order-within-shard); the
        // minimum shard's entry is what the sequential engine would report.
        let shared_violation: Mutex<Option<(usize, SimulationError)>> = Mutex::new(None);
        // Cross-shard staging: cell (src, dst) holds the messages src's
        // nodes queued for dst's slots this round. Buckets are drained, not
        // dropped, so their capacity is reused every round.
        type StagingCell<M> = Mutex<Vec<(u32, M)>>;
        let staging: Vec<StagingCell<P::Msg>> = (0..shards * shards)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let max_rounds = self.max_rounds;

        struct Shard<'a, P: Protocol> {
            nodes: std::ops::Range<usize>,
            slot_base: usize,
            send: &'a mut [Option<P::Msg>],
            recv: &'a mut [Option<P::Msg>],
            states: &'a mut [P::State],
            send_dirty: &'a mut Vec<u32>,
            recv_dirty: &'a mut Vec<u32>,
        }

        struct ShardOutcome {
            cost: RoundCost,
            trace: Vec<DeliveryEvent>,
            round_limit_hit: bool,
        }

        let workers: Vec<Shard<'_, P>> = {
            let send_chunks = parallel::split_at_boundaries(&mut send, &slot_bounds[1..]);
            let recv_chunks = parallel::split_at_boundaries(&mut recv, &slot_bounds[1..]);
            let state_chunks = parallel::split_at_boundaries(&mut states, &node_bounds[1..]);
            send_chunks
                .into_iter()
                .zip(recv_chunks)
                .zip(state_chunks)
                .zip(send_dirty.iter_mut())
                .zip(recv_dirty.iter_mut())
                .enumerate()
                .map(
                    |(i, ((((send, recv), states), send_dirty), recv_dirty))| Shard {
                        nodes: node_bounds[i]..node_bounds[i + 1],
                        slot_base: slot_bounds[i],
                        send,
                        recv,
                        states,
                        send_dirty,
                        recv_dirty,
                    },
                )
                .collect()
        };

        let outcomes = parallel::join_workers(workers, |index, shard| {
            // A panicking protocol must not strand the peers on the barrier:
            // catch the panic, record its payload (before poisoning, so any
            // peer that observes the poison finds the root cause recorded),
            // poison the barrier to release everyone, and re-throw on the
            // main thread below — the same observable behavior as the
            // sequential engine's panic.
            //
            // The `move` below must take the shared state by reference (only
            // `shard` is owned), so re-bind it explicitly.
            let barrier = &barrier;
            let consensus = &consensus;
            let shared_violation = &shared_violation;
            let staging = &staging;
            let shard_of_slot = &shard_of_slot;
            let worker = std::panic::AssertUnwindSafe(move || {
                let Shard {
                    nodes,
                    slot_base,
                    send,
                    recv,
                    states,
                    send_dirty,
                    recv_dirty,
                } = shard;
                let mut cost = RoundCost::ZERO;
                let mut trace: Vec<DeliveryEvent> = Vec::new();
                let mut round_limit_hit = false;
                let mut local_violation: Option<SimulationError> = None;
                let mut round: u64 = 0;
                loop {
                    // All shards have contributed this round's tallies.
                    barrier.wait();
                    let stop = {
                        let c = consensus[(round % 2) as usize]
                            .lock()
                            .expect("consensus cell poisoned");
                        c.pending == 0 && c.all_terminated
                    };
                    if shared_violation
                        .lock()
                        .expect("violation cell poisoned")
                        .is_some()
                    {
                        break;
                    }
                    if stop {
                        break;
                    }
                    if round >= max_rounds {
                        round_limit_hit = true;
                        break;
                    }
                    round += 1;

                    // First half: drain my dirty send slots into the staging
                    // cells of their destination shards. Messages are accounted
                    // (and trace events recorded) on the sending side, exactly
                    // like the sequential engine walks its dirty list: the CSR
                    // pair at the *send* slot names the receiving neighbor.
                    for &s in send_dirty.iter() {
                        let msg = send[s as usize - slot_base]
                            .take()
                            .expect("dirty slot holds a message");
                        cost.messages += 1;
                        cost.retransmissions += u64::from(msg.is_retransmission());
                        cost.max_message_words = cost.max_message_words.max(msg.words());
                        if traced {
                            let (edge, receiver) = csr.slot(s as usize);
                            trace.push(DeliveryEvent {
                                round,
                                edge,
                                receiver,
                            });
                        }
                        let d = network.flip[s as usize] as usize;
                        staging[index * shards + shard_of_slot(d)]
                            .lock()
                            .expect("staging cell poisoned")
                            .push((d as u32, msg));
                    }
                    send_dirty.clear();
                    barrier.wait();

                    // Second half: clear last round's deliveries, pull this
                    // round's from my staging column, then step my nodes.
                    for &d in recv_dirty.iter() {
                        recv[d as usize - slot_base] = None;
                    }
                    recv_dirty.clear();
                    for src in 0..shards {
                        let mut bucket = staging[src * shards + index]
                            .lock()
                            .expect("staging cell poisoned");
                        for (d, msg) in bucket.drain(..) {
                            recv[d as usize - slot_base] = Some(msg);
                            recv_dirty.push(d);
                        }
                    }
                    for v in nodes.clone() {
                        let v = NodeId(v as u32);
                        let view = network.view(v);
                        let range = csr.slot_range(v);
                        let inbox = Inbox {
                            incident: view.incident,
                            slots: &recv[range.start - slot_base..range.end - slot_base],
                        };
                        let mut outbox = Outbox {
                            node: v,
                            incident: view.incident,
                            base: range.start as u32,
                            slots: &mut send[range.start - slot_base..range.end - slot_base],
                            dirty: send_dirty,
                            violation: &mut local_violation,
                        };
                        protocol.round(
                            &view,
                            &mut states[v.index() - nodes.start],
                            &inbox,
                            &mut outbox,
                            round,
                        );
                        if let Some(err) = local_violation.take() {
                            let mut shared =
                                shared_violation.lock().expect("violation cell poisoned");
                            match shared.as_ref() {
                                Some((shard, _)) if *shard <= index => {}
                                _ => *shared = Some((index, err)),
                            }
                            // Keep stepping in lockstep; the team agrees to stop
                            // at the next consensus point.
                            break;
                        }
                    }

                    let terminated = states.iter().all(|s| protocol.is_terminated(s));
                    let mut c = consensus[(round % 2) as usize]
                        .lock()
                        .expect("consensus cell poisoned");
                    if c.contributed == shards {
                        // First contributor of this round resets the stale cell
                        // (last read two rounds ago).
                        *c = Consensus {
                            pending: 0,
                            all_terminated: true,
                            contributed: 0,
                        };
                    }
                    c.pending += send_dirty.len() as u64;
                    c.all_terminated &= terminated;
                    c.contributed += 1;
                }
                cost.rounds = round;
                ShardOutcome {
                    cost,
                    trace,
                    round_limit_hit,
                }
            });
            match std::panic::catch_unwind(worker) {
                Ok(outcome) => Some(outcome),
                Err(payload) => {
                    {
                        // Only the first (genuine) panic is recorded: any
                        // later panic in a peer is a cascade out of the
                        // already-poisoned barrier and would mask the root
                        // cause.
                        let mut slot = panic_slot.lock().unwrap_or_else(|p| p.into_inner());
                        if slot.is_none() {
                            *slot = Some((index, payload));
                        }
                    }
                    barrier.poison();
                    None
                }
            }
        });

        // A violation and a panic can only coexist within one round (an
        // earlier-round violation stops the team before the next round
        // starts), so the earlier *shard* — i.e. the earlier node in global
        // order — is the event the sequential engine would have hit first.
        let panic = panic_slot.into_inner().unwrap_or_else(|p| p.into_inner());
        let violation = shared_violation
            .into_inner()
            .unwrap_or_else(|p| p.into_inner());
        match (violation, panic) {
            (Some((violation_shard, err)), Some((panic_shard, _)))
                if violation_shard < panic_shard =>
            {
                return Err(err);
            }
            (_, Some((_, payload))) => std::panic::resume_unwind(payload),
            (Some((_, err)), None) => return Err(err),
            (None, None) => {}
        }
        let outcomes: Vec<ShardOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("no worker panicked (checked above)"))
            .collect();
        if outcomes.iter().any(|o| o.round_limit_hit) {
            return Err(SimulationError::RoundLimitExceeded { max_rounds });
        }
        let mut cost = RoundCost::ZERO;
        cost.rounds = outcomes.first().map(|o| o.cost.rounds).unwrap_or(0);
        let mut transcript = traced.then(Vec::new);
        for outcome in outcomes {
            debug_assert_eq!(outcome.cost.rounds, cost.rounds, "shards agree on rounds");
            cost.messages += outcome.cost.messages;
            cost.retransmissions += outcome.cost.retransmissions;
            cost.max_message_words = cost.max_message_words.max(outcome.cost.max_message_words);
            if let Some(tr) = transcript.as_mut() {
                tr.extend(outcome.trace);
            }
        }
        if let Some(tr) = transcript.as_mut() {
            tr.sort_unstable();
        }

        let outputs = network
            .graph()
            .nodes()
            .zip(states)
            .map(|(v, s)| protocol.output(&network.view(v), s))
            .collect();
        Ok((
            RunResult {
                outputs,
                cost,
                quiescent: true,
            },
            transcript,
        ))
    }
}

/// Round-termination tallies shared by the shard workers, double-buffered by
/// round parity (see [`Simulator::run_sharded`]).
struct Consensus {
    /// Messages queued for the next round, summed over all shards.
    pending: u64,
    /// Whether every node of every contributing shard has locally terminated.
    all_terminated: bool,
    /// Number of shards that have contributed this round's tallies.
    contributed: usize,
}

/// Reference implementation of the simulator semantics that allocates fresh
/// per-node mailboxes in every round (the legacy `Vec<Vec<_>>` execution
/// shape) and delivers in plain slot order. It is deliberately simple — the
/// executable specification the arena engine of [`Simulator`] is diffed
/// against by the equivalence suites and benchmarked against by
/// `simulate_round`.
///
/// Baseline fidelity: quiescence is tracked with a counter (like the legacy
/// engine's O(n) outbox-length sum), but delivery scans every degree slot of
/// the freshly allocated boxes rather than draining message-only vectors, so
/// for *sparse* rounds this baseline does somewhat more scanning than the
/// deleted legacy engine did. The `simulate_round` benchmark avoids that
/// skew by saturating every slot each round (full message load), where the
/// per-round work of both shapes is dominated by the same `2m` messages.
///
/// # Errors
///
/// Same error conditions as [`Simulator::run`].
pub fn reference_run_traced<P: Protocol>(
    network: &Network,
    protocol: &P,
    max_rounds: u64,
) -> Result<(RunResult<P::Output>, Transcript), SimulationError> {
    let mut transcript = Vec::new();
    let result = reference_run_impl(network, protocol, max_rounds, Some(&mut transcript))?;
    transcript.sort_unstable();
    Ok((result, transcript))
}

/// [`reference_run_traced`] without transcript recording — the fair baseline
/// for the `simulate_round` benchmarks (no per-message trace bookkeeping).
///
/// # Errors
///
/// Same error conditions as [`Simulator::run`].
pub fn reference_run<P: Protocol>(
    network: &Network,
    protocol: &P,
    max_rounds: u64,
) -> Result<RunResult<P::Output>, SimulationError> {
    reference_run_impl(network, protocol, max_rounds, None)
}

fn reference_run_impl<P: Protocol>(
    network: &Network,
    protocol: &P,
    max_rounds: u64,
    mut trace: Option<&mut Vec<DeliveryEvent>>,
) -> Result<RunResult<P::Output>, SimulationError> {
    let n = network.num_nodes();
    let csr = network.graph().csr();
    let mut cost = RoundCost::ZERO;
    let mut violation: Option<SimulationError> = None;

    let fresh_boxes = |network: &Network| -> Vec<Vec<Option<P::Msg>>> {
        network
            .graph()
            .nodes()
            .map(|v| {
                std::iter::repeat_with(|| None)
                    .take(csr.degree(v))
                    .collect()
            })
            .collect()
    };

    // Per-node jagged mailboxes, reallocated every round like the legacy
    // engine reallocated its inboxes and outboxes.
    let mut send: Vec<Vec<Option<P::Msg>>> = fresh_boxes(network);
    let mut states: Vec<P::State> = Vec::with_capacity(n);
    // In-flight messages are counted as they are queued (the legacy engine's
    // cheap O(n) outbox-length sum), not by rescanning the boxes.
    let mut in_flight = 0usize;
    for v in network.graph().nodes() {
        let view = network.view(v);
        let range = csr.slot_range(v);
        let mut scratch_dirty = Vec::new();
        let mut outbox = Outbox {
            node: v,
            incident: view.incident,
            base: range.start as u32,
            slots: &mut send[v.index()],
            dirty: &mut scratch_dirty,
            violation: &mut violation,
        };
        let state = protocol.init(&view, &mut outbox);
        if let Some(err) = violation.take() {
            return Err(err);
        }
        in_flight += scratch_dirty.len();
        states.push(state);
    }

    let mut round: u64 = 0;
    loop {
        if in_flight == 0 && states.iter().all(|s| protocol.is_terminated(s)) {
            break;
        }
        if round >= max_rounds {
            return Err(SimulationError::RoundLimitExceeded { max_rounds });
        }
        round += 1;

        // Deliver into freshly allocated per-node inboxes, scanning all
        // slots in sender order.
        let mut recv: Vec<Vec<Option<P::Msg>>> = fresh_boxes(network);
        for v in network.graph().nodes() {
            let base = csr.slot_range(v).start;
            for (i, slot) in send[v.index()].iter_mut().enumerate() {
                if let Some(msg) = slot.take() {
                    cost.messages += 1;
                    cost.retransmissions += u64::from(msg.is_retransmission());
                    cost.max_message_words = cost.max_message_words.max(msg.words());
                    let (edge, receiver) = csr.slot(base + i);
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.push(DeliveryEvent {
                            round,
                            edge,
                            receiver,
                        });
                    }
                    let d = network.flip[base + i] as usize;
                    let d_range = csr.slot_range(receiver);
                    recv[receiver.index()][d - d_range.start] = Some(msg);
                }
            }
        }

        let mut next_send: Vec<Vec<Option<P::Msg>>> = fresh_boxes(network);
        in_flight = 0;
        for v in network.graph().nodes() {
            let view = network.view(v);
            let range = csr.slot_range(v);
            let inbox = Inbox {
                incident: view.incident,
                slots: &recv[v.index()],
            };
            let mut scratch_dirty = Vec::new();
            let mut outbox = Outbox {
                node: v,
                incident: view.incident,
                base: range.start as u32,
                slots: &mut next_send[v.index()],
                dirty: &mut scratch_dirty,
                violation: &mut violation,
            };
            protocol.round(&view, &mut states[v.index()], &inbox, &mut outbox, round);
            if let Some(err) = violation.take() {
                return Err(err);
            }
            in_flight += scratch_dirty.len();
        }
        send = next_send;
    }
    cost.rounds = round;

    let outputs = network
        .graph()
        .nodes()
        .zip(states)
        .map(|(v, s)| protocol.output(&network.view(v), s))
        .collect();
    Ok(RunResult {
        outputs,
        cost,
        quiescent: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::gen;

    /// A toy protocol: every node floods the smallest identifier it has seen;
    /// used to exercise the engine itself.
    struct MinIdFlood;

    #[derive(Clone, Debug)]
    struct MinMsg(u32);

    impl MessageSize for MinMsg {}

    struct MinState {
        best: u32,
        announced: u32,
    }

    impl Protocol for MinIdFlood {
        type Msg = MinMsg;
        type State = MinState;
        type Output = u32;

        fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
            outbox.broadcast(MinMsg(view.node.0));
            MinState {
                best: view.node.0,
                announced: view.node.0,
            }
        }

        fn round(
            &self,
            _view: &LocalView<'_>,
            state: &mut Self::State,
            inbox: &Inbox<'_, Self::Msg>,
            outbox: &mut Outbox<'_, Self::Msg>,
            _round: u64,
        ) {
            for (_, MinMsg(id)) in inbox.iter() {
                state.best = state.best.min(*id);
            }
            if state.best < state.announced {
                state.announced = state.best;
                outbox.broadcast(MinMsg(state.best));
            }
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView<'_>, state: Self::State) -> Self::Output {
            state.best
        }
    }

    #[test]
    fn min_id_flood_converges_in_diameter_rounds() {
        let g = gen::path(10, 1.0);
        let network = Network::new(g);
        let result = Simulator::new().run(&network, &MinIdFlood).unwrap();
        assert!(result.outputs.iter().all(|&b| b == 0));
        assert!(result.quiescent);
        // Information must travel 9 hops; allow a couple of extra quiescence rounds.
        assert!(result.cost.rounds >= 9 && result.cost.rounds <= 12);
        assert!(result.cost.messages > 0);
        assert_eq!(result.cost.max_message_words, 1);
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = gen::path(10, 1.0);
        let network = Network::new(g);
        let err = Simulator::new()
            .with_max_rounds(2)
            .run(&network, &MinIdFlood)
            .unwrap_err();
        assert!(matches!(err, SimulationError::RoundLimitExceeded { .. }));
    }

    /// A protocol that illegally sends two messages over the same edge.
    struct Misbehaving;

    impl Protocol for Misbehaving {
        type Msg = MinMsg;
        type State = ();
        type Output = ();

        fn init(&self, view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
            if let Some((e, _)) = view.incident_pairs().first() {
                outbox.send(e, MinMsg(0));
                outbox.send(e, MinMsg(1));
            }
        }

        fn round(
            &self,
            _view: &LocalView<'_>,
            _state: &mut Self::State,
            _inbox: &Inbox<'_, Self::Msg>,
            _outbox: &mut Outbox<'_, Self::Msg>,
            _round: u64,
        ) {
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView<'_>, _state: Self::State) -> Self::Output {}
    }

    #[test]
    fn duplicate_sends_are_rejected() {
        let g = gen::path(3, 1.0);
        let network = Network::new(g);
        let err = Simulator::new().run(&network, &Misbehaving).unwrap_err();
        assert!(matches!(err, SimulationError::DuplicateSend { .. }));
    }

    /// A protocol that sends over an edge it is not incident to.
    struct OffNetwork;

    impl Protocol for OffNetwork {
        type Msg = MinMsg;
        type State = ();
        type Output = ();

        fn init(&self, _view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
            outbox.send(EdgeId(999), MinMsg(0));
        }

        fn round(
            &self,
            _view: &LocalView<'_>,
            _state: &mut Self::State,
            _inbox: &Inbox<'_, Self::Msg>,
            _outbox: &mut Outbox<'_, Self::Msg>,
            _round: u64,
        ) {
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView<'_>, _state: Self::State) -> Self::Output {}
    }

    #[test]
    fn non_incident_sends_are_rejected() {
        let g = gen::path(3, 1.0);
        let network = Network::new(g);
        let err = Simulator::new().run(&network, &OffNetwork).unwrap_err();
        assert!(matches!(err, SimulationError::NotIncident { .. }));
    }

    #[test]
    fn local_view_contents() {
        let g = gen::star(4, 2.0);
        let network = Network::new(g);
        let hub = network.view(NodeId(0));
        assert_eq!(hub.degree(), 3);
        assert_eq!(hub.num_nodes, 4);
        let leaf = network.view(NodeId(2));
        assert_eq!(leaf.degree(), 1);
        let (e, nb, cap) = leaf.incident().next().unwrap();
        assert_eq!(nb, NodeId(0));
        assert_eq!(cap, 2.0);
        assert_eq!(leaf.neighbor_via(e), Some(NodeId(0)));
        assert_eq!(leaf.capacity_via(e), Some(2.0));
        assert_eq!(leaf.neighbor_via(EdgeId(999)), None);
    }

    #[test]
    fn neighbor_via_is_correct_on_a_high_degree_star() {
        // Regression for the former O(degree) linear scan: with CSR views the
        // lookup is a binary search over the edge-id-sorted incident slice.
        // Verify correctness at every hub slot of a large star (where a
        // linear scan would be quadratic across the loop) and at the leaves.
        let n = 4096;
        let g = gen::star(n, 1.0);
        let network = Network::new(g);
        let hub = network.view(NodeId(0));
        assert_eq!(hub.degree(), n - 1);
        for (i, (e, w)) in hub.incident_pairs().iter().enumerate() {
            assert_eq!(w, NodeId((i + 1) as u32));
            assert_eq!(hub.neighbor_via(e), Some(w), "hub lookup for {e}");
        }
        assert_eq!(hub.neighbor_via(EdgeId(n as u32)), None);
        let leaf = network.view(NodeId((n - 1) as u32));
        let (e, _) = leaf.incident_pairs().get(0);
        assert_eq!(leaf.neighbor_via(e), Some(NodeId(0)));
    }

    #[test]
    fn sharded_engine_is_byte_identical_to_sequential() {
        for g in [
            gen::path(17, 1.0),
            gen::grid(5, 6, 1.0),
            gen::star(12, 2.0),
            gen::cycle(9, 1.0),
        ] {
            let network = Network::new(g);
            let (seq, seq_t) = Simulator::new().run_traced(&network, &MinIdFlood).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let par = Parallelism::with_threads(threads);
                let (sharded, sharded_t) = Simulator::new()
                    .run_sharded_traced(&network, &MinIdFlood, &par)
                    .unwrap();
                assert_eq!(sharded.outputs, seq.outputs, "{threads} threads");
                assert_eq!(sharded.cost, seq.cost, "{threads} threads");
                assert_eq!(sharded_t, seq_t, "{threads} threads");
                assert_eq!(
                    format!("{sharded_t:?}").into_bytes(),
                    format!("{seq_t:?}").into_bytes()
                );
                let untraced = Simulator::new()
                    .run_sharded(&network, &MinIdFlood, &par)
                    .unwrap();
                assert_eq!(untraced.outputs, seq.outputs);
                assert_eq!(untraced.cost, seq.cost);
            }
        }
    }

    #[test]
    fn sharded_engine_enforces_round_limit_and_violations() {
        let par = Parallelism::with_threads(4);
        let network = Network::new(gen::path(10, 1.0));
        let err = Simulator::new()
            .with_max_rounds(2)
            .run_sharded(&network, &MinIdFlood, &par)
            .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::RoundLimitExceeded { max_rounds: 2 }
        ));
        // Model violations surface as the same error the sequential engine
        // reports (duplicate sends happen at init here, caught before the
        // worker team even starts).
        let err = Simulator::new()
            .run_sharded(&network, &Misbehaving, &par)
            .unwrap_err();
        assert!(matches!(err, SimulationError::DuplicateSend { .. }));
    }

    /// Violates the model in round 2 (not init), so the violation is raised
    /// inside the sharded worker team and must agree with sequential.
    struct LateMisbehaving;

    impl Protocol for LateMisbehaving {
        type Msg = MinMsg;
        type State = ();
        type Output = ();

        fn init(&self, _view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
            outbox.broadcast(MinMsg(0));
        }

        fn round(
            &self,
            view: &LocalView<'_>,
            _state: &mut Self::State,
            _inbox: &Inbox<'_, Self::Msg>,
            outbox: &mut Outbox<'_, Self::Msg>,
            round: u64,
        ) {
            if round == 2 {
                if let Some((e, _)) = view.incident_pairs().first() {
                    outbox.send(e, MinMsg(0));
                    outbox.send(e, MinMsg(1));
                }
            } else if round < 2 {
                outbox.broadcast(MinMsg(round as u32));
            }
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView<'_>, _state: Self::State) -> Self::Output {}
    }

    /// Panics inside `round` at round 2 on one node — the sharded engine
    /// must re-throw the panic on the caller, not deadlock the worker team.
    struct PanicsInRound2;

    impl Protocol for PanicsInRound2 {
        type Msg = MinMsg;
        type State = ();
        type Output = ();

        fn init(&self, _view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
            outbox.broadcast(MinMsg(0));
        }

        fn round(
            &self,
            view: &LocalView<'_>,
            _state: &mut Self::State,
            _inbox: &Inbox<'_, Self::Msg>,
            outbox: &mut Outbox<'_, Self::Msg>,
            round: u64,
        ) {
            assert!(
                !(round == 2 && view.node == NodeId(7)),
                "protocol bug at node 7"
            );
            if round < 3 {
                outbox.broadcast(MinMsg(0));
            }
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView<'_>, _state: Self::State) -> Self::Output {}
    }

    /// Round 2: a model violation at low node 0 *and* a panic at high node
    /// 15. Sequentially, node 0 is stepped first, so the violation wins and
    /// node 15 is never reached; the sharded engine must report the same
    /// error even though its later shards raced ahead and hit the panic.
    struct ViolatesThenPanics;

    impl Protocol for ViolatesThenPanics {
        type Msg = MinMsg;
        type State = ();
        type Output = ();

        fn init(&self, _view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
            outbox.broadcast(MinMsg(0));
        }

        fn round(
            &self,
            view: &LocalView<'_>,
            _state: &mut Self::State,
            _inbox: &Inbox<'_, Self::Msg>,
            outbox: &mut Outbox<'_, Self::Msg>,
            round: u64,
        ) {
            if round == 2 {
                if view.node == NodeId(0) {
                    if let Some((e, _)) = view.incident_pairs().first() {
                        outbox.send(e, MinMsg(0));
                        outbox.send(e, MinMsg(1));
                    }
                }
                assert!(view.node != NodeId(15), "panic at the last node");
            } else if round < 2 {
                outbox.broadcast(MinMsg(0));
            }
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView<'_>, _state: Self::State) -> Self::Output {}
    }

    #[test]
    fn earlier_violation_wins_over_later_panic_like_sequential() {
        let network = Network::new(gen::grid(4, 4, 1.0));
        let seq = Simulator::new()
            .run(&network, &ViolatesThenPanics)
            .unwrap_err();
        assert!(matches!(seq, SimulationError::DuplicateSend { .. }));
        for threads in [2usize, 4] {
            let sharded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Simulator::new().run_sharded(
                    &network,
                    &ViolatesThenPanics,
                    &Parallelism::with_threads(threads),
                )
            }))
            .unwrap_or_else(|_| panic!("{threads} threads: panic must not mask the violation"));
            assert_eq!(sharded.unwrap_err(), seq, "{threads} threads");
        }
    }

    #[test]
    fn sharded_engine_propagates_protocol_panics_instead_of_deadlocking() {
        let network = Network::new(gen::grid(4, 4, 1.0));
        for threads in [2usize, 4] {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = Simulator::new().run_sharded(
                    &network,
                    &PanicsInRound2,
                    &Parallelism::with_threads(threads),
                );
            }));
            let payload = caught.expect_err("the protocol panic must propagate");
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string payload>");
            assert!(
                message.contains("protocol bug at node 7"),
                "{threads} threads: original payload lost, got: {message}"
            );
        }
    }

    #[test]
    fn sharded_engine_reports_the_sequential_violation() {
        let network = Network::new(gen::grid(4, 4, 1.0));
        let seq = Simulator::new()
            .run(&network, &LateMisbehaving)
            .unwrap_err();
        for threads in [2usize, 4, 8] {
            let sharded = Simulator::new()
                .run_sharded(
                    &network,
                    &LateMisbehaving,
                    &Parallelism::with_threads(threads),
                )
                .unwrap_err();
            assert_eq!(sharded, seq, "{threads} threads");
        }
    }

    #[test]
    fn arena_and_reference_engines_agree_on_flooding() {
        for g in [
            gen::path(17, 1.0),
            gen::grid(5, 6, 1.0),
            gen::star(12, 2.0),
            gen::cycle(9, 1.0),
        ] {
            let network = Network::new(g);
            let (arena, arena_t) = Simulator::new().run_traced(&network, &MinIdFlood).unwrap();
            let (reference, reference_t) =
                reference_run_traced(&network, &MinIdFlood, 1_000_000).unwrap();
            assert_eq!(arena.outputs, reference.outputs);
            assert_eq!(arena.cost, reference.cost);
            assert_eq!(arena_t, reference_t);
            // Byte-identical transcripts, not merely equal.
            assert_eq!(
                format!("{arena_t:?}").into_bytes(),
                format!("{reference_t:?}").into_bytes()
            );
        }
    }
}
