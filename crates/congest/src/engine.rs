//! The synchronous CONGEST simulator.
//!
//! Algorithms are expressed as [`Protocol`]s: per-node state machines that,
//! in every round, consume the messages delivered over their incident edges
//! and emit at most one message per incident edge. The [`Simulator`] executes
//! all nodes in lock step, enforces the congestion constraint and records a
//! [`RoundCost`].

use flowgraph::{EdgeId, Graph, NodeId};

use crate::cost::RoundCost;

/// Message types must report their size in `O(log n)`-bit machine words so
/// the simulator can verify the CONGEST bandwidth constraint.
pub trait MessageSize {
    /// Number of `O(log n)`-bit words needed to encode this message.
    fn words(&self) -> u64 {
        1
    }
}

/// What a node knows locally at the start of an algorithm (paper §1.1:
/// "Initially, each node only knows its identifier, its incident edges, and
/// their capacities"). Knowing the total node count `n` and the identifiers
/// of neighbors is standard (both can be obtained in `O(D)` / 1 rounds).
#[derive(Debug, Clone)]
pub struct LocalView {
    /// This node's identifier.
    pub node: NodeId,
    /// Total number of nodes in the network.
    pub num_nodes: usize,
    /// Incident edges: `(edge id, neighbor id, capacity)`.
    pub incident: Vec<(EdgeId, NodeId, f64)>,
}

impl LocalView {
    /// The degree of this node.
    pub fn degree(&self) -> usize {
        self.incident.len()
    }

    /// Looks up the neighbor reached through `edge`.
    pub fn neighbor_via(&self, edge: EdgeId) -> Option<NodeId> {
        self.incident
            .iter()
            .find(|(e, _, _)| *e == edge)
            .map(|(_, v, _)| *v)
    }
}

/// A network topology on which protocols are executed.
#[derive(Debug, Clone)]
pub struct Network {
    graph: Graph,
    views: Vec<LocalView>,
}

impl Network {
    /// Wraps a graph as a CONGEST network.
    pub fn new(graph: Graph) -> Self {
        let views = graph
            .nodes()
            .map(|v| LocalView {
                node: v,
                num_nodes: graph.num_nodes(),
                incident: graph
                    .neighbors(v)
                    .map(|(e, w)| (e, w, graph.capacity(e)))
                    .collect(),
            })
            .collect();
        Network { graph, views }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The local view of node `v`.
    pub fn view(&self, v: NodeId) -> &LocalView {
        &self.views[v.index()]
    }
}

/// A distributed algorithm in the CONGEST model, described as a per-node
/// state machine.
pub trait Protocol {
    /// Message type exchanged over edges.
    type Msg: Clone + MessageSize;
    /// Per-node state.
    type State;
    /// Per-node output produced at termination.
    type Output;

    /// Initializes the state of a node and returns the messages it sends in
    /// the first round.
    fn init(&self, view: &LocalView) -> (Self::State, Vec<(EdgeId, Self::Msg)>);

    /// Executes one round at a node: `inbox` holds the messages delivered in
    /// this round (edge they arrived over, payload). Returns the messages to
    /// send in the next round.
    fn round(
        &self,
        view: &LocalView,
        state: &mut Self::State,
        inbox: &[(EdgeId, Self::Msg)],
        round: u64,
    ) -> Vec<(EdgeId, Self::Msg)>;

    /// Whether this node has locally terminated (it will still receive
    /// messages if neighbors keep sending, but a quiescent network with all
    /// nodes terminated ends the execution).
    fn is_terminated(&self, state: &Self::State) -> bool;

    /// Extracts the node's output once the execution has ended.
    fn output(&self, view: &LocalView, state: Self::State) -> Self::Output;
}

/// Result of executing a protocol.
#[derive(Debug, Clone)]
pub struct RunResult<T> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<T>,
    /// Rounds and messages used.
    pub cost: RoundCost,
    /// Whether the protocol reached quiescence (as opposed to the round cap).
    pub quiescent: bool,
}

/// Error produced when a protocol violates the model or fails to terminate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulationError {
    /// A node attempted to send two messages over the same edge in one round.
    DuplicateSend {
        /// The offending node.
        node: NodeId,
        /// The edge on which two messages were queued.
        edge: EdgeId,
    },
    /// A node attempted to send over an edge that is not incident to it.
    NotIncident {
        /// The offending node.
        node: NodeId,
        /// The edge in question.
        edge: EdgeId,
    },
    /// The protocol did not reach quiescence within the round cap.
    RoundLimitExceeded {
        /// The configured cap.
        max_rounds: u64,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::DuplicateSend { node, edge } => {
                write!(
                    f,
                    "node {node} sent two messages over edge {edge} in one round"
                )
            }
            SimulationError::NotIncident { node, edge } => {
                write!(
                    f,
                    "node {node} attempted to send over non-incident edge {edge}"
                )
            }
            SimulationError::RoundLimitExceeded { max_rounds } => {
                write!(f, "protocol did not terminate within {max_rounds} rounds")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// Executes [`Protocol`]s on a [`Network`].
#[derive(Debug, Clone)]
pub struct Simulator {
    max_rounds: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator {
            max_rounds: 1_000_000,
        }
    }
}

impl Simulator {
    /// Creates a simulator with the default round cap (10^6).
    pub fn new() -> Self {
        Simulator::default()
    }

    /// Sets the maximum number of rounds before the execution is aborted.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Runs `protocol` on `network` until quiescence (no messages in flight
    /// and every node locally terminated) or until the round cap is hit.
    ///
    /// # Errors
    ///
    /// Returns a [`SimulationError`] if the protocol violates the CONGEST
    /// sending rules or exceeds the round cap.
    pub fn run<P: Protocol>(
        &self,
        network: &Network,
        protocol: &P,
    ) -> Result<RunResult<P::Output>, SimulationError> {
        let n = network.num_nodes();
        let mut states = Vec::with_capacity(n);
        let mut outboxes: Vec<Vec<(EdgeId, P::Msg)>> = Vec::with_capacity(n);
        let mut cost = RoundCost::ZERO;

        for v in network.graph().nodes() {
            let (state, msgs) = protocol.init(network.view(v));
            Self::validate_sends(network, v, &msgs)?;
            states.push(state);
            outboxes.push(msgs);
        }

        let mut round: u64 = 0;
        loop {
            let in_flight: usize = outboxes.iter().map(Vec::len).sum();
            let all_done = states.iter().all(|s| protocol.is_terminated(s));
            if in_flight == 0 && all_done {
                break;
            }
            if round >= self.max_rounds {
                return Err(SimulationError::RoundLimitExceeded {
                    max_rounds: self.max_rounds,
                });
            }
            round += 1;

            // Deliver: build per-node inboxes from the outboxes.
            let mut inboxes: Vec<Vec<(EdgeId, P::Msg)>> = vec![Vec::new(); n];
            for (sender, outbox) in outboxes.iter_mut().enumerate() {
                for (edge, msg) in outbox.drain(..) {
                    cost.messages += 1;
                    cost.max_message_words = cost.max_message_words.max(msg.words());
                    let e = network.graph().edge(edge);
                    let receiver = e.other(NodeId(sender as u32));
                    inboxes[receiver.index()].push((edge, msg));
                }
            }

            // Execute the round at every node.
            for v in network.graph().nodes() {
                let msgs = protocol.round(
                    network.view(v),
                    &mut states[v.index()],
                    &inboxes[v.index()],
                    round,
                );
                Self::validate_sends(network, v, &msgs)?;
                outboxes[v.index()] = msgs;
            }
        }
        cost.rounds = round;

        let outputs = network
            .graph()
            .nodes()
            .zip(states)
            .map(|(v, s)| protocol.output(network.view(v), s))
            .collect();
        Ok(RunResult {
            outputs,
            cost,
            quiescent: true,
        })
    }

    fn validate_sends<M>(
        network: &Network,
        node: NodeId,
        msgs: &[(EdgeId, M)],
    ) -> Result<(), SimulationError> {
        let mut seen = std::collections::HashSet::new();
        for (edge, _) in msgs {
            if !network
                .graph()
                .get_edge(*edge)
                .map(|e| e.is_incident(node))
                .unwrap_or(false)
            {
                return Err(SimulationError::NotIncident { node, edge: *edge });
            }
            if !seen.insert(*edge) {
                return Err(SimulationError::DuplicateSend { node, edge: *edge });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::gen;

    /// A toy protocol: every node floods the smallest identifier it has seen;
    /// used to exercise the engine itself.
    struct MinIdFlood;

    #[derive(Clone, Debug)]
    struct MinMsg(u32);

    impl MessageSize for MinMsg {}

    struct MinState {
        best: u32,
        announced: u32,
    }

    impl Protocol for MinIdFlood {
        type Msg = MinMsg;
        type State = MinState;
        type Output = u32;

        fn init(&self, view: &LocalView) -> (Self::State, Vec<(EdgeId, Self::Msg)>) {
            let msgs = view
                .incident
                .iter()
                .map(|(e, _, _)| (*e, MinMsg(view.node.0)))
                .collect();
            (
                MinState {
                    best: view.node.0,
                    announced: view.node.0,
                },
                msgs,
            )
        }

        fn round(
            &self,
            view: &LocalView,
            state: &mut Self::State,
            inbox: &[(EdgeId, Self::Msg)],
            _round: u64,
        ) -> Vec<(EdgeId, Self::Msg)> {
            for (_, MinMsg(id)) in inbox {
                state.best = state.best.min(*id);
            }
            if state.best < state.announced {
                state.announced = state.best;
                view.incident
                    .iter()
                    .map(|(e, _, _)| (*e, MinMsg(state.best)))
                    .collect()
            } else {
                Vec::new()
            }
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView, state: Self::State) -> Self::Output {
            state.best
        }
    }

    #[test]
    fn min_id_flood_converges_in_diameter_rounds() {
        let g = gen::path(10, 1.0);
        let network = Network::new(g);
        let result = Simulator::new().run(&network, &MinIdFlood).unwrap();
        assert!(result.outputs.iter().all(|&b| b == 0));
        assert!(result.quiescent);
        // Information must travel 9 hops; allow a couple of extra quiescence rounds.
        assert!(result.cost.rounds >= 9 && result.cost.rounds <= 12);
        assert!(result.cost.messages > 0);
        assert_eq!(result.cost.max_message_words, 1);
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = gen::path(10, 1.0);
        let network = Network::new(g);
        let err = Simulator::new()
            .with_max_rounds(2)
            .run(&network, &MinIdFlood)
            .unwrap_err();
        assert!(matches!(err, SimulationError::RoundLimitExceeded { .. }));
    }

    /// A protocol that illegally sends two messages over the same edge.
    struct Misbehaving;

    impl Protocol for Misbehaving {
        type Msg = MinMsg;
        type State = ();
        type Output = ();

        fn init(&self, view: &LocalView) -> (Self::State, Vec<(EdgeId, Self::Msg)>) {
            let mut msgs = Vec::new();
            if let Some((e, _, _)) = view.incident.first() {
                msgs.push((*e, MinMsg(0)));
                msgs.push((*e, MinMsg(1)));
            }
            ((), msgs)
        }

        fn round(
            &self,
            _view: &LocalView,
            _state: &mut Self::State,
            _inbox: &[(EdgeId, Self::Msg)],
            _round: u64,
        ) -> Vec<(EdgeId, Self::Msg)> {
            Vec::new()
        }

        fn is_terminated(&self, _state: &Self::State) -> bool {
            true
        }

        fn output(&self, _view: &LocalView, _state: Self::State) -> Self::Output {}
    }

    #[test]
    fn duplicate_sends_are_rejected() {
        let g = gen::path(3, 1.0);
        let network = Network::new(g);
        let err = Simulator::new().run(&network, &Misbehaving).unwrap_err();
        assert!(matches!(err, SimulationError::DuplicateSend { .. }));
    }

    #[test]
    fn local_view_contents() {
        let g = gen::star(4, 2.0);
        let network = Network::new(g);
        let hub = network.view(NodeId(0));
        assert_eq!(hub.degree(), 3);
        assert_eq!(hub.num_nodes, 4);
        let leaf = network.view(NodeId(2));
        assert_eq!(leaf.degree(), 1);
        let (e, nb, cap) = leaf.incident[0];
        assert_eq!(nb, NodeId(0));
        assert_eq!(cap, 2.0);
        assert_eq!(leaf.neighbor_via(e), Some(NodeId(0)));
        assert_eq!(leaf.neighbor_via(EdgeId(999)), None);
    }
}
