//! Pins the sharded engine's zero-allocation claim: once the arenas, dirty
//! lists and staging buckets are warm (first rounds of a run), extra rounds
//! of steady-state traffic perform **no** heap allocation — the allocation
//! count of a `run_sharded` call is independent of how many rounds it runs.
//!
//! Measured with a counting global allocator, like
//! `crates/core/tests/alloc_steady_state.rs` (test binaries may carry their
//! own global allocator; the library crates all `forbid(unsafe_code)`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use congest::engine::{Inbox, LocalView, MessageSize, Network, Outbox, Protocol, Simulator};
use flowgraph::gen;
use parallel::Parallelism;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// Full-load traffic for a fixed number of rounds: every node broadcasts on
/// every incident edge each round, so the steady state saturates every slot
/// and every staging bucket identically, round after round.
struct FloodFor(u64);

#[derive(Clone, Debug)]
struct Beat;

impl MessageSize for Beat {}

impl Protocol for FloodFor {
    type Msg = Beat;
    type State = ();
    type Output = ();

    fn init(&self, _view: &LocalView<'_>, outbox: &mut Outbox<'_, Self::Msg>) -> Self::State {
        outbox.broadcast(Beat);
    }

    fn round(
        &self,
        _view: &LocalView<'_>,
        _state: &mut Self::State,
        _inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<'_, Self::Msg>,
        round: u64,
    ) {
        if round < self.0 {
            outbox.broadcast(Beat);
        }
    }

    fn is_terminated(&self, _state: &Self::State) -> bool {
        true
    }

    fn output(&self, _view: &LocalView<'_>, _state: Self::State) -> Self::Output {}
}

// One test, not two: the counting allocator is process-global, so the two
// measurements must not run concurrently under the parallel test harness.
#[test]
fn round_loops_do_not_allocate_once_warm() {
    let network = Network::new(gen::grid(12, 12, 1.0));
    let par = Parallelism::with_threads(4);
    let sim = Simulator::new();

    // Warm thread-local / allocator state outside the measurement.
    sim.run_sharded(&network, &FloodFor(4), &par)
        .expect("well-behaved protocol");

    // The traffic pattern of every round is identical (full load), so the
    // per-run allocations (arenas, staging warm-up, worker spawns) are
    // identical for both runs and the extra 60 rounds must contribute zero.
    let (alloc_short, _) = allocations_during(|| {
        sim.run_sharded(&network, &FloodFor(8), &par)
            .expect("well-behaved protocol")
    });
    let (alloc_long, _) = allocations_during(|| {
        sim.run_sharded(&network, &FloodFor(68), &par)
            .expect("well-behaved protocol")
    });
    assert_eq!(
        alloc_short, alloc_long,
        "sharded: heap allocations grew with the round count: {alloc_short} for 8 rounds vs \
         {alloc_long} for 68 rounds"
    );

    // The sequential arena engine had the guarantee first; keep both pinned
    // in one place so a regression in either shows up here.
    sim.run(&network, &FloodFor(4)).expect("well-behaved");
    let (alloc_short, _) =
        allocations_during(|| sim.run(&network, &FloodFor(8)).expect("well-behaved"));
    let (alloc_long, _) =
        allocations_during(|| sim.run(&network, &FloodFor(68)).expect("well-behaved"));
    assert_eq!(
        alloc_short, alloc_long,
        "sequential: heap allocations grew with the round count"
    );
}
