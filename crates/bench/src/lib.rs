//! Experiment harness regenerating the paper's quantitative claims.
//!
//! The paper is an extended abstract without measured tables, so each
//! "table" here regenerates one of its *claims* (see the experiment index in
//! `DESIGN.md` and the recorded outcomes in `EXPERIMENTS.md`):
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Theorem 1.1 — round complexity vs. the Ω(n²) / O(m) baselines |
//! | E2 | (1+ε)-approximation quality vs. exact max flow |
//! | E3 | Theorem 3.1 — low average-stretch spanning trees |
//! | E4 | Lemma 3.3 / Thm 8.10 — congestion-approximator quality |
//! | E5 | AlmostRoute iteration growth in ε |
//! | E6 | Lemma 6.1 — cut sparsifier |
//! | E7 | Figure 1 / §8.3 — j-tree structure |
//! | E8 | Lemma 5.1 / Lemma 9.1 — cluster simulation & tree aggregation |
//! | E9 | rounds relative to the Ω̃(D + √n) lower bound |
//!
//! Every function returns a Markdown table; the `experiments` binary prints
//! them, and the same functions back the Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use baselines::{dinic, push_relabel, trivial};
use capprox::{
    build_hierarchy, build_jtree, build_tree_ensemble, sparsify, CongestionApproximator,
    RackeConfig, SparsifyConfig,
};
use congest::primitives::build_bfs_tree;
use congest::treeops::TreeDecomposition;
use congest::Network;
use flowgraph::{gen, spanning, Demand, NodeId};
use lowstretch::{low_stretch_spanning_tree, LowStretchConfig};
use maxflow::{distributed_approx_max_flow, MaxFlowConfig};

/// A rendered experiment: a title and a Markdown table.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment identifier (e.g. "E1").
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The Markdown table body.
    pub table: String,
}

impl std::fmt::Display for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## {} — {}\n", self.id, self.title)?;
        writeln!(f, "{}", self.table)
    }
}

fn solver_config(eps: f64, seed: u64) -> MaxFlowConfig {
    MaxFlowConfig {
        epsilon: eps,
        // Lemma 3.3 default: 2·⌈log2 n⌉ + 1 sampled trees.
        racke: RackeConfig::default().with_seed(seed),
        alpha: None,
        max_iterations_per_phase: 3_000,
        phases: Some(3),
        ..Default::default()
    }
}

/// E1: CONGEST rounds of the paper's algorithm vs. distributed push-relabel
/// and the trivial collect-everything algorithm, across graph families and
/// sizes.
pub fn table1_rounds(sizes: &[usize]) -> Experiment {
    let mut out = String::from(
        "| family | n | m | D | D+√n | this work (rounds) | push-relabel (rounds) | collect O(m) (rounds) |\n|---|---|---|---|---|---|---|---|\n",
    );
    for fam in [
        gen::Family::Grid,
        gen::Family::Expander,
        gen::Family::Random,
    ] {
        for &n in sizes {
            let g = fam.generate(n, 42);
            let (s, t) = gen::default_terminals(&g);
            let dist = distributed_approx_max_flow(&g, s, t, &solver_config(0.2, 7))
                .expect("connected instance");
            let pr =
                push_relabel::distributed_max_flow(&g, s, t, 50_000_000).expect("valid instance");
            let collect = trivial::collect_and_solve(&g, s, t).expect("valid instance");
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.0} | {} | {} | {} |\n",
                fam,
                g.num_nodes(),
                g.num_edges(),
                dist.bfs_depth,
                dist.d_plus_sqrt_n(),
                dist.rounds.total.rounds,
                pr.rounds,
                collect.rounds.rounds,
            ));
        }
    }
    Experiment {
        id: "E1",
        title: "Theorem 1.1: round complexity vs. baselines",
        table: out,
    }
}

/// E2: approximation quality against the exact (Dinic) optimum.
pub fn table2_quality(n: usize, epsilons: &[f64]) -> Experiment {
    let mut out = String::from(
        "| family | ε | exact value | approx value | ratio | certified upper bound | iterations |\n|---|---|---|---|---|---|---|\n",
    );
    for fam in gen::Family::ALL {
        let g = fam.generate(n, 13);
        let (s, t) = gen::default_terminals(&g);
        let exact = dinic::max_flow(&g, s, t).expect("valid instance");
        for &eps in epsilons {
            let r = maxflow::approx_max_flow(&g, s, t, &solver_config(eps, 3))
                .expect("connected instance");
            out.push_str(&format!(
                "| {} | {:.2} | {:.3} | {:.3} | {:.3} | {:.3} | {} |\n",
                fam,
                eps,
                exact.value,
                r.value,
                r.value / exact.value.max(f64::MIN_POSITIVE),
                r.upper_bound,
                r.iterations,
            ));
        }
    }
    Experiment {
        id: "E2",
        title: "(1+ε)-approximation quality vs. exact max flow",
        table: out,
    }
}

/// E3: average stretch of low-stretch spanning trees vs. BFS / MST / random
/// trees (Theorem 3.1).
pub fn table3_stretch(sizes: &[usize]) -> Experiment {
    let mut out = String::from(
        "| family | n | AKPW stretch | BFS stretch | max-weight ST stretch | random ST stretch |\n|---|---|---|---|---|---|\n",
    );
    for fam in [
        gen::Family::Grid,
        gen::Family::Random,
        gen::Family::Expander,
    ] {
        for &n in sizes {
            let g = fam.generate(n, 5);
            let lengths: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
            let length = |e: flowgraph::EdgeId| lengths[e.index()];
            let akpw = low_stretch_spanning_tree(&g, &lengths, &LowStretchConfig::default())
                .expect("connected instance");
            let bfs = spanning::bfs_tree(&g, NodeId(0)).expect("connected");
            let mst = spanning::max_weight_spanning_tree(&g, NodeId(0)).expect("connected");
            let mut rng = gen::rng(99);
            let rnd = spanning::random_spanning_tree(&g, NodeId(0), &mut rng).expect("connected");
            out.push_str(&format!(
                "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
                fam,
                g.num_nodes(),
                akpw.tree.average_stretch(&g, length),
                bfs.average_stretch(&g, length),
                mst.average_stretch(&g, length),
                rnd.average_stretch(&g, length),
            ));
        }
    }
    Experiment {
        id: "E3",
        title: "Theorem 3.1: low average-stretch spanning trees",
        table: out,
    }
}

/// E4: congestion-approximator quality (Lemma 3.3): sandwich bounds for s-t
/// and random demands.
pub fn table4_capprox(n: usize, num_trees: &[usize]) -> Experiment {
    let mut out = String::from(
        "| family | #trees | measured α (s-t) | measured α (random demands, mean) | provable α |\n|---|---|---|---|---|\n",
    );
    for fam in [gen::Family::Grid, gen::Family::Random, gen::Family::Barbell] {
        let g = fam.generate(n, 21);
        let (s, t) = gen::default_terminals(&g);
        for &k in num_trees {
            let r = CongestionApproximator::build(
                &g,
                &RackeConfig::default().with_num_trees(k).with_seed(4),
            )
            .expect("connected instance");
            let st = Demand::st(&g, s, t, 1.0);
            let alpha_st = r.measured_alpha(&g, &st);
            let mut rng = gen::rng(17);
            let mut total = 0.0;
            let trials = 10;
            for _ in 0..trials {
                let mut b = Demand::zeros(g.num_nodes());
                for v in g.nodes() {
                    b.set(v, rand::Rng::gen_range(&mut rng, -1.0..1.0));
                }
                let shift = b.total() / g.num_nodes() as f64;
                for v in g.nodes() {
                    b.set(v, b.get(v) - shift);
                }
                total += r.measured_alpha(&g, &b);
            }
            out.push_str(&format!(
                "| {} | {} | {:.2} | {:.2} | {:.1} |\n",
                fam,
                k,
                alpha_st,
                total / trials as f64,
                r.provable_alpha(),
            ));
        }
    }
    Experiment {
        id: "E4",
        title: "Lemma 3.3 / Theorem 8.10: congestion-approximator quality",
        table: out,
    }
}

/// E5: AlmostRoute iteration growth as ε shrinks.
pub fn table5_iterations(n: usize, epsilons: &[f64]) -> Experiment {
    let g = gen::grid((n as f64).sqrt() as usize, (n as f64).sqrt() as usize, 1.0);
    let (s, t) = gen::default_terminals(&g);
    let r =
        CongestionApproximator::build(&g, &RackeConfig::default().with_num_trees(8).with_seed(2))
            .expect("connected instance");
    let b = Demand::st(&g, s, t, 1.0);
    let mut out =
        String::from("| ε | iterations | scaling steps | ε⁻³ (reference) |\n|---|---|---|---|\n");
    for &eps in epsilons {
        let result = maxflow::almost_route(
            &g,
            &r,
            &b,
            &maxflow::AlmostRouteConfig {
                epsilon: eps,
                alpha: None,
                max_iterations: 200_000,
                ..Default::default()
            },
        );
        out.push_str(&format!(
            "| {:.2} | {} | {} | {:.0} |\n",
            eps,
            result.iterations,
            result.scaling_steps,
            eps.powi(-3),
        ));
    }
    Experiment {
        id: "E5",
        title: "AlmostRoute iterations vs. ε (O(ε⁻³) regime)",
        table: out,
    }
}

/// E6: cut sparsifier quality and size (Lemma 6.1).
pub fn table6_sparsifier(sizes: &[usize]) -> Experiment {
    let mut out = String::from(
        "| n | m before | m after | reduction | ε target | worst cut error (10-node samples) |\n|---|---|---|---|---|---|\n",
    );
    for &n in sizes {
        let g = gen::complete(n, 1.0);
        let cfg = SparsifyConfig {
            epsilon: 0.5,
            oversampling: 1.0,
            seed: 3,
        };
        let s = sparsify(&g, &cfg);
        // Cut error measured exhaustively on a small companion instance.
        let small = gen::complete(10, 1.0);
        let s_small = sparsify(&small, &cfg);
        let (hi, lo) = capprox::sparsify::exhaustive_cut_error(&small, &s_small.graph);
        out.push_str(&format!(
            "| {} | {} | {} | {:.2}x | {:.2} | [{:.2}, {:.2}] |\n",
            n,
            g.num_edges(),
            s.graph.num_edges(),
            g.num_edges() as f64 / s.graph.num_edges().max(1) as f64,
            cfg.epsilon,
            lo,
            hi,
        ));
    }
    Experiment {
        id: "E6",
        title: "Lemma 6.1: cut sparsifier",
        table: out,
    }
}

/// E7: j-tree structure (Figure 1 / §8.3) and the recursive hierarchy
/// (Theorem 8.10).
pub fn table7_jtrees(n: usize, js: &[usize]) -> Experiment {
    let g = gen::random_gnp(n, 8.0 / n as f64, (1.0, 5.0), 11);
    let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(1).with_seed(5))
        .expect("connected instance");
    let mut out = String::from(
        "| j (target) | portals | bound 4j | core edges | forest components |\n|---|---|---|---|---|\n",
    );
    for &j in js {
        let jt = build_jtree(&g, &ensemble.trees[0], j);
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            j,
            jt.num_portals(),
            4 * j,
            jt.core.num_edges(),
            jt.num_components(),
        ));
    }
    out.push_str("\nRecursive hierarchy (β = 4):\n\n| level | nodes | edges | sparsified edges | j | portals | core edges |\n|---|---|---|---|---|---|---|\n");
    let h = build_hierarchy(&g, 4.0, 8, 1).expect("connected instance");
    for (i, level) in h.levels.iter().enumerate() {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            i,
            level.num_nodes,
            level.num_edges,
            level.num_sparsified_edges,
            level.j,
            level.num_portals,
            level.num_core_edges,
        ));
    }
    Experiment {
        id: "E7",
        title: "Figure 1 / §8.3: j-trees and the recursive hierarchy",
        table: out,
    }
}

/// E8: distributed primitives — pipelined aggregation (D + k) and the
/// decomposed tree aggregation (Lemma 9.1) vs. the naive depth-bound
/// approach.
pub fn table8_primitives(sizes: &[usize]) -> Experiment {
    let mut out = String::from(
        "| n (path) | tree depth | naive convergecast rounds | decomposed rounds | components | max comp. depth |\n|---|---|---|---|---|---|\n",
    );
    for &n in sizes {
        let g = gen::path(n, 1.0);
        let tree = spanning::bfs_tree(&g, NodeId(0)).expect("connected");
        let network = Network::new(g);
        let bfs = build_bfs_tree(&network, NodeId(0)).tree;
        let values = vec![1.0; n];
        let mut rng = gen::rng(3);
        let p = TreeDecomposition::recommended_probability(n);
        let dec = TreeDecomposition::sample(&tree, p, &mut rng);
        let trivial_dec = TreeDecomposition::trivial(&tree);
        let smart =
            congest::treeops::distributed_subtree_sums(&network, &tree, &dec, &bfs, &values);
        let naive = congest::treeops::distributed_subtree_sums(
            &network,
            &tree,
            &trivial_dec,
            &bfs,
            &values,
        );
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            n,
            tree.max_depth(),
            naive.cost.rounds,
            smart.cost.rounds,
            dec.num_components,
            dec.max_component_depth,
        ));
    }
    Experiment {
        id: "E8",
        title: "Lemma 5.1 / Lemma 9.1: tree aggregations in Õ(√n + D) rounds",
        table: out,
    }
}

/// E9: total rounds relative to the Ω̃(D + √n) lower bound of Das Sarma et
/// al. (the `n^{o(1)}·ε^{-3}` overhead factor).
pub fn table9_lower_bound(sizes: &[usize]) -> Experiment {
    let mut out = String::from(
        "| family | n | D+√n | total rounds | overhead factor | construction share | descent share |\n|---|---|---|---|---|---|---|\n",
    );
    for fam in [gen::Family::Grid, gen::Family::Expander] {
        for &n in sizes {
            let g = fam.generate(n, 23);
            let (s, t) = gen::default_terminals(&g);
            let dist = distributed_approx_max_flow(&g, s, t, &solver_config(0.25, 9))
                .expect("connected instance");
            let total = dist.rounds.total.rounds.max(1) as f64;
            out.push_str(&format!(
                "| {} | {} | {:.0} | {} | {:.1} | {:.0}% | {:.0}% |\n",
                fam,
                g.num_nodes(),
                dist.d_plus_sqrt_n(),
                dist.rounds.total.rounds,
                dist.overhead_factor(),
                100.0 * dist.rounds.approximator_construction.rounds as f64 / total,
                100.0 * dist.rounds.gradient_descent.rounds as f64 / total,
            ));
        }
    }
    Experiment {
        id: "E9",
        title: "Rounds relative to the Ω̃(D + √n) lower bound",
        table: out,
    }
}

/// A1 ablation: number of sampled trees vs. approximator quality and
/// per-iteration evaluation cost.
pub fn ablation_trees(n: usize, tree_counts: &[usize]) -> Experiment {
    let g = gen::grid((n as f64).sqrt() as usize, (n as f64).sqrt() as usize, 1.0);
    let (s, t) = gen::default_terminals(&g);
    let mut out = String::from(
        "| #trees | measured α (s-t) | rows of R | approx value | exact value |\n|---|---|---|---|---|\n",
    );
    let exact = dinic::max_flow(&g, s, t).expect("valid instance");
    for &k in tree_counts {
        let config = MaxFlowConfig {
            racke: RackeConfig::default().with_num_trees(k).with_seed(8),
            ..solver_config(0.2, 8)
        };
        let r = CongestionApproximator::build(&g, &config.racke).expect("connected");
        let st = Demand::st(&g, s, t, 1.0);
        let result = maxflow::approx_max_flow(&g, s, t, &config).expect("connected");
        out.push_str(&format!(
            "| {} | {:.2} | {} | {:.3} | {:.3} |\n",
            k,
            r.measured_alpha(&g, &st),
            r.num_rows(),
            result.value,
            exact.value,
        ));
    }
    Experiment {
        id: "A1",
        title: "Ablation: number of sampled trees in the congestion approximator",
        table: out,
    }
}

/// A2 ablation: the tree family used by the approximator (low-stretch vs.
/// BFS vs. maximum-weight spanning trees).
pub fn ablation_tree_kind(n: usize) -> Experiment {
    use capprox::{CapacitatedTree, TreeEnsemble};
    let g = gen::random_gnp(n, 8.0 / n as f64, (1.0, 5.0), 31);
    let (s, t) = gen::default_terminals(&g);
    let st = Demand::st(&g, s, t, 1.0);
    let mut out = String::from("| tree family | measured α (s-t) | provable α |\n|---|---|---|\n");

    let mk = |trees: Vec<CapacitatedTree>| -> CongestionApproximator {
        CongestionApproximator::from_ensemble(TreeEnsemble {
            stats: capprox::EnsembleStats {
                num_trees: trees.len(),
                max_rloads: trees.iter().map(|t| t.max_rload()).collect(),
                decomposition_rounds: 0,
                average_stretches: vec![],
            },
            trees,
        })
        .expect("ablation ensembles are non-empty")
    };

    let racke =
        CongestionApproximator::build(&g, &RackeConfig::default().with_num_trees(8).with_seed(2))
            .expect("connected");
    out.push_str(&format!(
        "| low-stretch (MWU ensemble) | {:.2} | {:.1} |\n",
        racke.measured_alpha(&g, &st),
        racke.provable_alpha()
    ));

    let bfs = mk(vec![CapacitatedTree::new(
        &g,
        spanning::bfs_tree(&g, s).expect("connected"),
    )]);
    out.push_str(&format!(
        "| single BFS tree | {:.2} | {:.1} |\n",
        bfs.measured_alpha(&g, &st),
        bfs.provable_alpha()
    ));

    let mst = mk(vec![CapacitatedTree::new(
        &g,
        spanning::max_weight_spanning_tree(&g, s).expect("connected"),
    )]);
    out.push_str(&format!(
        "| single max-weight spanning tree | {:.2} | {:.1} |\n",
        mst.measured_alpha(&g, &st),
        mst.provable_alpha()
    ));

    Experiment {
        id: "A2",
        title: "Ablation: tree family backing the congestion approximator",
        table: out,
    }
}

/// A3 ablation: the tree-decomposition cut probability (Lemma 8.2) vs. the
/// per-aggregation round cost.
pub fn ablation_decompose(n: usize) -> Experiment {
    let g = gen::path(n, 1.0);
    let tree = spanning::bfs_tree(&g, NodeId(0)).expect("connected");
    let network = Network::new(g);
    let bfs = build_bfs_tree(&network, NodeId(0)).tree;
    let values = vec![1.0; n];
    let mut out = String::from(
        "| cut probability | components | max component depth | aggregation rounds |\n|---|---|---|---|\n",
    );
    for &p in &[0.0, 0.01, 1.0 / (n as f64).sqrt(), 0.1, 0.3] {
        let mut rng = gen::rng(7);
        let dec = if p == 0.0 {
            TreeDecomposition::trivial(&tree)
        } else {
            TreeDecomposition::sample(&tree, p, &mut rng)
        };
        let run = congest::treeops::distributed_subtree_sums(&network, &tree, &dec, &bfs, &values);
        out.push_str(&format!(
            "| {:.3} | {} | {} | {} |\n",
            p, dec.num_components, dec.max_component_depth, run.cost.rounds
        ));
    }
    Experiment {
        id: "A3",
        title: "Ablation: tree-decomposition cut probability (Lemma 8.2)",
        table: out,
    }
}

/// Runs every experiment with the default (laptop-scale) parameters.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        table1_rounds(&[64, 144, 256]),
        table2_quality(36, &[0.5, 0.2, 0.1]),
        table3_stretch(&[100, 256]),
        table4_capprox(49, &[1, 4, 12]),
        table5_iterations(49, &[0.8, 0.4, 0.2, 0.1]),
        table6_sparsifier(&[100, 200, 300]),
        table7_jtrees(120, &[4, 8, 16, 32]),
        table8_primitives(&[100, 400, 900]),
        table9_lower_bound(&[64, 144, 256]),
        ablation_trees(36, &[1, 2, 4, 8, 16]),
        ablation_tree_kind(80),
        ablation_decompose(400),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_experiments_render_tables() {
        // Smoke-test the harness on tiny instances so `cargo test` stays fast.
        let e2 = table2_quality(16, &[0.5]);
        assert!(e2.table.contains("| path |"));
        let e3 = table3_stretch(&[36]);
        assert!(e3.table.lines().count() > 3);
        let e6 = table6_sparsifier(&[40]);
        assert!(e6.table.contains("| 40 |"));
        let e8 = table8_primitives(&[50]);
        assert!(e8.table.contains("| 50 |"));
        let a3 = ablation_decompose(80);
        assert!(a3.table.lines().count() >= 7);
    }

    #[test]
    fn experiment_display_includes_header() {
        let e = table6_sparsifier(&[30]);
        let s = e.to_string();
        assert!(s.starts_with("## E6"));
    }
}
