//! Experiment runner: regenerates the tables recorded in `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p dmf-bench --bin experiments -- all
//! cargo run --release -p dmf-bench --bin experiments -- table1 table4
//! ```

use dmf_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec!["all".to_string()]
    } else {
        args
    };

    let run_all = selected.iter().any(|s| s == "all");
    let want = |name: &str| run_all || selected.iter().any(|s| s == name);

    let mut experiments = Vec::new();
    if want("table1") {
        experiments.push(table1_rounds(&[64, 144, 256]));
    }
    if want("table2") {
        experiments.push(table2_quality(36, &[0.5, 0.2, 0.1]));
    }
    if want("table3") {
        experiments.push(table3_stretch(&[100, 256]));
    }
    if want("table4") {
        experiments.push(table4_capprox(49, &[1, 4, 12]));
    }
    if want("table5") {
        experiments.push(table5_iterations(49, &[0.8, 0.4, 0.2, 0.1]));
    }
    if want("table6") {
        experiments.push(table6_sparsifier(&[100, 200, 300]));
    }
    if want("table7") {
        experiments.push(table7_jtrees(120, &[4, 8, 16, 32]));
    }
    if want("table8") {
        experiments.push(table8_primitives(&[100, 400, 900]));
    }
    if want("table9") {
        experiments.push(table9_lower_bound(&[64, 144, 256]));
    }
    if want("ablation_trees") {
        experiments.push(ablation_trees(36, &[1, 2, 4, 8, 16]));
    }
    if want("ablation_tree_kind") {
        experiments.push(ablation_tree_kind(80));
    }
    if want("ablation_decompose") {
        experiments.push(ablation_decompose(400));
    }

    if experiments.is_empty() {
        eprintln!(
            "unknown experiment selection {selected:?}; use table1..table9, ablation_trees, ablation_tree_kind, ablation_decompose, or all"
        );
        std::process::exit(2);
    }

    println!("# Experiment results (regenerated)\n");
    for e in experiments {
        println!("{e}");
    }
}
