//! Criterion benchmarks for the max-flow pipeline (experiments E1/E2/E5):
//! wall-clock cost of the approximate solver vs. the exact baselines, and of
//! single AlmostRoute calls at different ε.

use capprox::{CongestionApproximator, RackeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowgraph::{gen, Demand};
use maxflow::{AlmostRouteConfig, MaxFlowConfig};

fn solver_config(eps: f64) -> MaxFlowConfig {
    MaxFlowConfig {
        epsilon: eps,
        racke: RackeConfig::default().with_num_trees(6).with_seed(1),
        alpha: None,
        max_iterations_per_phase: 2_000,
        phases: Some(2),
        ..Default::default()
    }
}

fn bench_approx_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow_approx_vs_exact");
    group.sample_size(10);
    for &n in &[36usize, 100] {
        let side = (n as f64).sqrt() as usize;
        let g = gen::grid(side, side, 1.0);
        let (s, t) = gen::default_terminals(&g);
        group.bench_with_input(BenchmarkId::new("sherman_approx", n), &n, |b, _| {
            b.iter(|| {
                maxflow::approx_max_flow(&g, s, t, &solver_config(0.3))
                    .unwrap()
                    .value
            })
        });
        group.bench_with_input(BenchmarkId::new("dinic_exact", n), &n, |b, _| {
            b.iter(|| baselines::dinic::max_flow(&g, s, t).unwrap().value)
        });
        group.bench_with_input(BenchmarkId::new("push_relabel_exact", n), &n, |b, _| {
            b.iter(|| baselines::push_relabel::max_flow(&g, s, t).unwrap().value)
        });
    }
    group.finish();
}

fn bench_almost_route_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("almost_route_epsilon");
    group.sample_size(10);
    let g = gen::grid(7, 7, 1.0);
    let (s, t) = gen::default_terminals(&g);
    let r =
        CongestionApproximator::build(&g, &RackeConfig::default().with_num_trees(6).with_seed(2))
            .unwrap();
    let b = Demand::st(&g, s, t, 1.0);
    for &eps in &[0.5f64, 0.25, 0.1] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |bench, &eps| {
            bench.iter(|| {
                maxflow::almost_route(
                    &g,
                    &r,
                    &b,
                    &AlmostRouteConfig {
                        epsilon: eps,
                        alpha: None,
                        max_iterations: 50_000,
                        ..Default::default()
                    },
                )
                .iterations
            })
        });
    }
    group.finish();
}

fn bench_distributed_round_accounting(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_round_accounting");
    group.sample_size(10);
    for &n in &[64usize, 144] {
        let g = gen::Family::Expander.generate(n, 3);
        let (s, t) = gen::default_terminals(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                maxflow::distributed_approx_max_flow(&g, s, t, &solver_config(0.3))
                    .unwrap()
                    .rounds
                    .total
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_approx_vs_exact,
    bench_almost_route_epsilon,
    bench_distributed_round_accounting
);
criterion_main!(benches);
