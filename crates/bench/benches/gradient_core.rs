//! Gradient-core serving benchmark (the PR-6 acceptance numbers in
//! `BENCH_pr6.json`).
//!
//! Same serving posture as the PR-3 `query_throughput` benchmark — one
//! prepared session, 64 mixed s–t queries, Lemma 3.3 ensemble seeded at 1,
//! one `AlmostRoute` phase with a tight iteration budget — but with the
//! gradient-core upgrades enabled:
//!
//! * **trimmed ensembles** (`RackeConfig::with_target_quality`): the session
//!   keeps only as many trees as the empirical quality probes need, so every
//!   operator evaluation touches proportionally fewer rows;
//! * **warm-started duals + adaptive steps** (`MaxFlowConfig::warm_start`):
//!   repeated terminal pairs re-start the descent from the previous answer.
//!
//! Arms per instance:
//!
//! * `queries64_warm` — the gated headline: prepared session, 64 mixed
//!   queries (same query mix as `BENCH_pr3.json`'s `session_split` group,
//!   whose `queries64_warm/fat_tree_10k` recorded 14.594 queries/s — the
//!   CI gate requires a >= 10x improvement here);
//! * `repeat64_warm` — one pair asked 64 times: the warm-start fast path;
//! * `queries64_untrimmed` — the PR-3 posture (full ensemble, cold starts)
//!   re-measured on today's kernels, isolating how much of the headline is
//!   ensemble trimming versus the fused soft-max pass;
//! * `prepare` — session construction including the trimming probes.

use capprox::RackeConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowgraph::{gen, Graph, NodeId};
use maxflow::{MaxFlowConfig, PreparedMaxFlow};
use rand::Rng;

/// Queries per measurement, as in the PR acceptance criterion.
const QUERIES: usize = 64;

/// The PR-3 serving posture: full Lemma 3.3 ensemble, cold starts.
fn untrimmed_config() -> MaxFlowConfig {
    MaxFlowConfig::default()
        .with_epsilon(0.3)
        .with_racke(RackeConfig::default().with_seed(1))
        .with_phases(Some(1))
        .with_max_iterations_per_phase(6)
}

/// The gradient-core serving posture: trimmed ensemble + warm-started duals.
/// Quality stays certified per answer (`value <= maxflow <= upper_bound`);
/// the trimming target keeps every probe within measured quality 1.25.
fn serving_config() -> MaxFlowConfig {
    untrimmed_config()
        .with_racke(
            RackeConfig::default()
                .with_seed(1)
                .with_target_quality(1.25),
        )
        .with_warm_start(true)
}

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("fat_tree_1k", gen::fat_tree(16, 8, 61, 10.0, 40.0)),
        ("fat_tree_10k", gen::fat_tree(64, 16, 155, 10.0, 40.0)),
        ("grid_1k", gen::grid(32, 32, 1.0)),
        ("grid_10k", gen::grid(100, 100, 1.0)),
    ]
}

/// 64 deterministic mixed terminal pairs (distinct endpoints) per instance —
/// the same mix (seed `0xfee1`) the PR-3 baselines were recorded with.
fn query_mix(g: &Graph, seed: u64) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes() as u32;
    let mut rng = gen::rng(seed);
    let mut pairs = Vec::with_capacity(QUERIES);
    while pairs.len() < QUERIES {
        let s = NodeId(rng.gen_range(0..n));
        let t = NodeId(rng.gen_range(0..n));
        if s != t {
            pairs.push((s, t));
        }
    }
    pairs
}

fn bench_gradient_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_core");
    group.sample_size(3);
    let config = serving_config();
    let untrimmed = untrimmed_config();
    for (name, g) in instances() {
        let pairs = query_mix(&g, 0xfee1);
        let mut session = PreparedMaxFlow::prepare(&g, &config).expect("instance is connected");
        group.throughput(Throughput::Elements(QUERIES as u64));
        group.bench_with_input(BenchmarkId::new("queries64_warm", name), &g, |b, _| {
            b.iter(|| {
                let results = session.max_flow_batch(&pairs).expect("valid terminals");
                results.iter().map(|r| r.value).sum::<f64>()
            })
        });
        let repeat = vec![pairs[0]; QUERIES];
        group.bench_with_input(BenchmarkId::new("repeat64_warm", name), &g, |b, _| {
            b.iter(|| {
                let results = session.max_flow_batch(&repeat).expect("valid terminals");
                results.iter().map(|r| r.value).sum::<f64>()
            })
        });
        let mut cold = PreparedMaxFlow::prepare(&g, &untrimmed).expect("instance is connected");
        group.bench_with_input(BenchmarkId::new("queries64_untrimmed", name), &g, |b, _| {
            b.iter(|| {
                let results = cold.max_flow_batch(&pairs).expect("valid terminals");
                results.iter().map(|r| r.value).sum::<f64>()
            })
        });
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("prepare", name), &g, |b, g| {
            b.iter(|| {
                PreparedMaxFlow::prepare(g, &config)
                    .expect("instance is connected")
                    .ensemble_stats()
                    .num_trees
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gradient_core);
criterion_main!(benches);
