//! Million-node preparation benchmark for the recursive j-tree hierarchy
//! (the PR-7 acceptance numbers in `BENCH_pr7.json`).
//!
//! The serving posture is the one the hierarchy exists for: one huge
//! network, prepared once through `MaxFlowConfig::with_hierarchy`, then many
//! `(s, t)` queries against the prepared session. The benchmark records
//!
//! * `prepare/<instance>` — `PreparedMaxFlow::prepare` with the recursive
//!   hierarchy (cut sparsifier → j-tree → recurse, Theorem 8.10);
//! * `queries64_warm/<instance>` — 64 mixed s–t queries through the warm
//!   session, one `max_flow` call per query (the serving baseline; before
//!   the blocked engine this is exactly what `max_flow_batch` executed);
//! * `queries64_batched/<instance>` — the same 64 queries through
//!   `max_flow_batch`, i.e. the blocked multi-RHS gradient engine that
//!   advances several lanes per operator sweep — 4 on the 10k instances,
//!   2 at a million nodes where the lane-major working set outgrows the
//!   cache (the PR-9 acceptance numbers in `BENCH_pr9.json`);
//!
//! plus one hand-written `hierarchy_scale_mem` record per instance carrying
//! the peak RSS (`VmHWM` from `/proc/self/status`) and the measured
//! bytes/edge of the compact-ID SoA graph core — the two budgets the CI gate
//! enforces for the million-node instance.
//!
//! The default instances are 10k-node so the CI bench smoke-run stays fast;
//! setting `HIERARCHY_SCALE=full` adds the gated million-node fat-tree
//! (`BENCH_pr7.json` is recorded that way).

use capprox::{HierarchyConfig, RackeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowgraph::{gen, Graph, NodeId};
use maxflow::{MaxFlowConfig, PreparedMaxFlow};
use rand::Rng;
use std::io::Write as _;
use testkit::families::streaming;

/// Queries per warm measurement, as in the PR acceptance criterion.
const QUERIES: usize = 64;

/// The serving configuration: a shallow recursion budget per level (one
/// guide tree), two chains of two lifted trees, and the same tight per-query
/// gradient budget as the `gradient_core` serving posture.
fn serving_config() -> MaxFlowConfig {
    MaxFlowConfig::default()
        .with_epsilon(0.3)
        .with_racke(RackeConfig::default().with_seed(1))
        .with_phases(Some(1))
        .with_max_iterations_per_phase(6)
        .with_hierarchy(Some(
            HierarchyConfig::default()
                .with_direct_threshold(4_096)
                .with_chains(2)
                .with_trees_per_chain(Some(2))
                .with_seed(1),
        ))
}

fn instances() -> Vec<(&'static str, Graph)> {
    let mut out = vec![
        (
            "fat_tree_10k",
            streaming::fat_tree(64, 16, 155, 10.0, 40.0).expect("10k fat-tree fits u32 ids"),
        ),
        (
            "grid_10k",
            streaming::grid(100, 100, 1.0).expect("10k grid fits u32 ids"),
        ),
    ];
    if std::env::var_os("HIERARCHY_SCALE").is_some_and(|v| v == "full") {
        out.push((
            "fat_tree_1m",
            streaming::fat_tree(1_000, 8, 1_000, 10.0, 40.0).expect("1m fat-tree fits u32 ids"),
        ));
    }
    out
}

/// 64 deterministic mixed terminal pairs (distinct endpoints) per instance.
fn query_mix(g: &Graph, seed: u64) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes() as u32;
    let mut rng = gen::rng(seed);
    let mut pairs = Vec::with_capacity(QUERIES);
    while pairs.len() < QUERIES {
        let s = NodeId(rng.gen_range(0..n));
        let t = NodeId(rng.gen_range(0..n));
        if s != t {
            pairs.push((s, t));
        }
    }
    pairs
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Appends one memory-budget record per instance to the `BENCH_JSON` file in
/// the same line format as mini-criterion (the timing fields are zero; the
/// payload is the `peak_rss_bytes` / `bytes_per_edge` extension fields the
/// PR-7 CI gate reads).
fn emit_memory_record(name: &str, g: &Graph) {
    let mem = g.memory_bytes();
    let rss = peak_rss_bytes();
    println!(
        "bench hierarchy_scale_mem/footprint/{name}  peak_rss {rss} bytes  \
         graph {graph} bytes  {bpe:.1} bytes/edge",
        graph = mem.total(),
        bpe = mem.bytes_per_edge(g.num_edges()),
    );
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(
            f,
            "{{\"group\":\"hierarchy_scale_mem\",\"id\":\"footprint/{name}\",\
             \"min_ns\":0,\"mean_ns\":0,\"max_ns\":0,\"samples\":1,\
             \"peak_rss_bytes\":{rss},\"graph_bytes\":{graph},\
             \"bytes_per_edge\":{bpe:.3},\"num_nodes\":{n},\"num_edges\":{m}}}",
            graph = mem.total(),
            bpe = mem.bytes_per_edge(g.num_edges()),
            n = g.num_nodes(),
            m = g.num_edges(),
        );
    }
}

fn bench_hierarchy_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_scale");
    group.sample_size(3);
    let config = serving_config();
    for (name, g) in instances() {
        let pairs = query_mix(&g, 0xfee1);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("prepare", name), &g, |b, g| {
            b.iter(|| {
                PreparedMaxFlow::prepare(g, &config)
                    .expect("instance is connected")
                    .approximator()
                    .num_rows()
            })
        });
        let mut session = PreparedMaxFlow::prepare(&g, &config).expect("instance is connected");
        group.throughput(Throughput::Elements(QUERIES as u64));
        // Baseline: one full gradient descent per query. Warm starts are off
        // in the serving config, so the session is history-free and the two
        // query arms below answer byte-identically — only the engine differs.
        group.bench_with_input(BenchmarkId::new("queries64_warm", name), &g, |b, _| {
            b.iter(|| {
                pairs
                    .iter()
                    .map(|&(s, t)| session.max_flow(s, t).expect("valid terminals").value)
                    .sum::<f64>()
            })
        });
        // Blocked engine: the same 64 queries, several lanes per sweep.
        group.bench_with_input(BenchmarkId::new("queries64_batched", name), &g, |b, _| {
            b.iter(|| {
                let results = session.max_flow_batch(&pairs).expect("valid terminals");
                results.iter().map(|r| r.value).sum::<f64>()
            })
        });
        drop(session);
        emit_memory_record(name, &g);
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy_scale);
criterion_main!(benches);
