//! Criterion benchmarks for the congestion-approximator substrates
//! (experiments E3/E4/E6/E7): low-stretch trees, sparsifiers, tree ensembles
//! and j-tree extraction.

use capprox::{build_jtree, build_tree_ensemble, sparsify, RackeConfig, SparsifyConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowgraph::gen;
use lowstretch::{low_stretch_spanning_tree, LowStretchConfig};

fn bench_low_stretch_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("low_stretch_tree");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let g = gen::Family::Random.generate(n, 5);
        let lengths: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                low_stretch_spanning_tree(&g, &lengths, &LowStretchConfig::default())
                    .unwrap()
                    .stats
                    .iterations
            })
        });
    }
    group.finish();
}

fn bench_sparsifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparsifier");
    group.sample_size(10);
    for &n in &[100usize, 200] {
        let g = gen::complete(n, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| sparsify(&g, &SparsifyConfig::default()).graph.num_edges())
        });
    }
    group.finish();
}

fn bench_tree_ensemble_and_jtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble_and_jtree");
    group.sample_size(10);
    let g = gen::Family::Random.generate(150, 9);
    group.bench_function("tree_ensemble_8", |b| {
        b.iter(|| {
            build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(8))
                .unwrap()
                .trees
                .len()
        })
    });
    let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(1)).unwrap();
    group.bench_function("jtree_extraction", |b| {
        b.iter(|| build_jtree(&g, &ensemble.trees[0], 12).num_portals())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_low_stretch_tree,
    bench_sparsifier,
    bench_tree_ensemble_and_jtree
);
criterion_main!(benches);
