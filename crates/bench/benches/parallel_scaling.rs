//! Batch-query throughput scaling across thread counts (the PR-4 acceptance
//! numbers in `BENCH_pr4.json`).
//!
//! Serving posture: one prepared session per 10k-node instance, a batch of
//! 64 mixed `(s, t)` queries answered through
//! `PreparedMaxFlow::par_max_flow_batch` at 1 / 2 / 4 / 8 worker threads.
//! The determinism contract means every arm computes the *same bytes* — the
//! only thing that varies with the thread count is the wall clock, which is
//! exactly what the `threads`-tagged `BENCH_JSON` records capture (together
//! with `host_cpus`, so the CI scaling gate knows whether the recording
//! machine could physically exhibit a speedup: on a single-core container
//! the 4-thread arm measures scheduling overhead, not parallelism).

use capprox::RackeConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowgraph::{gen, Graph, NodeId};
use maxflow::{MaxFlowConfig, Parallelism, PreparedMaxFlow};
use rand::Rng;

/// Queries per batch, as in the PR acceptance criterion.
const QUERIES: usize = 64;

/// Same serving configuration as the `query_throughput` bench: Lemma 3.3
/// default tree count, one phase, tight per-query gradient budget.
fn serving_config() -> MaxFlowConfig {
    MaxFlowConfig::default()
        .with_epsilon(0.3)
        .with_racke(RackeConfig::default().with_seed(1))
        .with_phases(Some(1))
        .with_max_iterations_per_phase(6)
}

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("fat_tree_10k", gen::fat_tree(64, 16, 155, 10.0, 40.0)),
        ("grid_10k", gen::grid(100, 100, 1.0)),
    ]
}

/// 64 deterministic mixed terminal pairs (distinct endpoints) per instance.
fn query_mix(g: &Graph, seed: u64) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes() as u32;
    let mut rng = gen::rng(seed);
    let mut pairs = Vec::with_capacity(QUERIES);
    while pairs.len() < QUERIES {
        let s = NodeId(rng.gen_range(0..n));
        let t = NodeId(rng.gen_range(0..n));
        if s != t {
            pairs.push((s, t));
        }
    }
    pairs
}

fn bench_parallel_scaling(c: &mut Criterion) {
    for threads in [1usize, 2, 4, 8] {
        let mut group = c.benchmark_group("parallel_scaling");
        // >= 3 samples so the CI overhead gate is not judged on two noisy
        // measurements (raise further with BENCH_SAMPLES when recording).
        group.sample_size(3);
        group.throughput(Throughput::Elements(QUERIES as u64));
        group.threads(threads);
        let config = serving_config().with_parallelism(Parallelism::with_threads(threads));
        for (name, g) in instances() {
            let pairs = query_mix(&g, 0xfee1);
            // Prepare once outside the timed region: the scaling question is
            // about warm batch throughput, not construction.
            let mut session = PreparedMaxFlow::prepare(&g, &config).expect("instance is connected");
            group.bench_with_input(
                BenchmarkId::new(format!("batch64_t{threads}"), name),
                &g,
                |b, _| {
                    b.iter(|| {
                        let results = session.par_max_flow_batch(&pairs).expect("valid terminals");
                        results.iter().map(|r| r.value).sum::<f64>()
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
