//! Build-once / query-many amortization benchmark (the PR-3 acceptance
//! numbers in `BENCH_pr3.json`).
//!
//! Serving posture: one network, many `(s, t)` capacity queries. The solver
//! is configured the way a query-serving deployment would run it — the
//! Lemma 3.3 default tree count (construction-heavy, quality-bearing) and a
//! small fixed gradient budget per query (every answer still carries its
//! certified upper bound). Under that posture the benchmark compares
//!
//! * `session64` — `PreparedMaxFlow::prepare` once, then 64 mixed s–t
//!   queries through the session (`max_flow_batch`), and
//! * `oneshot64` — 64 calls of the call-per-query wrapper
//!   `approx_max_flow`, which rebuilds the approximator every time,
//!
//! on 1k/10k-node fat-trees and grids, plus the prepare/query split behind
//! the amortization (`prepare`, `per_query`).

use capprox::RackeConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowgraph::{gen, Graph, NodeId};
use maxflow::{approx_max_flow, MaxFlowConfig, PreparedMaxFlow};
use rand::Rng;

/// Queries per measurement, as in the PR acceptance criterion.
const QUERIES: usize = 64;

/// The serving configuration: Lemma 3.3 default number of sampled trees
/// (`2⌈log₂ n⌉ + 1`), one `AlmostRoute` phase with a tight iteration budget.
fn serving_config() -> MaxFlowConfig {
    MaxFlowConfig::default()
        .with_epsilon(0.3)
        .with_racke(RackeConfig::default().with_seed(1))
        .with_phases(Some(1))
        .with_max_iterations_per_phase(6)
}

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        // leaves * hosts + leaves + spines nodes.
        ("fat_tree_1k", gen::fat_tree(16, 8, 61, 10.0, 40.0)),
        ("fat_tree_10k", gen::fat_tree(64, 16, 155, 10.0, 40.0)),
        ("grid_1k", gen::grid(32, 32, 1.0)),
        ("grid_10k", gen::grid(100, 100, 1.0)),
    ]
}

/// 64 deterministic mixed terminal pairs (distinct endpoints) per instance.
fn query_mix(g: &Graph, seed: u64) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes() as u32;
    let mut rng = gen::rng(seed);
    let mut pairs = Vec::with_capacity(QUERIES);
    while pairs.len() < QUERIES {
        let s = NodeId(rng.gen_range(0..n));
        let t = NodeId(rng.gen_range(0..n));
        if s != t {
            pairs.push((s, t));
        }
    }
    pairs
}

fn bench_query_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_throughput");
    group.sample_size(2);
    group.throughput(Throughput::Elements(QUERIES as u64));
    let config = serving_config();
    for (name, g) in instances() {
        let pairs = query_mix(&g, 0xfee1);
        group.bench_with_input(BenchmarkId::new("session64", name), &g, |b, g| {
            b.iter(|| {
                let mut session =
                    PreparedMaxFlow::prepare(g, &config).expect("instance is connected");
                let results = session.max_flow_batch(&pairs).expect("valid terminals");
                results.iter().map(|r| r.value).sum::<f64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("oneshot64", name), &g, |b, g| {
            b.iter(|| {
                pairs
                    .iter()
                    .map(|&(s, t)| {
                        approx_max_flow(g, s, t, &config)
                            .expect("instance is connected")
                            .value
                    })
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

fn bench_prepare_query_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_split");
    group.sample_size(3);
    let config = serving_config();
    for (name, g) in instances() {
        let pairs = query_mix(&g, 0xfee1);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("prepare", name), &g, |b, g| {
            b.iter(|| {
                PreparedMaxFlow::prepare(g, &config)
                    .expect("instance is connected")
                    .approximator()
                    .num_rows()
            })
        });
        let mut session = PreparedMaxFlow::prepare(&g, &config).expect("instance is connected");
        group.throughput(Throughput::Elements(QUERIES as u64));
        group.bench_with_input(BenchmarkId::new("queries64_warm", name), &g, |b, _| {
            b.iter(|| {
                let results = session.max_flow_batch(&pairs).expect("valid terminals");
                results.iter().map(|r| r.value).sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_throughput, bench_prepare_query_split);
criterion_main!(benches);
