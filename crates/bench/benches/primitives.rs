//! Criterion benchmarks for the CONGEST primitives (experiment E8): the
//! simulator itself, BFS-tree construction, pipelined aggregation and the
//! decomposed tree aggregations of Lemma 9.1, plus the `simulate_round`
//! micro-benchmark comparing the zero-allocation arena engine against the
//! allocation-per-round reference engine on the seeded fat-tree family.

use congest::engine::{reference_run, Inbox, LocalView, Outbox, Simulator};
use congest::primitives::{build_bfs_tree, convergecast_sum, pipelined_convergecast};
use congest::treeops::{distributed_subtree_sums, TreeDecomposition};
use congest::{MessageSize, Network, Protocol};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowgraph::{gen, spanning, NodeId};

/// Full-load heartbeat: every node re-broadcasts on every incident edge for a
/// fixed number of rounds. The steady state saturates all `2m` directed edge
/// slots each round, which isolates the per-round engine overhead (delivery,
/// mailbox management, node scheduling) from any protocol logic.
struct Heartbeat {
    rounds: u64,
}

#[derive(Clone, Debug)]
struct Beat;

impl MessageSize for Beat {}

impl Protocol for Heartbeat {
    type Msg = Beat;
    type State = ();
    type Output = ();

    fn init(&self, _view: &LocalView<'_>, outbox: &mut Outbox<'_, Beat>) -> Self::State {
        outbox.broadcast(Beat);
    }

    fn round(
        &self,
        _view: &LocalView<'_>,
        _state: &mut Self::State,
        _inbox: &Inbox<'_, Beat>,
        outbox: &mut Outbox<'_, Beat>,
        round: u64,
    ) {
        if round < self.rounds {
            outbox.broadcast(Beat);
        }
    }

    fn is_terminated(&self, _state: &Self::State) -> bool {
        true
    }

    fn output(&self, _view: &LocalView<'_>, _state: Self::State) -> Self::Output {}
}

/// A leaf–spine fat-tree sized to roughly `n` nodes (the `testkit::families`
/// datacenter workload shape).
fn fat_tree_network(n: usize) -> Network {
    let leaves = ((n as f64).sqrt() as usize).max(2);
    let spines = (leaves / 8).max(2);
    let hosts = (n.saturating_sub(leaves + spines) / leaves).max(1);
    Network::new(gen::fat_tree(leaves, spines, hosts, 10.0, 40.0))
}

/// Per-round engine overhead under full message load, arena engine vs. the
/// legacy allocation-per-round execution shape. Divide the reported time by
/// `HEARTBEAT_ROUNDS` for the per-round figure; the arena/legacy ratio at a
/// given `n` is the acceptance metric of the engine rewrite.
fn bench_simulate_round(c: &mut Criterion) {
    const HEARTBEAT_ROUNDS: u64 = 8;
    let mut group = c.benchmark_group("simulate_round");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let network = fat_tree_network(n);
        let protocol = Heartbeat {
            rounds: HEARTBEAT_ROUNDS,
        };
        group.bench_with_input(BenchmarkId::new("arena_fat_tree", n), &n, |b, _| {
            b.iter(|| {
                Simulator::new()
                    .run(&network, &protocol)
                    .expect("heartbeat respects the CONGEST rules")
                    .cost
                    .rounds
            })
        });
        group.bench_with_input(BenchmarkId::new("legacy_fat_tree", n), &n, |b, _| {
            b.iter(|| {
                reference_run(&network, &protocol, 1_000_000)
                    .expect("heartbeat respects the CONGEST rules")
                    .cost
                    .rounds
            })
        });
    }
    group.finish();
}

fn bench_bfs_and_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest_primitives");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let g = gen::grid((n as f64).sqrt() as usize, (n as f64).sqrt() as usize, 1.0);
        let network = Network::new(g);
        group.bench_with_input(BenchmarkId::new("bfs_tree", n), &n, |b, _| {
            b.iter(|| build_bfs_tree(&network, NodeId(0)).cost.rounds)
        });
        let bfs = build_bfs_tree(&network, NodeId(0));
        let values = vec![1.0; network.num_nodes()];
        group.bench_with_input(BenchmarkId::new("convergecast", n), &n, |b, _| {
            b.iter(|| convergecast_sum(&network, &bfs.tree, &values).root_value)
        });
        let k = 8;
        let per_node: Vec<Vec<f64>> = (0..network.num_nodes())
            .map(|v| (0..k).map(|i| (v + i) as f64).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("pipelined_k8", n), &n, |b, _| {
            b.iter(|| {
                pipelined_convergecast(&network, &bfs.tree, &per_node, k)
                    .cost
                    .rounds
            })
        });
    }
    group.finish();
}

fn bench_tree_aggregation_lemma91(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma91_tree_aggregation");
    group.sample_size(10);
    for &n in &[400usize, 900] {
        let g = gen::path(n, 1.0);
        let tree = spanning::bfs_tree(&g, NodeId(0)).unwrap();
        let network = Network::new(g);
        let bfs = build_bfs_tree(&network, NodeId(0)).tree;
        let values = vec![1.0; n];
        let mut rng = gen::rng(1);
        let dec = TreeDecomposition::sample(
            &tree,
            TreeDecomposition::recommended_probability(n),
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::new("decomposed", n), &n, |b, _| {
            b.iter(|| {
                distributed_subtree_sums(&network, &tree, &dec, &bfs, &values)
                    .cost
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulate_round,
    bench_bfs_and_aggregation,
    bench_tree_aggregation_lemma91
);
criterion_main!(benches);
