//! Criterion benchmarks for the CONGEST primitives (experiment E8): the
//! simulator itself, BFS-tree construction, pipelined aggregation and the
//! decomposed tree aggregations of Lemma 9.1.

use congest::primitives::{build_bfs_tree, convergecast_sum, pipelined_convergecast};
use congest::treeops::{distributed_subtree_sums, TreeDecomposition};
use congest::Network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowgraph::{gen, spanning, NodeId};

fn bench_bfs_and_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest_primitives");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let g = gen::grid((n as f64).sqrt() as usize, (n as f64).sqrt() as usize, 1.0);
        let network = Network::new(g);
        group.bench_with_input(BenchmarkId::new("bfs_tree", n), &n, |b, _| {
            b.iter(|| build_bfs_tree(&network, NodeId(0)).cost.rounds)
        });
        let bfs = build_bfs_tree(&network, NodeId(0));
        let values = vec![1.0; network.num_nodes()];
        group.bench_with_input(BenchmarkId::new("convergecast", n), &n, |b, _| {
            b.iter(|| convergecast_sum(&network, &bfs.tree, &values).root_value)
        });
        let k = 8;
        let per_node: Vec<Vec<f64>> = (0..network.num_nodes())
            .map(|v| (0..k).map(|i| (v + i) as f64).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("pipelined_k8", n), &n, |b, _| {
            b.iter(|| {
                pipelined_convergecast(&network, &bfs.tree, &per_node, k)
                    .cost
                    .rounds
            })
        });
    }
    group.finish();
}

fn bench_tree_aggregation_lemma91(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma91_tree_aggregation");
    group.sample_size(10);
    for &n in &[400usize, 900] {
        let g = gen::path(n, 1.0);
        let tree = spanning::bfs_tree(&g, NodeId(0)).unwrap();
        let network = Network::new(g);
        let bfs = build_bfs_tree(&network, NodeId(0)).tree;
        let values = vec![1.0; n];
        let mut rng = gen::rng(1);
        let dec = TreeDecomposition::sample(
            &tree,
            TreeDecomposition::recommended_probability(n),
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::new("decomposed", n), &n, |b, _| {
            b.iter(|| {
                distributed_subtree_sums(&network, &tree, &dec, &bfs, &values)
                    .cost
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs_and_aggregation,
    bench_tree_aggregation_lemma91
);
criterion_main!(benches);
