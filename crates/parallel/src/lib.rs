//! Vendored mini-rayon: a scoped work-sharing pool with a determinism
//! contract.
//!
//! This build environment has no registry access, so the workspace carries
//! its own minimal data-parallelism layer instead of depending on `rayon`.
//! The design goals, in order:
//!
//! 1. **Determinism.** Every combinator places results by *item index* and
//!    every reduction folds in *fixed input order*, so the output of a
//!    parallel call is byte-identical to its sequential counterpart for any
//!    thread count — including bitwise-identical floating point, because the
//!    per-item computation and the combination order never change. Only
//!    scheduling (which worker computes which item when) varies.
//! 2. **Safety.** The whole crate is `forbid(unsafe_code)`; work distribution
//!    uses an atomic cursor over `Mutex<Option<T>>` task slots and
//!    [`std::thread::scope`] for borrowing, never raw pointers.
//! 3. **Graceful sequential fallback.** At [`Parallelism::sequential`]
//!    (`threads == 1`) every combinator degenerates to a plain loop on the
//!    calling thread: no threads are spawned, no slots are allocated, and
//!    allocation-free callers stay allocation-free.
//!
//! The pool is *scoped*: worker threads live only for the duration of one
//! combinator call (there is no global pool to configure or leak). For
//! long-lived worker teams that synchronize among themselves — e.g. the
//! sharded CONGEST round loop, where shard workers exchange messages every
//! round — use [`join_workers`], which spawns exactly one thread per task and
//! runs them concurrently for their entire lifetime (with [`TeamBarrier`] as
//! the poison-safe round synchronizer).
//!
//! Where each combinator is used in this workspace: `capprox`'s operator
//! evaluations fan per-tree tasks through [`Parallelism::for_each_owned`] and
//! reduce tree routings with [`Parallelism::par_map_reduce`]; `maxflow`'s
//! `par_max_flow_batch` and the sharded CONGEST engine build worker teams
//! with [`join_workers`], partitioning arenas along uneven shard boundaries
//! with [`split_at_boundaries`]. [`Parallelism::par_chunks_mut`] is the
//! equal-size-chunk counterpart of that partitioning for callers whose data
//! has no precomputed boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Compile-time `Send + Sync` assertion helper: instantiate it for a type in
/// a `const` to pin the type's thread-shareability, so a future field (a
/// `RefCell`, a raw pointer) can't silently revoke what the parallel layers
/// rely on:
///
/// ```
/// struct SharedAcrossWorkers(Vec<f64>);
/// const _: fn() = parallel::assert_send_sync::<SharedAcrossWorkers>;
/// ```
pub fn assert_send_sync<T: Send + Sync>() {}

/// Degree of parallelism for the workspace's parallel entry points.
///
/// A plain, copyable thread-count wrapper: `threads == 1` means "run
/// sequentially on the calling thread" (guaranteed no spawning), `threads > 1`
/// means "share work across this many workers, counting the calling thread".
/// The determinism contract (results byte-identical to `threads == 1`) holds
/// for every value; the thread count is a *performance* knob, never a
/// *semantics* knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Default for Parallelism {
    /// Defaults to sequential execution: parallelism is strictly opt-in so
    /// that existing single-threaded callers (and their zero-allocation
    /// guarantees) are unaffected.
    fn default() -> Self {
        Parallelism::sequential()
    }
}

impl Parallelism {
    /// Sequential execution on the calling thread (`threads == 1`).
    pub fn sequential() -> Self {
        Parallelism {
            threads: NonZeroUsize::MIN,
        }
    }

    /// Execution on `n` workers; `n == 0` is clamped to 1 (sequential).
    pub fn with_threads(n: usize) -> Self {
        Parallelism {
            threads: NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// One worker per hardware thread reported by the OS
    /// ([`std::thread::available_parallelism`]), falling back to sequential
    /// when the count is unavailable.
    pub fn available() -> Self {
        Parallelism {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The configured worker count (including the calling thread).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// `true` when the configuration runs on the calling thread only.
    #[inline]
    pub fn is_sequential(&self) -> bool {
        self.threads.get() == 1
    }

    /// Consumes `tasks`, invoking `f(index, task)` once per task, sharing the
    /// tasks across the configured workers. Tasks are claimed dynamically (an
    /// atomic cursor), so the assignment of tasks to workers is
    /// scheduling-dependent — `f` must not rely on it. Item order as observed
    /// by any single worker is ascending in index.
    pub fn for_each_owned<T, F>(&self, tasks: Vec<T>, f: F)
    where
        T: Send,
        F: Fn(usize, T) + Sync,
    {
        let workers = self.threads().min(tasks.len());
        if workers <= 1 {
            for (i, t) in tasks.into_iter().enumerate() {
                f(i, t);
            }
            return;
        }
        let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let work = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = slots.get(i) else { break };
            let task = slot
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("each slot is claimed exactly once");
            f(i, task);
        };
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(work);
            }
            work();
        });
    }

    /// Maps `f` over `items` in parallel, returning the results **in item
    /// order** regardless of scheduling.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        if self.is_sequential() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let out: Vec<Mutex<Option<U>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        let indices: Vec<usize> = (0..items.len()).collect();
        self.for_each_owned(indices, |_, i| {
            *out[i].lock().expect("result slot poisoned") = Some(f(i, &items[i]));
        });
        out.into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index was mapped")
            })
            .collect()
    }

    /// Maps `f` over `items` in parallel and folds the results **in item
    /// order** on the calling thread: `fold(fold(init, r_0), r_1) …`. The
    /// deterministic fixed-order reduction — for non-associative operations
    /// (floating-point sums!) the result is bitwise identical to the
    /// sequential map-then-fold for any thread count.
    pub fn par_map_reduce<T, U, A, F, R>(&self, items: &[T], map: F, init: A, fold: R) -> A
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
        R: FnMut(A, U) -> A,
    {
        if self.is_sequential() || items.len() <= 1 {
            // Fold directly — no intermediate Vec on the sequential path.
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| map(i, t))
                .fold(init, fold);
        }
        self.par_map(items, map).into_iter().fold(init, fold)
    }

    /// Splits `data` into contiguous chunks of `chunk_size` (the final chunk
    /// may be shorter) and invokes `f(chunk_index, chunk)` on each, sharing
    /// chunks across the configured workers. Chunks are disjoint `&mut`
    /// ranges, so `f` may freely mutate its chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        if self.is_sequential() || data.len() <= chunk_size {
            for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f(i, chunk);
            }
            return;
        }
        let chunks: Vec<&mut [T]> = data.chunks_mut(chunk_size).collect();
        self.for_each_owned(chunks, &f);
    }
}

/// Runs one dedicated thread per task, concurrently, and returns the results
/// in task order. Unlike [`Parallelism::for_each_owned`] this guarantees that
/// *all* tasks execute at the same time, which is what worker teams that
/// synchronize among themselves (barriers, shared staging buffers — e.g. the
/// sharded CONGEST engine) require: with a work-sharing pool, a task that
/// blocks on a barrier would deadlock the workers that still hold unstarted
/// peer tasks.
///
/// A single task runs inline on the calling thread without spawning.
pub fn join_workers<T, R, F>(tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if tasks.len() <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut rest = tasks.into_iter();
        let first = rest.next().expect("len checked above");
        let handles: Vec<_> = rest
            .enumerate()
            .map(|(offset, task)| s.spawn(move || f(offset + 1, task)))
            .collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(f(0, first));
        for h in handles {
            // Propagate a worker's panic with its original payload rather
            // than a generic join error.
            out.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
        out
    })
}

/// A reusable barrier for [`join_workers`] teams that supports **poisoning**:
/// when one worker dies (panics), it calls [`TeamBarrier::poison`] and every
/// peer that is waiting — or ever waits again — panics out of its wait
/// instead of blocking forever on a participant that will never arrive.
/// [`std::sync::Barrier`] has no such escape hatch, which would turn any
/// worker panic into a team-wide deadlock.
#[derive(Debug)]
pub struct TeamBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cvar: std::sync::Condvar,
}

#[derive(Debug)]
struct BarrierState {
    waiting: usize,
    generation: u64,
    poisoned: bool,
}

impl TeamBarrier {
    /// A barrier for a team of `parties` workers.
    pub fn new(parties: usize) -> Self {
        TeamBarrier {
            parties: parties.max(1),
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation: 0,
                poisoned: false,
            }),
            cvar: std::sync::Condvar::new(),
        }
    }

    /// Blocks until all `parties` workers have called `wait` (then the
    /// barrier resets for the next use, like [`std::sync::Barrier`]).
    ///
    /// # Panics
    ///
    /// Panics if the barrier is or becomes [poisoned](Self::poison) — inside
    /// a worker wrapped in `catch_unwind`, that unwinds the worker out of
    /// its loop instead of deadlocking the team.
    pub fn wait(&self) {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        assert!(!s.poisoned, "worker team poisoned by a peer panic");
        let generation = s.generation;
        s.waiting += 1;
        if s.waiting == self.parties {
            s.waiting = 0;
            s.generation += 1;
            self.cvar.notify_all();
            return;
        }
        loop {
            s = self
                .cvar
                .wait(s)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            // Generation first: a waiter whose barrier already completed was
            // legitimately released and must finish its round normally, even
            // if a peer poisoned the barrier right after releasing it —
            // otherwise work the team already agreed on (and that the caller
            // will inspect, e.g. a recorded model violation) is lost.
            if s.generation != generation {
                return;
            }
            assert!(!s.poisoned, "worker team poisoned by a peer panic");
        }
    }

    /// Marks the barrier poisoned and wakes every waiter; all current and
    /// future [`TeamBarrier::wait`] calls panic. Call this from a worker's
    /// panic handler *after* recording the panic payload, so peers observing
    /// the poison are guaranteed to find the root cause recorded.
    pub fn poison(&self) {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        s.poisoned = true;
        self.cvar.notify_all();
    }
}

/// Splits `data` into `parts` contiguous chunks at the given boundary
/// offsets (`boundaries` lists the *end* offset of every chunk except that a
/// final implicit boundary at `data.len()` is NOT assumed — the last listed
/// boundary must equal `data.len()`). Used to partition arenas along
/// pre-computed shard ranges where equal-size chunking does not apply.
///
/// # Panics
///
/// Panics if the boundaries are not non-decreasing or the last boundary is
/// not `data.len()`.
pub fn split_at_boundaries<'a, T>(mut data: &'a mut [T], boundaries: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(boundaries.len());
    let mut consumed = 0usize;
    for &end in boundaries {
        assert!(end >= consumed, "boundaries must be non-decreasing");
        let (chunk, rest) = data.split_at_mut(end - consumed);
        out.push(chunk);
        data = rest;
        consumed = end;
    }
    assert!(
        data.is_empty(),
        "the final boundary must cover the whole slice"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn default_is_sequential_and_with_threads_clamps() {
        assert!(Parallelism::default().is_sequential());
        assert_eq!(Parallelism::with_threads(0).threads(), 1);
        assert_eq!(Parallelism::with_threads(4).threads(), 4);
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 8] {
            let par = Parallelism::with_threads(threads);
            let got = par.par_map(&items, |_, &x| x * x + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_reduce_is_bitwise_deterministic() {
        // A floating-point sum whose value depends on association order: the
        // fixed-order reduction must reproduce the sequential bits exactly.
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sequential = items.iter().fold(0.0f64, |acc, &x| acc + x.sin());
        for threads in [2, 4, 8] {
            let par = Parallelism::with_threads(threads);
            let parallel = par.par_map_reduce(&items, |_, &x| x.sin(), 0.0f64, |acc, x| acc + x);
            assert_eq!(
                sequential.to_bits(),
                parallel.to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_element_exactly_once() {
        for threads in [1, 3, 8] {
            let par = Parallelism::with_threads(threads);
            let mut data = vec![0u32; 1001];
            par.par_chunks_mut(&mut data, 64, |chunk_index, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x += (chunk_index * 64 + j) as u32;
                }
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, i as u32, "threads = {threads}");
            }
        }
    }

    #[test]
    fn for_each_owned_consumes_each_task_once() {
        let counter = AtomicU64::new(0);
        let tasks: Vec<u64> = (0..100).collect();
        Parallelism::with_threads(4).for_each_owned(tasks, |i, t| {
            assert_eq!(i as u64, t);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_workers_runs_all_tasks_concurrently() {
        // Tasks synchronize on a barrier: this only completes if all of them
        // run at the same time (a work-sharing pool would deadlock here).
        let barrier = std::sync::Barrier::new(4);
        let results = join_workers(vec![10, 20, 30, 40], |i, t| {
            barrier.wait();
            (i, t)
        });
        assert_eq!(results, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn split_at_boundaries_partitions_exactly() {
        let mut data: Vec<u8> = (0..10).collect();
        let parts = split_at_boundaries(&mut data, &[3, 3, 7, 10]);
        let lens: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(lens, vec![3, 0, 4, 3]);
        assert_eq!(parts[2][0], 3);
    }

    #[test]
    #[should_panic(expected = "final boundary")]
    fn split_at_boundaries_rejects_short_cover() {
        let mut data = [0u8; 5];
        let _ = split_at_boundaries(&mut data, &[2]);
    }

    #[test]
    fn team_barrier_synchronizes_rounds() {
        let barrier = TeamBarrier::new(3);
        let hits = AtomicU64::new(0);
        let results = join_workers(vec![0u64; 3], |_, _| {
            for round in 0..5u64 {
                hits.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                // After the barrier, every worker of this round has hit.
                assert!(hits.load(Ordering::SeqCst) >= 3 * (round + 1));
                barrier.wait();
            }
            true
        });
        assert_eq!(results, vec![true; 3]);
        assert_eq!(hits.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn team_barrier_poison_releases_waiters() {
        // Worker 0 dies before its barrier; the waiting peers must panic out
        // of `wait` (caught by catch_unwind) instead of blocking forever.
        let barrier = TeamBarrier::new(3);
        let results = join_workers(vec![0usize, 1, 2], |i, _| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if i == 0 {
                    barrier.poison();
                    panic!("worker 0 died");
                }
                barrier.wait();
            }))
            .is_err()
        });
        // Worker 0 panicked by construction; the peers unwound out of wait.
        assert!(results[0]);
        assert!(results[1] && results[2]);
    }

    #[test]
    fn join_workers_propagates_the_original_panic_payload() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join_workers(vec![0u8, 1], |i, _| {
                if i == 1 {
                    panic!("original worker panic");
                }
            });
        }));
        let payload = caught.expect_err("worker panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(message.contains("original worker panic"), "got: {message}");
    }

    #[test]
    fn sequential_paths_spawn_nothing_and_match() {
        let par = Parallelism::sequential();
        let items = [1.0f64, 2.0, 3.0];
        assert_eq!(
            par.par_map(&items, |i, x| x * i as f64),
            vec![0.0, 2.0, 6.0]
        );
        let mut data = [1u8, 2, 3];
        par.par_chunks_mut(&mut data, 2, |_, c| {
            for x in c.iter_mut() {
                *x *= 2;
            }
        });
        assert_eq!(data, [2, 4, 6]);
    }
}
