//! Cut sparsification (paper §6, Lemma 6.1).
//!
//! The recursive congestion-approximator construction first sparsifies the
//! (cluster) graph so that later stages only pay for `Õ(n)` edges. The paper
//! uses Koutis' spanner-based spectral sparsifier; we implement the classic
//! cut-sparsification scheme in the style of Benczúr–Karger / Fung et al.:
//! estimate each edge's connectivity with Nagamochi–Ibaraki forest indices
//! and keep edge `e` with probability `p_e ∝ log n / (ε² · k_e)`,
//! re-weighting kept edges by `1/p_e`. All cuts are preserved within
//! `1 ± ε` w.h.p.

use flowgraph::{EdgeId, Graph, UnionFind};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of sparsifying a graph.
#[derive(Debug, Clone)]
pub struct Sparsifier {
    /// The sparsified graph (same node set, re-weighted subset of the edges).
    pub graph: Graph,
    /// For every sparsifier edge, the original edge it came from.
    pub original_edge: Vec<EdgeId>,
    /// The sampling probability used for every original edge.
    pub keep_probability: Vec<f64>,
}

/// Configuration of the sparsifier.
#[derive(Debug, Clone)]
pub struct SparsifyConfig {
    /// Target multiplicative cut error ε.
    pub epsilon: f64,
    /// Oversampling constant multiplying `log n / ε²`.
    pub oversampling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SparsifyConfig {
    fn default() -> Self {
        SparsifyConfig {
            epsilon: 0.5,
            oversampling: 4.0,
            seed: 0,
        }
    }
}

/// Nagamochi–Ibaraki forest indices: repeatedly peel off maximal spanning
/// forests; the forest index of an edge is a lower bound certificate for the
/// connectivity between its endpoints.
///
/// Returns, for every edge, its (1-based) forest index. Edges in the first
/// forests are structurally important (low connectivity) and must be kept
/// with high probability.
pub fn forest_indices(g: &Graph) -> Vec<usize> {
    let m = g.num_edges();
    let mut index = vec![0usize; m];
    let mut remaining: Vec<EdgeId> = g.edge_ids().collect();
    let mut forest = 1usize;
    while !remaining.is_empty() {
        let mut uf = UnionFind::new(g.num_nodes());
        let mut next_remaining = Vec::new();
        for &e in &remaining {
            let edge = g.edge(e);
            if uf.union(edge.tail.index(), edge.head.index()) {
                index[e.index()] = forest;
            } else {
                next_remaining.push(e);
            }
        }
        if next_remaining.len() == remaining.len() {
            // Only parallel edges within already-connected components remain;
            // assign them the current forest index and stop.
            for &e in &next_remaining {
                index[e.index()] = forest;
            }
            break;
        }
        remaining = next_remaining;
        forest += 1;
    }
    index
}

/// Sparsifies `g`, preserving every cut within `1 ± ε` w.h.p. and keeping
/// `O(n · log n / ε²)` edges in expectation.
///
/// # Panics
///
/// Panics if `ε` is not in `(0, 1)`.
pub fn sparsify(g: &Graph, config: &SparsifyConfig) -> Sparsifier {
    assert!(
        config.epsilon > 0.0 && config.epsilon < 1.0,
        "epsilon must lie in (0, 1)"
    );
    let n = g.num_nodes().max(2);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let indices = forest_indices(g);
    let base = config.oversampling * (n as f64).ln() / (config.epsilon * config.epsilon);
    let mut graph = Graph::with_nodes(g.num_nodes());
    let mut original_edge = Vec::new();
    let mut keep_probability = Vec::with_capacity(g.num_edges());
    for (id, e) in g.edges() {
        let k = indices[id.index()].max(1) as f64;
        let p = (base / k).min(1.0);
        keep_probability.push(p);
        if rng.gen_bool(p) {
            graph
                .add_edge(e.tail, e.head, e.capacity / p)
                .expect("sparsifier edge endpoints are valid");
            original_edge.push(id);
        }
    }
    Sparsifier {
        graph,
        original_edge,
        keep_probability,
    }
}

/// Measures the worst multiplicative cut error of a sparsifier over all
/// proper cuts of a *small* graph (≤ 20 nodes), by exhaustive enumeration.
/// Returns `(max over cuts of sparsified/original, min over cuts of
/// sparsified/original)`.
///
/// # Panics
///
/// Panics if the graph has more than 20 nodes.
pub fn exhaustive_cut_error(original: &Graph, sparsified: &Graph) -> (f64, f64) {
    let cuts = flowgraph::cut::enumerate_proper_cuts(original);
    let mut max_ratio = f64::MIN;
    let mut min_ratio = f64::MAX;
    for cut in cuts {
        let c0 = cut.capacity(original);
        let c1 = cut.capacity(sparsified);
        if c0 <= 0.0 {
            continue;
        }
        let ratio = c1 / c0;
        max_ratio = max_ratio.max(ratio);
        min_ratio = min_ratio.min(ratio);
    }
    (max_ratio, min_ratio)
}

/// The CONGEST round cost of the distributed sparsifier (Lemma 6.1):
/// `O((D + √n) · polylog)` — we charge the measured BFS depth plus `√n`
/// scaled by `log² n` spanner iterations, with all parameters taken from the
/// actual instance.
pub fn congest_cost(n: usize, bfs_depth: usize) -> congest::RoundCost {
    let n = n.max(2) as u64;
    let logn = (n as f64).log2().ceil() as u64;
    let sqrt_n = (n as f64).sqrt().ceil() as u64;
    congest::RoundCost::rounds((bfs_depth as u64 + sqrt_n) * logn * logn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::gen;
    use flowgraph::NodeId;

    #[test]
    fn forest_indices_on_parallel_paths() {
        // Two parallel edges between 0 and 1: second lands in forest 2.
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let idx = forest_indices(&g);
        assert_eq!(idx[0], 1);
        assert_eq!(idx[1], 2);
    }

    #[test]
    fn forest_indices_respect_connectivity() {
        let g = gen::complete(8, 1.0);
        let idx = forest_indices(&g);
        // A K8 has 7 edge-disjoint spanning structures; max forest index > 1.
        assert!(idx.iter().all(|&i| i >= 1));
        assert!(*idx.iter().max().unwrap() >= 3);
    }

    #[test]
    fn sparsifier_keeps_bridges() {
        // A barbell: the bridge is connectivity 1, must always be kept.
        let g = gen::barbell(6, 1, 1.0, 1.0);
        let s = sparsify(&g, &SparsifyConfig::default());
        assert!(
            s.graph.is_connected(),
            "sparsifier must preserve connectivity"
        );
        // The bridge's keep probability is 1.
        let idx = forest_indices(&g);
        for (id, _) in g.edges() {
            if idx[id.index()] == 1 {
                assert_eq!(s.keep_probability[id.index()], 1.0);
            }
        }
    }

    #[test]
    fn sparsifier_reduces_dense_graphs() {
        // Keeping O(n log^2 n / eps^2) of the Theta(n^2) edges: on K_300 the
        // sparsifier must drop more than half of the edges.
        let g = gen::complete(300, 1.0);
        let config = SparsifyConfig {
            epsilon: 0.5,
            oversampling: 1.0,
            seed: 1,
        };
        let s = sparsify(&g, &config);
        assert!(
            s.graph.num_edges() < g.num_edges() / 2,
            "expected fewer than half of {} edges, got {}",
            g.num_edges(),
            s.graph.num_edges()
        );
        assert!(s.graph.is_connected());
    }

    #[test]
    fn cuts_preserved_on_small_graphs() {
        let g = gen::complete(10, 1.0);
        let s = sparsify(
            &g,
            &SparsifyConfig {
                epsilon: 0.25,
                oversampling: 4.0,
                seed: 3,
            },
        );
        let (max_ratio, min_ratio) = exhaustive_cut_error(&g, &s.graph);
        assert!(max_ratio <= 1.6, "max cut inflation {max_ratio} too large");
        assert!(min_ratio >= 0.4, "min cut deflation {min_ratio} too small");
    }

    #[test]
    fn total_capacity_preserved_in_expectation() {
        // Averaged over seeds, the re-weighted total capacity should be close
        // to the original.
        let g = gen::random_gnp(40, 0.4, (1.0, 5.0), 5);
        let original = g.total_capacity();
        let mut total = 0.0;
        let runs = 10;
        for seed in 0..runs {
            let s = sparsify(
                &g,
                &SparsifyConfig {
                    epsilon: 0.5,
                    oversampling: 2.0,
                    seed,
                },
            );
            total += s.graph.total_capacity();
        }
        let avg = total / runs as f64;
        assert!(
            (avg - original).abs() / original < 0.25,
            "expected ~{original}, measured average {avg}"
        );
    }

    #[test]
    fn congest_cost_scales_with_depth_and_n() {
        let small = congest_cost(100, 10);
        let large = congest_cost(10_000, 10);
        assert!(large.rounds > small.rounds);
        let deep = congest_cost(100, 1000);
        assert!(deep.rounds > small.rounds);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        let g = gen::path(4, 1.0);
        let _ = sparsify(
            &g,
            &SparsifyConfig {
                epsilon: 1.5,
                oversampling: 1.0,
                seed: 0,
            },
        );
    }
}
