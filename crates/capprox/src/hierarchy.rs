//! The recursive j-tree hierarchy of Theorem 8.10, producing a congestion
//! approximator that is affordable at millions of nodes.
//!
//! The direct construction ([`crate::build_tree_ensemble`]) builds `O(log n)`
//! low-stretch trees on the *full* input graph — every tree pays `Õ(m)`. The
//! paper instead recurses (§4, §8.3): sparsify the level graph (Lemma 6.1),
//! build **one** guide tree, extract a `⌈n/β⌉`-tree from it (Madry's
//! construction, [`crate::build_jtree`]), and recurse on the contracted core
//! until the level is small enough for the direct build. Each level shrinks
//! the node count geometrically, so the whole hierarchy costs a constant
//! number of full-size tree constructions instead of a logarithmic one.
//!
//! # Lifting, and why the certificates survive
//!
//! The j-tree construction keeps the invariant that *every core edge is also
//! a graph edge* (§3): a `GraphEdge` core edge is literally an edge of the
//! level graph, and a `PathReplacement` core edge stands for the deleted tree
//! edge of its skeleton path. Because the per-level sparsifier also remembers
//! which original edge every kept edge came from, each recursion level carries
//! an **edge map** back to the input graph `G`. A spanning tree of the bottom
//! core therefore lifts to a spanning tree of `G`: take the per-level forest
//! edges (the guide-tree edges *not* removed into `F ∪ D`) plus the mapped
//! bottom-tree edges — exactly `n − 1` edges of `G` that connect it.
//!
//! The lifted trees are re-capacitated against `G` itself
//! ([`CapacitatedTree::new`] computes genuine cut capacities of `G`), so every
//! row of the resulting [`crate::CongestionApproximator`] is the congestion of
//! an actual cut of `G` and the unconditional lower-bound side
//! `‖Rb‖_∞ ≤ opt(b)` holds exactly as for the direct build. The hierarchy
//! only influences *which* trees are sampled — its per-level cut distortion
//! (tracked in [`HierarchyStats`]) degrades the quality factor `α`, never the
//! soundness of the certificates.
//!
//! # Quickstart
//!
//! ```
//! use capprox::{CongestionApproximator, HierarchyConfig, RackeConfig};
//! use flowgraph::{gen, Demand, NodeId};
//!
//! let g = gen::fat_tree(8, 4, 10, 10.0, 40.0);
//! let hier = HierarchyConfig::default()
//!     .with_direct_threshold(64)
//!     .with_chains(2)
//!     .with_trees_per_chain(Some(3));
//! let r = CongestionApproximator::build_hierarchical(&g, &hier, &RackeConfig::default())
//!     .unwrap();
//! // The bracket certificate works exactly like the direct build's.
//! let b = Demand::st(&g, NodeId(0), NodeId((g.num_nodes() - 1) as u32), 1.0);
//! let lower = r.congestion_lower_bound(&b);
//! let upper = r.congestion_upper_bound(&g, &b);
//! assert!(lower <= upper);
//! // Per-level bookkeeping is threaded into the approximator.
//! let stats = r.hierarchy_stats().unwrap();
//! assert_eq!(stats.chains.len(), 2);
//! assert!(stats.cut_distortion_bound() >= 1.0);
//! ```

use flowgraph::{EdgeId, Graph, GraphError, NodeId, RootedTree};
use serde::{Deserialize, Serialize};

use crate::jtree::{build_jtree_top_loaded, CoreEdgeOrigin};
use crate::racke::{
    build_tree_ensemble, CapacitatedTree, EnsembleStats, RackeConfig, TreeEnsemble,
};
use crate::sparsify::{sparsify, SparsifyConfig};

/// Configuration of the recursive hierarchy construction (Theorem 8.10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Per-level shrink target: each level extracts a `⌈n/β⌉`-tree, so the
    /// core has at most `4⌈n/β⌉ + 1` portals (worst-case shrink factor
    /// `β/4`). Must exceed 4 for guaranteed progress; the builder falls back
    /// to the direct build on any level that fails to shrink.
    pub beta: f64,
    /// Stop recursing once the level graph has at most this many nodes and
    /// hand the bottom level to the direct Räcke build.
    pub direct_threshold: usize,
    /// Number of independent recursion chains, each with its own seed. The
    /// final ensemble is the union of every chain's lifted trees, so more
    /// chains buy tree diversity at linear cost.
    pub chains: usize,
    /// Bottom-ensemble size per chain (= lifted trees per chain). `None`
    /// uses the Räcke `O(log n_bottom)` schedule on the bottom graph. Keep
    /// this small at million-node scale: every lifted tree stores per-node
    /// state on the *full* graph.
    pub trees_per_chain: Option<usize>,
    /// Cut error `ε` of the per-level sparsification. Levels with at most
    /// `4n` edges skip sparsification entirely.
    pub sparsify_epsilon: f64,
    /// Base RNG seed; chains and levels derive their own seeds from it.
    pub seed: u64,
    /// Hard cap on recursion depth (a backstop, not a tuning knob).
    pub max_levels: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            beta: 8.0,
            direct_threshold: 512,
            chains: 2,
            trees_per_chain: None,
            sparsify_epsilon: 0.5,
            seed: 0,
            max_levels: 64,
        }
    }
}

impl HierarchyConfig {
    /// Replaces the per-level shrink target `β`.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Replaces the bottom-of-recursion size.
    #[must_use]
    pub fn with_direct_threshold(mut self, threshold: usize) -> Self {
        self.direct_threshold = threshold;
        self
    }

    /// Replaces the number of independent recursion chains.
    #[must_use]
    pub fn with_chains(mut self, chains: usize) -> Self {
        self.chains = chains;
        self
    }

    /// Replaces the bottom-ensemble size per chain.
    #[must_use]
    pub fn with_trees_per_chain(mut self, trees: Option<usize>) -> Self {
        self.trees_per_chain = trees;
        self
    }

    /// Replaces the per-level sparsification error.
    #[must_use]
    pub fn with_sparsify_epsilon(mut self, epsilon: f64) -> Self {
        self.sparsify_epsilon = epsilon;
        self
    }

    /// Replaces the base RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Rejects configurations that can never produce a meaningful hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), GraphError> {
        if !self.beta.is_finite() || self.beta <= 4.0 {
            return Err(GraphError::InvalidConfig {
                parameter: "hierarchy.beta",
                reason: "must be a finite number > 4 (portal count is 4·⌈n/β⌉ + 1)",
            });
        }
        if self.direct_threshold < 2 {
            return Err(GraphError::InvalidConfig {
                parameter: "hierarchy.direct_threshold",
                reason: "must be at least 2 (the bottom build needs an edge)",
            });
        }
        if self.chains == 0 {
            return Err(GraphError::InvalidConfig {
                parameter: "hierarchy.chains",
                reason: "must be at least 1",
            });
        }
        if self.trees_per_chain == Some(0) {
            return Err(GraphError::InvalidConfig {
                parameter: "hierarchy.trees_per_chain",
                reason: "must be at least 1 (or None for the O(log n) schedule)",
            });
        }
        if !self.sparsify_epsilon.is_finite()
            || self.sparsify_epsilon <= 0.0
            || self.sparsify_epsilon >= 1.0
        {
            return Err(GraphError::InvalidConfig {
                parameter: "hierarchy.sparsify_epsilon",
                reason: "must lie strictly between 0 and 1",
            });
        }
        if self.max_levels == 0 {
            return Err(GraphError::InvalidConfig {
                parameter: "hierarchy.max_levels",
                reason: "must be at least 1",
            });
        }
        Ok(())
    }
}

/// Per-level quality bookkeeping of one recursion chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyLevelStats {
    /// Nodes of the level graph.
    pub num_nodes: usize,
    /// Edges of the level graph before sparsification.
    pub num_edges: usize,
    /// Edges after sparsification (equals `num_edges` when skipped).
    pub num_sparsified_edges: usize,
    /// Sparsification error applied at this level (`0.0` when skipped); the
    /// level's cuts are preserved within `1 ± ε` w.h.p.
    pub sparsify_epsilon: f64,
    /// The `j` handed to the j-tree extraction.
    pub j: usize,
    /// Portals produced (= nodes of the next level).
    pub num_portals: usize,
    /// Core edges produced (= edges of the next level).
    pub num_core_edges: usize,
    /// Maximum relative load of the level's guide tree — the per-level
    /// analogue of the direct build's `max_rloads` quality series.
    pub guide_max_rload: f64,
}

/// Statistics of one recursion chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainStats {
    /// Per-level bookkeeping, outermost level first.
    pub levels: Vec<HierarchyLevelStats>,
    /// Nodes of the bottom graph handed to the direct build.
    pub bottom_nodes: usize,
    /// Edges of the bottom graph.
    pub bottom_edges: usize,
    /// Lifted trees this chain contributed to the ensemble.
    pub trees_lifted: usize,
}

/// Quality bookkeeping of a full hierarchical construction, threaded into
/// [`crate::CongestionApproximator`] by
/// [`crate::CongestionApproximator::build_hierarchical`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// One entry per recursion chain.
    pub chains: Vec<ChainStats>,
}

impl HierarchyStats {
    /// Deepest recursion depth over the chains (levels above the bottom).
    pub fn num_levels(&self) -> usize {
        self.chains
            .iter()
            .map(|c| c.levels.len())
            .max()
            .unwrap_or(0)
    }

    /// Total lifted trees across all chains.
    pub fn total_trees(&self) -> usize {
        self.chains.iter().map(|c| c.trees_lifted).sum()
    }

    /// Worst-case multiplicative cut distortion accumulated by the per-level
    /// sparsifications: the product of `(1 + ε_l) / (1 − ε_l)` over the
    /// levels of the worst chain. The lifted trees' cut capacities are exact
    /// (recomputed on the input graph), so this bound only describes how far
    /// the *tree selection* may have been steered by distorted cuts — i.e.
    /// it inflates the quality factor `α`, never the certificates.
    pub fn cut_distortion_bound(&self) -> f64 {
        self.chains
            .iter()
            .map(|c| {
                c.levels
                    .iter()
                    .filter(|l| l.sparsify_epsilon > 0.0)
                    .map(|l| (1.0 + l.sparsify_epsilon) / (1.0 - l.sparsify_epsilon))
                    .product::<f64>()
            })
            .fold(1.0, f64::max)
    }
}

/// One recursion level's working state: the level graph and, for every one of
/// its edges, the input-graph edge it stands for.
struct Level {
    graph: Graph,
    edge_to_g: Vec<EdgeId>,
}

/// Sparsifies the level graph when it is dense (more than `4n` edges),
/// composing the edge map; falls back to the unsparsified level if the
/// sample ever disconnects (the forest-index sampler keeps first-forest
/// edges deterministically, so this is a guard, not an expected path).
fn sparsify_level(level: Level, epsilon: f64, seed: u64) -> (Level, f64) {
    if level.graph.num_edges() <= 4 * level.graph.num_nodes() {
        return (level, 0.0);
    }
    let s = sparsify(
        &level.graph,
        &SparsifyConfig {
            epsilon,
            oversampling: 2.0,
            seed,
        },
    );
    if !s.graph.is_connected() {
        return (level, 0.0);
    }
    let edge_to_g = s
        .original_edge
        .iter()
        .map(|e| level.edge_to_g[e.index()])
        .collect();
    (
        Level {
            graph: s.graph,
            edge_to_g,
        },
        epsilon,
    )
}

/// Builds the hierarchical tree ensemble for `g` (Theorem 8.10): every chain
/// recurses `sparsify → guide tree → j-tree → core` down to
/// [`HierarchyConfig::direct_threshold`] nodes, runs the direct Räcke build
/// there, and lifts each bottom tree to a spanning tree of `g` through the
/// per-level edge maps. The returned trees are genuine capacitated spanning
/// trees of `g` — interchangeable with the direct build's wherever a
/// [`TreeEnsemble`] is consumed.
///
/// `racke` configures the *bottom* build (and the per-level guide trees
/// inherit its MWU/low-stretch knobs); [`HierarchyConfig::trees_per_chain`]
/// overrides its tree count.
///
/// # Errors
///
/// Returns [`GraphError::InvalidConfig`] for invalid configurations and
/// propagates construction errors for empty or disconnected inputs.
pub fn build_hierarchical_ensemble(
    g: &Graph,
    config: &HierarchyConfig,
    racke: &RackeConfig,
) -> Result<(TreeEnsemble, HierarchyStats), GraphError> {
    config.validate()?;
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    let mut trees: Vec<CapacitatedTree> = Vec::new();
    let mut stats = EnsembleStats {
        num_trees: 0,
        max_rloads: Vec::new(),
        decomposition_rounds: 0,
        // Lifted trees have no per-length stretch series; the per-level
        // guide-tree quality lives in `HierarchyStats` instead.
        average_stretches: Vec::new(),
    };
    let mut chains = Vec::with_capacity(config.chains);

    for chain in 0..config.chains {
        let chain_seed = config
            .seed
            .wrapping_add(chain as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(config.seed);
        let mut level = Level {
            graph: g.clone(),
            edge_to_g: g.edge_ids().collect(),
        };
        // Input-graph edges lifting the forests of all levels walked so far.
        let mut lift_edges: Vec<EdgeId> = Vec::new();
        let mut level_stats = Vec::new();

        while level.graph.num_nodes() > config.direct_threshold
            && level_stats.len() < config.max_levels
        {
            let num_nodes = level.graph.num_nodes();
            let num_edges = level.graph.num_edges();
            let level_seed = chain_seed.wrapping_add(level_stats.len() as u64 * 7919);
            let (sparse, eps_used) = sparsify_level(level, config.sparsify_epsilon, level_seed);
            let guide_ensemble = build_tree_ensemble(
                &sparse.graph,
                &RackeConfig {
                    num_trees: Some(1),
                    mwu_step: racke.mwu_step,
                    seed: level_seed,
                    lowstretch_z: racke.lowstretch_z,
                    target_quality: None,
                },
            )?;
            stats.decomposition_rounds += guide_ensemble.stats.decomposition_rounds;
            let guide = &guide_ensemble.trees[0];
            let j = ((num_nodes as f64 / config.beta).ceil() as usize).max(1);
            let jt = build_jtree_top_loaded(&sparse.graph, guide, j);
            level_stats.push(HierarchyLevelStats {
                num_nodes,
                num_edges,
                num_sparsified_edges: sparse.graph.num_edges(),
                sparsify_epsilon: eps_used,
                j,
                num_portals: jt.num_portals(),
                num_core_edges: jt.core.num_edges(),
                guide_max_rload: guide.max_rload(),
            });
            if jt.num_portals() >= num_nodes {
                // The level failed to shrink (pathological guide tree);
                // hand what we have to the direct build instead of looping.
                level = sparse;
                break;
            }
            // Forest edges of this level — guide-tree edges surviving
            // F ∪ D — become part of every lifted tree.
            let mut removed = vec![false; sparse.graph.num_nodes()];
            for &v in jt.removed_high_load.iter().chain(&jt.removed_path_edges) {
                removed[v.index()] = true;
            }
            for v in sparse.graph.nodes() {
                if removed[v.index()] {
                    continue;
                }
                if let Some(e) = guide.tree.parent_edge(v) {
                    lift_edges.push(sparse.edge_to_g[e.index()]);
                }
            }
            // The core inherits the edge map through its origins: graph-edge
            // cores map directly, path replacements map to the deleted tree
            // edge. The core stays a multigraph so edge identity survives.
            let core_map = jt
                .core_origin
                .iter()
                .map(|origin| match *origin {
                    CoreEdgeOrigin::GraphEdge(e) => sparse.edge_to_g[e.index()],
                    CoreEdgeOrigin::PathReplacement(v) => {
                        let e = guide
                            .tree
                            .parent_edge(v)
                            .expect("path-replacement nodes have parent edges");
                        sparse.edge_to_g[e.index()]
                    }
                })
                .collect();
            level = Level {
                graph: jt.core,
                edge_to_g: core_map,
            };
        }

        let bottom_nodes = level.graph.num_nodes();
        let bottom_edges = level.graph.num_edges();
        let chain_trees_before = trees.len();
        if bottom_nodes <= 1 {
            // The forests alone already span `g`: lift the single tree.
            let lifted = RootedTree::spanning_from_edges(g, NodeId(0), &lift_edges)?;
            push_lifted(g, lifted, &mut trees, &mut stats);
        } else {
            let mut bottom_racke = racke.clone().with_seed(chain_seed ^ 0x5bd1_e995);
            if let Some(k) = config.trees_per_chain {
                bottom_racke = bottom_racke.with_num_trees(k);
            }
            let bottom = build_tree_ensemble(&level.graph, &bottom_racke)?;
            stats.decomposition_rounds += bottom.stats.decomposition_rounds;
            for t in &bottom.trees {
                let mut edges = lift_edges.clone();
                edges.extend(
                    t.tree
                        .graph_edges()
                        .iter()
                        .map(|e| level.edge_to_g[e.index()]),
                );
                let lifted = RootedTree::spanning_from_edges(g, NodeId(0), &edges)?;
                push_lifted(g, lifted, &mut trees, &mut stats);
            }
        }
        chains.push(ChainStats {
            levels: level_stats,
            bottom_nodes,
            bottom_edges,
            trees_lifted: trees.len() - chain_trees_before,
        });
    }

    Ok((TreeEnsemble { trees, stats }, HierarchyStats { chains }))
}

/// Re-capacitates a lifted spanning tree against the input graph and appends
/// it to the ensemble under construction.
fn push_lifted(
    g: &Graph,
    lifted: RootedTree,
    trees: &mut Vec<CapacitatedTree>,
    stats: &mut EnsembleStats,
) {
    let cap = CapacitatedTree::new(g, lifted);
    stats.max_rloads.push(cap.max_rload());
    stats.num_trees += 1;
    trees.push(cap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::{gen, Demand};

    fn config() -> HierarchyConfig {
        HierarchyConfig::default()
            .with_direct_threshold(32)
            .with_chains(2)
            .with_trees_per_chain(Some(2))
    }

    #[test]
    fn lifted_trees_are_spanning_trees_of_the_input() {
        let g = gen::random_gnp(200, 0.05, (1.0, 4.0), 7);
        let (ensemble, stats) =
            build_hierarchical_ensemble(&g, &config(), &RackeConfig::default()).unwrap();
        assert_eq!(ensemble.trees.len(), 4);
        assert_eq!(stats.total_trees(), 4);
        for t in &ensemble.trees {
            assert_eq!(t.tree.num_nodes(), g.num_nodes());
            assert_eq!(t.tree.graph_edges().len(), g.num_nodes() - 1);
        }
    }

    #[test]
    fn recursion_actually_recurses_and_shrinks() {
        let g = gen::grid(20, 20, 1.0);
        let (_, stats) =
            build_hierarchical_ensemble(&g, &config(), &RackeConfig::default()).unwrap();
        assert!(stats.num_levels() >= 1, "400 nodes must recurse past 32");
        for chain in &stats.chains {
            assert_eq!(chain.levels[0].num_nodes, 400);
            for w in chain.levels.windows(2) {
                assert!(w[1].num_nodes < w[0].num_nodes);
            }
            assert!(chain.bottom_nodes <= chain.levels.last().unwrap().num_portals);
        }
    }

    #[test]
    fn bracket_certificates_stay_sound() {
        // Every row of the lifted approximator is a genuine cut of G, so the
        // sandwich ‖Rb‖∞ ≤ opt(b) ≤ upper must bracket the exhaustive opt.
        let g = gen::random_gnp(16, 0.3, (1.0, 5.0), 3);
        let hier = HierarchyConfig::default()
            .with_direct_threshold(4)
            .with_chains(1)
            .with_trees_per_chain(Some(3));
        let (ensemble, _) =
            build_hierarchical_ensemble(&g, &hier, &RackeConfig::default()).unwrap();
        let r = crate::CongestionApproximator::from_ensemble(ensemble).unwrap();
        for (s, t) in [(0u32, 15u32), (3, 9), (7, 12)] {
            let b = Demand::st(&g, NodeId(s), NodeId(t), 1.0);
            let lower = r.congestion_lower_bound(&b);
            let upper = r.congestion_upper_bound(&g, &b);
            let opt = crate::exhaustive_opt_congestion(&g, &b);
            assert!(lower <= opt + 1e-9, "lower {lower} exceeds opt {opt}");
            assert!(upper + 1e-9 >= opt, "upper {upper} below opt {opt}");
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let g = gen::fat_tree(16, 4, 10, 10.0, 40.0);
        let build = || {
            let (e, s) =
                build_hierarchical_ensemble(&g, &config(), &RackeConfig::default()).unwrap();
            (e, s)
        };
        let (a, sa) = build();
        let (b, sb) = build();
        assert_eq!(sa, sb);
        for (ta, tb) in a.trees.iter().zip(&b.trees) {
            assert_eq!(ta.tree.graph_edges(), tb.tree.graph_edges());
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ta.cut_capacity), bits(&tb.cut_capacity));
        }
    }

    #[test]
    fn small_graphs_skip_straight_to_the_direct_build() {
        let g = gen::grid(4, 4, 1.0);
        let (ensemble, stats) =
            build_hierarchical_ensemble(&g, &config(), &RackeConfig::default()).unwrap();
        assert_eq!(stats.num_levels(), 0);
        assert_eq!(stats.cut_distortion_bound(), 1.0);
        assert!(!ensemble.trees.is_empty());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for (cfg, parameter) in [
            (config().with_beta(2.0), "hierarchy.beta"),
            (config().with_beta(f64::NAN), "hierarchy.beta"),
            (
                config().with_direct_threshold(1),
                "hierarchy.direct_threshold",
            ),
            (config().with_chains(0), "hierarchy.chains"),
            (
                config().with_trees_per_chain(Some(0)),
                "hierarchy.trees_per_chain",
            ),
            (
                config().with_sparsify_epsilon(1.0),
                "hierarchy.sparsify_epsilon",
            ),
        ] {
            match cfg.validate() {
                Err(GraphError::InvalidConfig { parameter: p, .. }) => assert_eq!(p, parameter),
                other => panic!("{parameter}: expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn distortion_bound_tracks_sparsified_levels() {
        // A dense graph forces at least one sparsified level.
        let g = gen::random_gnp(300, 0.2, (1.0, 2.0), 11);
        let (_, stats) = build_hierarchical_ensemble(
            &g,
            &config().with_sparsify_epsilon(0.25),
            &RackeConfig::default(),
        )
        .unwrap();
        let sparsified_levels = stats
            .chains
            .iter()
            .flat_map(|c| &c.levels)
            .filter(|l| l.sparsify_epsilon > 0.0)
            .count();
        assert!(sparsified_levels > 0, "dense input must sparsify");
        assert!(stats.cut_distortion_bound() > 1.0);
    }
}
