//! Räcke-style tree distributions via multiplicative weight updates
//! (paper §2 "Congestion Approximators: Räcke's Construction" and §8.2).
//!
//! Each iteration builds a low average-stretch spanning tree with respect to
//! the current edge lengths, computes the load every tree edge would carry if
//! all graph edges routed their capacity over the tree (the multicommodity
//! flow of §8.1), and then increases the lengths of highly loaded tree edges
//! so that subsequent trees avoid them. The resulting small ensemble of
//! capacitated trees is exactly what Lemma 3.3 needs: `O(log n)` samples from
//! a cut-preserving tree distribution.

use flowgraph::{Demand, EdgeId, Graph, GraphError, NodeId, RootedTree};
use lowstretch::{low_stretch_spanning_tree, LowStretchConfig};
use serde::{Deserialize, Serialize};

/// A spanning tree together with, for every non-root node, the capacity of
/// the cut its parent edge induces in `G`.
///
/// For a spanning subtree the cut capacity equals the total capacity of the
/// graph edges whose unique tree path crosses the parent edge (the
/// multicommodity load `|f'_e|` of §8.1), which we exploit to compute it with
/// one LCA pass.
#[derive(Debug, Clone)]
pub struct CapacitatedTree {
    /// The spanning tree (rooted at node 0).
    pub tree: RootedTree,
    /// `cut_capacity[v]` = capacity of the cut induced by `v`'s parent edge;
    /// entry for the root is 0.
    pub cut_capacity: Vec<f64>,
    /// `rload[v] = cut_capacity[v] / cap(parent edge of v)`; 0 for the root.
    pub rload: Vec<f64>,
}

impl CapacitatedTree {
    /// Builds the capacitated tree for a spanning subtree of `g`.
    pub fn new(g: &Graph, tree: RootedTree) -> Self {
        let cut_capacity = tree_loads(g, &tree);
        let rload = tree
            .preorder()
            .iter()
            .map(|&v| match tree.parent_edge(v) {
                Some(e) => cut_capacity[v.index()] / g.capacity(e),
                None => 0.0,
            })
            .collect::<Vec<_>>();
        // preorder is a permutation of nodes; re-index by node id.
        let mut rload_by_node = vec![0.0; tree.num_nodes()];
        for (i, &v) in tree.preorder().iter().enumerate() {
            rload_by_node[v.index()] = rload[i];
        }
        CapacitatedTree {
            tree,
            cut_capacity,
            rload: rload_by_node,
        }
    }

    /// Largest relative load `R = max_e rload(e)` over the tree edges.
    pub fn max_rload(&self) -> f64 {
        self.rload.iter().cloned().fold(0.0, f64::max)
    }

    /// Maximum congestion over the *graph* tree edges when routing demand `b`
    /// entirely on this tree (the upper-bound side of the approximator).
    pub fn tree_routing_congestion(&self, g: &Graph, b: &flowgraph::Demand) -> f64 {
        self.tree.routing_congestion(g, b)
    }

    /// [`Self::tree_routing_congestion`] specialized to an s–t demand, in
    /// `O(tree depth)` instead of `O(n)` — bit-identical to the dense
    /// evaluation (see [`flowgraph::RootedTree::st_routing_congestion`]).
    pub fn st_tree_routing_congestion(
        &self,
        g: &Graph,
        s: flowgraph::NodeId,
        t: flowgraph::NodeId,
        amount: f64,
    ) -> f64 {
        self.tree.st_routing_congestion(g, s, t, amount)
    }
}

/// Computes, for every non-root node `v`, the total capacity of the graph
/// edges whose tree path crosses `v`'s parent edge — which equals the
/// capacity of the cut `(subtree(v), rest)` in `G`.
///
/// Uses the standard LCA marking trick: for edge `{u, w}` with capacity `c`
/// add `c` at `u` and `w` and `-2c` at `lca(u, w)`; the subtree sums of the
/// marks are exactly the loads.
pub fn tree_loads(g: &Graph, tree: &RootedTree) -> Vec<f64> {
    let n = g.num_nodes();
    let mut marks = vec![0.0; n];
    for (_, e) in g.edges() {
        let l = tree.lca(e.tail, e.head);
        marks[e.tail.index()] += e.capacity;
        marks[e.head.index()] += e.capacity;
        marks[l.index()] -= 2.0 * e.capacity;
    }
    let mut sums = tree.subtree_sums(&marks);
    sums[tree.root().index()] = 0.0;
    sums
}

/// Configuration of the multiplicative-weight tree-ensemble construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RackeConfig {
    /// Number of trees to build. `None` selects `2·⌈log2 n⌉ + 1`
    /// (the `O(log n)` samples of Lemma 3.3).
    pub num_trees: Option<usize>,
    /// Multiplicative-weight step size.
    pub mwu_step: f64,
    /// RNG seed (also seeds the per-tree low-stretch constructions).
    pub seed: u64,
    /// Class growth factor handed to the low-stretch construction.
    pub lowstretch_z: f64,
    /// Empirical quality target for ensemble trimming; `None` (the default)
    /// always builds the full schedule. See
    /// [`RackeConfig::with_target_quality`].
    pub target_quality: Option<f64>,
}

impl Default for RackeConfig {
    fn default() -> Self {
        RackeConfig {
            num_trees: None,
            mwu_step: 0.5,
            seed: 0,
            lowstretch_z: 32.0,
            target_quality: None,
        }
    }
}

impl RackeConfig {
    /// Overrides the number of trees.
    #[must_use]
    pub fn with_num_trees(mut self, k: usize) -> Self {
        self.num_trees = Some(k);
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables empirical ensemble trimming: stop sampling trees as soon as
    /// the ensemble's *measured* approximation factor on a deterministic set
    /// of seeded probe demands drops to `quality` or below, instead of always
    /// building the full `O(log n)` schedule.
    ///
    /// The measured factor of a probe demand `b` is
    /// `min_T congestion(route b on T) / ‖Rb‖_∞` — best tree-routing upper
    /// bound over the rows' lower bound — which is exactly the factor by
    /// which the prefix ensemble brackets `opt(b)`. Because each tree only
    /// depends on the lengths produced by *earlier* trees, the trimmed
    /// ensemble is a prefix of the untrimmed one: trimming never changes the
    /// trees, only how many are built, and every certificate the solver emits
    /// (value / upper-bound bracket) remains valid for any prefix.
    ///
    /// `quality` below `1.0` can never be met (the bracket contains `opt`),
    /// so the full schedule is built; the solver-level configuration
    /// validation rejects such values up front.
    ///
    /// ```
    /// use capprox::{build_tree_ensemble, RackeConfig};
    /// use flowgraph::gen;
    ///
    /// let g = gen::fat_tree(8, 4, 10, 10.0, 40.0);
    /// let full = build_tree_ensemble(&g, &RackeConfig::default()).unwrap();
    /// let trimmed =
    ///     build_tree_ensemble(&g, &RackeConfig::default().with_target_quality(1.5)).unwrap();
    /// // Trimming builds a prefix: never more trees, often far fewer.
    /// assert!(trimmed.trees.len() <= full.trees.len());
    /// for (a, b) in trimmed.stats.max_rloads.iter().zip(&full.stats.max_rloads) {
    ///     assert_eq!(a, b);
    /// }
    /// ```
    #[must_use]
    pub fn with_target_quality(mut self, quality: f64) -> Self {
        self.target_quality = Some(quality);
        self
    }
}

/// Statistics of the ensemble construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleStats {
    /// Number of trees built.
    pub num_trees: usize,
    /// Max relative load per tree (the provable per-tree α contribution).
    pub max_rloads: Vec<f64>,
    /// Total cluster-level decomposition rounds spent building the trees
    /// (each costs `O(D + √n)` network rounds when simulated, Lemma 5.1).
    pub decomposition_rounds: usize,
    /// Average stretches of the trees with respect to the final lengths.
    pub average_stretches: Vec<f64>,
}

/// An ensemble of capacitated spanning trees forming a tree distribution in
/// the sense of Räcke / Madry, restricted to the `O(log n)` samples that
/// Lemma 3.3 shows suffice for a congestion approximator.
#[derive(Debug, Clone)]
pub struct TreeEnsemble {
    /// The capacitated trees.
    pub trees: Vec<CapacitatedTree>,
    /// Construction statistics.
    pub stats: EnsembleStats,
}

/// One probe demand of the empirical trimming rule, with the incrementally
/// maintained congestion bracket of the ensemble prefix built so far.
struct QualityProbe {
    demand: Demand,
    /// `‖Rb‖_∞` of the prefix: max over (tree, cut) rows seen so far.
    lower: f64,
    /// Best single-tree routing congestion over the trees seen so far.
    upper: f64,
}

impl QualityProbe {
    /// Folds one freshly built tree into the bracket. `sums` is node-sized
    /// scratch for the subtree aggregation.
    fn absorb(&mut self, g: &Graph, tree: &CapacitatedTree, sums: &mut [f64]) {
        tree.tree.subtree_sums_into(self.demand.values(), sums);
        let mut rows_max = 0.0f64;
        for (&s, &c) in sums.iter().zip(&tree.cut_capacity) {
            if c > 0.0 {
                rows_max = rows_max.max((s / c).abs());
            }
        }
        self.lower = self.lower.max(rows_max);
        self.upper = self
            .upper
            .min(tree.tree_routing_congestion(g, &self.demand));
    }

    /// The measured approximation factor of the prefix on this probe.
    fn alpha(&self) -> f64 {
        if self.lower > 0.0 {
            self.upper / self.lower
        } else {
            f64::INFINITY
        }
    }
}

/// The deterministic probe demands the trimming rule scores an ensemble
/// prefix on: the extreme-weighted-degree pair (stressing the most imbalanced
/// cut) plus seeded s–t pairs drawn with a splitmix64 generator, so the same
/// `(graph, seed)` always probes the same demands.
fn quality_probes(g: &Graph, seed: u64) -> Vec<QualityProbe> {
    let n = g.num_nodes();
    if n < 2 {
        return Vec::new();
    }
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut heaviest = NodeId(0);
    let mut lightest = NodeId(0);
    for v in g.nodes() {
        if g.weighted_degree(v) > g.weighted_degree(heaviest) {
            heaviest = v;
        }
        if g.weighted_degree(v) < g.weighted_degree(lightest) {
            lightest = v;
        }
    }
    if heaviest != lightest {
        pairs.push((heaviest.index() as u32, lightest.index() as u32));
    }
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for _ in 0..64 {
        if pairs.len() >= 6 {
            break;
        }
        let s = (next() % n as u64) as u32;
        let t = (next() % n as u64) as u32;
        if s != t && !pairs.contains(&(s, t)) {
            pairs.push((s, t));
        }
    }
    pairs
        .into_iter()
        .map(|(s, t)| QualityProbe {
            demand: Demand::st(g, NodeId(s), NodeId(t), 1.0),
            lower: 0.0,
            upper: f64::INFINITY,
        })
        .collect()
}

/// Builds the tree ensemble for `g` using multiplicative weight updates over
/// edge lengths (Räcke's construction, §2) with low average-stretch spanning
/// trees as the subroutine (Theorem 3.1).
///
/// With [`RackeConfig::target_quality`] set, construction stops as soon as
/// the prefix built so far measures at or below the target on the seeded
/// probe demands — the trimmed ensemble is always a prefix of the untrimmed
/// one.
///
/// # Errors
///
/// Propagates [`GraphError`]s from the low-stretch construction (empty or
/// disconnected input).
pub fn build_tree_ensemble(g: &Graph, config: &RackeConfig) -> Result<TreeEnsemble, GraphError> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    let n = g.num_nodes();
    let k = config
        .num_trees
        .unwrap_or_else(|| 2 * (n.max(2) as f64).log2().ceil() as usize + 1)
        .max(1);
    // Trimming state: probes only exist when a (meetable) target is set.
    let mut probes = match config.target_quality {
        Some(q) if q >= 1.0 => quality_probes(g, config.seed),
        _ => Vec::new(),
    };
    let mut probe_sums = vec![0.0; if probes.is_empty() { 0 } else { n }];

    // Initial lengths 1/cap: short = high capacity, so the first tree prefers
    // high-capacity edges.
    let mut lengths: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
    let mut trees = Vec::with_capacity(k);
    let mut stats = EnsembleStats {
        num_trees: 0,
        max_rloads: Vec::with_capacity(k),
        decomposition_rounds: 0,
        average_stretches: Vec::with_capacity(k),
    };

    for i in 0..k {
        let ls_config = LowStretchConfig {
            z: Some(config.lowstretch_z),
            radius_factor: 0.25,
            seed: config.seed.wrapping_add(i as u64 * 7919),
        };
        let result = low_stretch_spanning_tree(g, &lengths, &ls_config)?;
        stats.decomposition_rounds += result.stats.decomposition_rounds;
        stats
            .average_stretches
            .push(result.tree.average_stretch(g, |e| lengths[e.index()]));
        let cap_tree = CapacitatedTree::new(g, result.tree);
        let max_rload = cap_tree.max_rload().max(1.0);
        stats.max_rloads.push(cap_tree.max_rload());

        // Multiplicative weight update: lengthen overloaded tree edges so the
        // next tree routes around them (Räcke's potential argument).
        for v in g.nodes() {
            if let Some(e) = cap_tree.tree.parent_edge(v) {
                let boost = 1.0 + config.mwu_step * cap_tree.rload[v.index()] / max_rload;
                lengths[e.index()] *= boost;
            }
        }
        trees.push(cap_tree);
        stats.num_trees += 1;

        // Empirical trimming: stop once every probe's measured bracket is
        // within the target. The remaining trees of the schedule are exactly
        // the ones an untrimmed build would add — never different ones — so
        // stopping early only shrinks R, it never changes existing rows.
        if !probes.is_empty() {
            let target = config.target_quality.expect("probes imply a target");
            let last = trees.last().expect("just pushed");
            let mut worst = 0.0f64;
            for probe in probes.iter_mut() {
                probe.absorb(g, last, &mut probe_sums);
                worst = worst.max(probe.alpha());
            }
            if worst <= target {
                break;
            }
        }
    }

    Ok(TreeEnsemble { trees, stats })
}

/// Routes demand `b` on tree `t` of the ensemble and materializes the flow on
/// the graph (used by the flow-repair step of Algorithm 1 and by tests).
///
/// # Errors
///
/// Returns an error if the tree is not a spanning subtree of `g`.
pub fn route_on_tree(
    g: &Graph,
    tree: &CapacitatedTree,
    b: &flowgraph::Demand,
) -> Result<flowgraph::FlowVec, GraphError> {
    tree.tree.route_demand_on_graph(g, b)
}

/// Convenience: the single-edge-induced cut of node `v` in tree `t`, as a
/// [`flowgraph::Cut`] on the node set (used by tests and the experiments).
pub fn tree_cut(tree: &CapacitatedTree, v: NodeId) -> flowgraph::Cut {
    tree.tree.subtree_cut(v)
}

/// The edge set `{parent edge of v : v non-root}` of a capacitated tree, as
/// graph edge ids.
pub fn tree_graph_edges(tree: &CapacitatedTree) -> Vec<EdgeId> {
    tree.tree.graph_edges()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::{gen, spanning, Demand};

    #[test]
    fn tree_loads_equal_cut_capacities() {
        let g = gen::grid(5, 5, 1.0);
        let tree = spanning::bfs_tree(&g, NodeId(0)).unwrap();
        let loads = tree_loads(&g, &tree);
        for v in g.nodes() {
            if v == tree.root() {
                assert_eq!(loads[v.index()], 0.0);
                continue;
            }
            let cut = tree.subtree_cut(v);
            assert!(
                (loads[v.index()] - cut.capacity(&g)).abs() < 1e-9,
                "load at {v} should equal the induced cut capacity"
            );
        }
    }

    #[test]
    fn capacitated_tree_rload_at_least_one() {
        // The parent edge itself always crosses its induced cut, so
        // rload = cut capacity / edge capacity >= 1.
        let g = gen::random_gnp(30, 0.2, (1.0, 5.0), 2);
        let tree = spanning::max_weight_spanning_tree(&g, NodeId(0)).unwrap();
        let ct = CapacitatedTree::new(&g, tree);
        for v in g.nodes() {
            if ct.tree.parent(v).is_some() {
                assert!(
                    ct.rload[v.index()] >= 1.0 - 1e-9,
                    "rload at {v} is {}",
                    ct.rload[v.index()]
                );
            }
        }
        assert!(ct.max_rload() >= 1.0);
    }

    #[test]
    fn ensemble_has_requested_size_and_spanning_trees() {
        let g = gen::grid(6, 6, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(5)).unwrap();
        assert_eq!(ensemble.trees.len(), 5);
        assert_eq!(ensemble.stats.num_trees, 5);
        for t in &ensemble.trees {
            assert_eq!(t.tree.graph_edges().len(), 35);
        }
    }

    #[test]
    fn default_tree_count_is_logarithmic() {
        let g = gen::grid(5, 5, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default()).unwrap();
        let expected = 2 * (25f64).log2().ceil() as usize + 1;
        assert_eq!(ensemble.trees.len(), expected);
    }

    #[test]
    fn mwu_diversifies_trees() {
        // On a cycle, the first tree must drop one edge; subsequent trees
        // should (because dropped edges keep their length while tree edges are
        // lengthened) eventually drop a different edge.
        let g = gen::cycle(20, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(6)).unwrap();
        let dropped: std::collections::HashSet<Vec<EdgeId>> = ensemble
            .trees
            .iter()
            .map(|t| {
                let used: std::collections::HashSet<EdgeId> =
                    t.tree.graph_edges().into_iter().collect();
                let mut d: Vec<EdgeId> = g.edge_ids().filter(|e| !used.contains(e)).collect();
                d.sort();
                d
            })
            .collect();
        assert!(
            dropped.len() > 1,
            "the MWU should produce at least two distinct trees on a cycle"
        );
    }

    #[test]
    fn routing_on_tree_meets_demand() {
        let g = gen::grid(4, 4, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(2)).unwrap();
        let d = Demand::st(&g, NodeId(0), NodeId(15), 2.0);
        let f = route_on_tree(&g, &ensemble.trees[0], &d).unwrap();
        let ex = f.excess(&g);
        assert!((ex[0] + 2.0).abs() < 1e-9);
        assert!((ex[15] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn trimmed_ensemble_is_a_prefix_of_the_untrimmed_one() {
        let g = gen::fat_tree(8, 4, 10, 10.0, 40.0);
        let full = build_tree_ensemble(&g, &RackeConfig::default().with_seed(3)).unwrap();
        let trimmed = build_tree_ensemble(
            &g,
            &RackeConfig::default().with_seed(3).with_target_quality(1.5),
        )
        .unwrap();
        assert!(trimmed.trees.len() <= full.trees.len());
        assert!(!trimmed.trees.is_empty());
        for (t, f) in trimmed.trees.iter().zip(&full.trees) {
            assert_eq!(t.tree.graph_edges(), f.tree.graph_edges());
            assert_eq!(t.cut_capacity, f.cut_capacity);
        }
        assert_eq!(
            trimmed.stats.max_rloads,
            full.stats.max_rloads[..trimmed.trees.len()]
        );
        // On a tree-like topology a handful of spanning trees already meet a
        // modest target, so trimming must actually bite.
        assert!(
            trimmed.trees.len() < full.trees.len(),
            "trimming did not reduce the {} trees",
            full.trees.len()
        );
    }

    #[test]
    fn unreachable_target_quality_builds_the_full_schedule() {
        let g = gen::grid(6, 6, 1.0);
        let full = build_tree_ensemble(&g, &RackeConfig::default()).unwrap();
        // A sub-1.0 target can never be met (the bracket contains opt), so
        // the builder falls back to the full schedule instead of looping.
        let sub_unit =
            build_tree_ensemble(&g, &RackeConfig::default().with_target_quality(0.5)).unwrap();
        assert_eq!(sub_unit.trees.len(), full.trees.len());
    }

    #[test]
    fn errors_on_empty_graph() {
        let g = Graph::with_nodes(0);
        assert!(matches!(
            build_tree_ensemble(&g, &RackeConfig::default()),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn tree_cut_helper_matches_tree() {
        let g = gen::path(6, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(1)).unwrap();
        let cut = tree_cut(&ensemble.trees[0], NodeId(3));
        assert!(cut.is_proper());
        assert_eq!(tree_graph_edges(&ensemble.trees[0]).len(), 5);
    }
}
