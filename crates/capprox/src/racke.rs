//! Räcke-style tree distributions via multiplicative weight updates
//! (paper §2 "Congestion Approximators: Räcke's Construction" and §8.2).
//!
//! Each iteration builds a low average-stretch spanning tree with respect to
//! the current edge lengths, computes the load every tree edge would carry if
//! all graph edges routed their capacity over the tree (the multicommodity
//! flow of §8.1), and then increases the lengths of highly loaded tree edges
//! so that subsequent trees avoid them. The resulting small ensemble of
//! capacitated trees is exactly what Lemma 3.3 needs: `O(log n)` samples from
//! a cut-preserving tree distribution.

use flowgraph::{EdgeId, Graph, GraphError, NodeId, RootedTree};
use lowstretch::{low_stretch_spanning_tree, LowStretchConfig};
use serde::{Deserialize, Serialize};

/// A spanning tree together with, for every non-root node, the capacity of
/// the cut its parent edge induces in `G`.
///
/// For a spanning subtree the cut capacity equals the total capacity of the
/// graph edges whose unique tree path crosses the parent edge (the
/// multicommodity load `|f'_e|` of §8.1), which we exploit to compute it with
/// one LCA pass.
#[derive(Debug, Clone)]
pub struct CapacitatedTree {
    /// The spanning tree (rooted at node 0).
    pub tree: RootedTree,
    /// `cut_capacity[v]` = capacity of the cut induced by `v`'s parent edge;
    /// entry for the root is 0.
    pub cut_capacity: Vec<f64>,
    /// `rload[v] = cut_capacity[v] / cap(parent edge of v)`; 0 for the root.
    pub rload: Vec<f64>,
}

impl CapacitatedTree {
    /// Builds the capacitated tree for a spanning subtree of `g`.
    pub fn new(g: &Graph, tree: RootedTree) -> Self {
        let cut_capacity = tree_loads(g, &tree);
        let rload = tree
            .preorder()
            .iter()
            .map(|&v| match tree.parent_edge(v) {
                Some(e) => cut_capacity[v.index()] / g.capacity(e),
                None => 0.0,
            })
            .collect::<Vec<_>>();
        // preorder is a permutation of nodes; re-index by node id.
        let mut rload_by_node = vec![0.0; tree.num_nodes()];
        for (i, &v) in tree.preorder().iter().enumerate() {
            rload_by_node[v.index()] = rload[i];
        }
        CapacitatedTree {
            tree,
            cut_capacity,
            rload: rload_by_node,
        }
    }

    /// Largest relative load `R = max_e rload(e)` over the tree edges.
    pub fn max_rload(&self) -> f64 {
        self.rload.iter().cloned().fold(0.0, f64::max)
    }

    /// Maximum congestion over the *graph* tree edges when routing demand `b`
    /// entirely on this tree (the upper-bound side of the approximator).
    pub fn tree_routing_congestion(&self, g: &Graph, b: &flowgraph::Demand) -> f64 {
        self.tree.routing_congestion(g, b)
    }
}

/// Computes, for every non-root node `v`, the total capacity of the graph
/// edges whose tree path crosses `v`'s parent edge — which equals the
/// capacity of the cut `(subtree(v), rest)` in `G`.
///
/// Uses the standard LCA marking trick: for edge `{u, w}` with capacity `c`
/// add `c` at `u` and `w` and `-2c` at `lca(u, w)`; the subtree sums of the
/// marks are exactly the loads.
pub fn tree_loads(g: &Graph, tree: &RootedTree) -> Vec<f64> {
    let n = g.num_nodes();
    let mut marks = vec![0.0; n];
    for (_, e) in g.edges() {
        let l = tree.lca(e.tail, e.head);
        marks[e.tail.index()] += e.capacity;
        marks[e.head.index()] += e.capacity;
        marks[l.index()] -= 2.0 * e.capacity;
    }
    let mut sums = tree.subtree_sums(&marks);
    sums[tree.root().index()] = 0.0;
    sums
}

/// Configuration of the multiplicative-weight tree-ensemble construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RackeConfig {
    /// Number of trees to build. `None` selects `2·⌈log2 n⌉ + 1`
    /// (the `O(log n)` samples of Lemma 3.3).
    pub num_trees: Option<usize>,
    /// Multiplicative-weight step size.
    pub mwu_step: f64,
    /// RNG seed (also seeds the per-tree low-stretch constructions).
    pub seed: u64,
    /// Class growth factor handed to the low-stretch construction.
    pub lowstretch_z: f64,
}

impl Default for RackeConfig {
    fn default() -> Self {
        RackeConfig {
            num_trees: None,
            mwu_step: 0.5,
            seed: 0,
            lowstretch_z: 32.0,
        }
    }
}

impl RackeConfig {
    /// Overrides the number of trees.
    #[must_use]
    pub fn with_num_trees(mut self, k: usize) -> Self {
        self.num_trees = Some(k);
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Statistics of the ensemble construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleStats {
    /// Number of trees built.
    pub num_trees: usize,
    /// Max relative load per tree (the provable per-tree α contribution).
    pub max_rloads: Vec<f64>,
    /// Total cluster-level decomposition rounds spent building the trees
    /// (each costs `O(D + √n)` network rounds when simulated, Lemma 5.1).
    pub decomposition_rounds: usize,
    /// Average stretches of the trees with respect to the final lengths.
    pub average_stretches: Vec<f64>,
}

/// An ensemble of capacitated spanning trees forming a tree distribution in
/// the sense of Räcke / Madry, restricted to the `O(log n)` samples that
/// Lemma 3.3 shows suffice for a congestion approximator.
#[derive(Debug, Clone)]
pub struct TreeEnsemble {
    /// The capacitated trees.
    pub trees: Vec<CapacitatedTree>,
    /// Construction statistics.
    pub stats: EnsembleStats,
}

/// Builds the tree ensemble for `g` using multiplicative weight updates over
/// edge lengths (Räcke's construction, §2) with low average-stretch spanning
/// trees as the subroutine (Theorem 3.1).
///
/// # Errors
///
/// Propagates [`GraphError`]s from the low-stretch construction (empty or
/// disconnected input).
pub fn build_tree_ensemble(g: &Graph, config: &RackeConfig) -> Result<TreeEnsemble, GraphError> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    let n = g.num_nodes();
    let k = config
        .num_trees
        .unwrap_or_else(|| 2 * (n.max(2) as f64).log2().ceil() as usize + 1)
        .max(1);

    // Initial lengths 1/cap: short = high capacity, so the first tree prefers
    // high-capacity edges.
    let mut lengths: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
    let mut trees = Vec::with_capacity(k);
    let mut stats = EnsembleStats {
        num_trees: 0,
        max_rloads: Vec::with_capacity(k),
        decomposition_rounds: 0,
        average_stretches: Vec::with_capacity(k),
    };

    for i in 0..k {
        let ls_config = LowStretchConfig {
            z: Some(config.lowstretch_z),
            radius_factor: 0.25,
            seed: config.seed.wrapping_add(i as u64 * 7919),
        };
        let result = low_stretch_spanning_tree(g, &lengths, &ls_config)?;
        stats.decomposition_rounds += result.stats.decomposition_rounds;
        stats
            .average_stretches
            .push(result.tree.average_stretch(g, |e| lengths[e.index()]));
        let cap_tree = CapacitatedTree::new(g, result.tree);
        let max_rload = cap_tree.max_rload().max(1.0);
        stats.max_rloads.push(cap_tree.max_rload());

        // Multiplicative weight update: lengthen overloaded tree edges so the
        // next tree routes around them (Räcke's potential argument).
        for v in g.nodes() {
            if let Some(e) = cap_tree.tree.parent_edge(v) {
                let boost = 1.0 + config.mwu_step * cap_tree.rload[v.index()] / max_rload;
                lengths[e.index()] *= boost;
            }
        }
        trees.push(cap_tree);
        stats.num_trees += 1;
    }

    Ok(TreeEnsemble { trees, stats })
}

/// Routes demand `b` on tree `t` of the ensemble and materializes the flow on
/// the graph (used by the flow-repair step of Algorithm 1 and by tests).
///
/// # Errors
///
/// Returns an error if the tree is not a spanning subtree of `g`.
pub fn route_on_tree(
    g: &Graph,
    tree: &CapacitatedTree,
    b: &flowgraph::Demand,
) -> Result<flowgraph::FlowVec, GraphError> {
    tree.tree.route_demand_on_graph(g, b)
}

/// Convenience: the single-edge-induced cut of node `v` in tree `t`, as a
/// [`flowgraph::Cut`] on the node set (used by tests and the experiments).
pub fn tree_cut(tree: &CapacitatedTree, v: NodeId) -> flowgraph::Cut {
    tree.tree.subtree_cut(v)
}

/// The edge set `{parent edge of v : v non-root}` of a capacitated tree, as
/// graph edge ids.
pub fn tree_graph_edges(tree: &CapacitatedTree) -> Vec<EdgeId> {
    tree.tree.graph_edges()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::{gen, spanning, Demand};

    #[test]
    fn tree_loads_equal_cut_capacities() {
        let g = gen::grid(5, 5, 1.0);
        let tree = spanning::bfs_tree(&g, NodeId(0)).unwrap();
        let loads = tree_loads(&g, &tree);
        for v in g.nodes() {
            if v == tree.root() {
                assert_eq!(loads[v.index()], 0.0);
                continue;
            }
            let cut = tree.subtree_cut(v);
            assert!(
                (loads[v.index()] - cut.capacity(&g)).abs() < 1e-9,
                "load at {v} should equal the induced cut capacity"
            );
        }
    }

    #[test]
    fn capacitated_tree_rload_at_least_one() {
        // The parent edge itself always crosses its induced cut, so
        // rload = cut capacity / edge capacity >= 1.
        let g = gen::random_gnp(30, 0.2, (1.0, 5.0), 2);
        let tree = spanning::max_weight_spanning_tree(&g, NodeId(0)).unwrap();
        let ct = CapacitatedTree::new(&g, tree);
        for v in g.nodes() {
            if ct.tree.parent(v).is_some() {
                assert!(
                    ct.rload[v.index()] >= 1.0 - 1e-9,
                    "rload at {v} is {}",
                    ct.rload[v.index()]
                );
            }
        }
        assert!(ct.max_rload() >= 1.0);
    }

    #[test]
    fn ensemble_has_requested_size_and_spanning_trees() {
        let g = gen::grid(6, 6, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(5)).unwrap();
        assert_eq!(ensemble.trees.len(), 5);
        assert_eq!(ensemble.stats.num_trees, 5);
        for t in &ensemble.trees {
            assert_eq!(t.tree.graph_edges().len(), 35);
        }
    }

    #[test]
    fn default_tree_count_is_logarithmic() {
        let g = gen::grid(5, 5, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default()).unwrap();
        let expected = 2 * (25f64).log2().ceil() as usize + 1;
        assert_eq!(ensemble.trees.len(), expected);
    }

    #[test]
    fn mwu_diversifies_trees() {
        // On a cycle, the first tree must drop one edge; subsequent trees
        // should (because dropped edges keep their length while tree edges are
        // lengthened) eventually drop a different edge.
        let g = gen::cycle(20, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(6)).unwrap();
        let dropped: std::collections::HashSet<Vec<EdgeId>> = ensemble
            .trees
            .iter()
            .map(|t| {
                let used: std::collections::HashSet<EdgeId> =
                    t.tree.graph_edges().into_iter().collect();
                let mut d: Vec<EdgeId> = g.edge_ids().filter(|e| !used.contains(e)).collect();
                d.sort();
                d
            })
            .collect();
        assert!(
            dropped.len() > 1,
            "the MWU should produce at least two distinct trees on a cycle"
        );
    }

    #[test]
    fn routing_on_tree_meets_demand() {
        let g = gen::grid(4, 4, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(2)).unwrap();
        let d = Demand::st(&g, NodeId(0), NodeId(15), 2.0);
        let f = route_on_tree(&g, &ensemble.trees[0], &d).unwrap();
        let ex = f.excess(&g);
        assert!((ex[0] + 2.0).abs() < 1e-9);
        assert!((ex[15] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn errors_on_empty_graph() {
        let g = Graph::with_nodes(0);
        assert!(matches!(
            build_tree_ensemble(&g, &RackeConfig::default()),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn tree_cut_helper_matches_tree() {
        let g = gen::path(6, 1.0);
        let ensemble = build_tree_ensemble(&g, &RackeConfig::default().with_num_trees(1)).unwrap();
        let cut = tree_cut(&ensemble.trees[0], NodeId(3));
        assert!(cut.is_proper());
        assert_eq!(tree_graph_edges(&ensemble.trees[0]).len(), 5);
    }
}
