//! Madry's j-tree construction (paper §4 and §8.3).
//!
//! Given a capacitated spanning tree `T` of `G` and a target `j`, the
//! construction removes the `≤ j` most loaded tree edges (`F`), turning
//! `T \ F` into a forest, declares the endpoints of removed edges *primary
//! portals*, prunes the forest down to its skeleton, adds *secondary portals*
//! at skeleton branch points, removes the lightest edge of every portal-free
//! skeleton path (`D`, replaced by a virtual edge between the path's portal
//! endpoints), and finally moves every non-forest edge of `G` that connects
//! different forest components to the portals of those components. The
//! result is an `O(j)`-tree: a forest in which every component contains
//! exactly one portal, plus a *core* multigraph on the portals
//! (cf. Figure 1 / Figure 5 of the paper).
//!
//! The recursion of Theorem 8.10 (sparsify → low-stretch tree → j-tree →
//! recurse on the core) is provided by [`build_hierarchy`].

use flowgraph::{EdgeId, Graph, GraphError, NodeId};
use serde::{Deserialize, Serialize};

use crate::racke::{build_tree_ensemble, CapacitatedTree, RackeConfig};
use crate::sparsify::{sparsify, SparsifyConfig};

/// Where a core edge comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreEdgeOrigin {
    /// A graph edge between two different forest components; in the
    /// distributed representation communication over this core edge uses the
    /// physical edge (invariant of §3: "every core edge is also a graph
    /// edge").
    GraphEdge(EdgeId),
    /// A virtual edge replacing the minimum-capacity tree edge deleted from a
    /// portal-free skeleton path; the payload is the node whose parent edge
    /// was deleted.
    PathReplacement(NodeId),
}

/// A j-tree: a forest over the nodes of `G` (every component containing one
/// portal) plus a core multigraph on the components.
#[derive(Debug, Clone)]
pub struct JTree {
    /// Component label of every node (dense in `0..num_components`).
    pub component_of: Vec<usize>,
    /// The unique portal node of every component.
    pub portal_of_component: Vec<NodeId>,
    /// Nodes whose (tree) parent edge was removed into `F` (highly loaded).
    pub removed_high_load: Vec<NodeId>,
    /// Nodes whose (tree) parent edge was removed from a skeleton path (`D`).
    pub removed_path_edges: Vec<NodeId>,
    /// The core multigraph: node `i` is component `i`, edges carry the
    /// capacities prescribed by the construction.
    pub core: Graph,
    /// Origin of every core edge.
    pub core_origin: Vec<CoreEdgeOrigin>,
    /// The target `j` the construction was invoked with.
    pub j_target: usize,
}

impl JTree {
    /// Number of forest components (= number of portals).
    pub fn num_components(&self) -> usize {
        self.portal_of_component.len()
    }

    /// Number of portals (identical to the component count; named for
    /// readability in the experiments).
    pub fn num_portals(&self) -> usize {
        self.portal_of_component.len()
    }

    /// Returns `true` if node `v` is a portal.
    pub fn is_portal(&self, v: NodeId) -> bool {
        self.portal_of_component[self.component_of[v.index()]] == v
    }
}

/// Builds a j-tree from a capacitated spanning tree of `g` (one level of
/// Madry's construction, §8.3).
///
/// # Panics
///
/// Panics if `j == 0`.
pub fn build_jtree(g: &Graph, tree: &CapacitatedTree, j: usize) -> JTree {
    // Step 1: pick F = the most loaded tree edges, at most j of them, using
    // the geometric load classes of §4 step 3.
    assemble_jtree(g, tree, j, select_high_load_edges(tree, j))
}

/// [`build_jtree`] with `F` chosen as *exactly* the `min(j, n−1)` most loaded
/// tree edges instead of the geometric class rule.
///
/// The class rule can legitimately select an empty `F` (when the heaviest
/// class is already large), which collapses the whole graph into a single
/// component — fine for a one-shot decomposition, fatal for the recursion of
/// Theorem 8.10 that needs every level to shrink by `≈ β`, no more, no less.
/// The recursive hierarchy therefore uses this variant: with `|F| = j` the
/// core has between `j + 1` and `4j + 1` portals, giving the predictable
/// per-level geometry the recursion is built on.
///
/// # Panics
///
/// Panics if `j == 0`.
pub fn build_jtree_top_loaded(g: &Graph, tree: &CapacitatedTree, j: usize) -> JTree {
    assemble_jtree(g, tree, j, select_top_loaded_edges(tree, j))
}

/// Steps 2–8 of the construction, shared by both `F` selection rules.
fn assemble_jtree(
    g: &Graph,
    tree: &CapacitatedTree,
    j: usize,
    removed_high_load: Vec<NodeId>,
) -> JTree {
    assert!(j >= 1, "j must be at least 1");
    let n = g.num_nodes();
    let root = tree.tree.root();

    let mut removed = vec![false; n];
    for &v in &removed_high_load {
        removed[v.index()] = true;
    }

    // Step 2: components of T \ F.
    let comp_tf = components_of_forest(tree, &removed);

    // Step 3: primary portals = endpoints of removed edges.
    let mut is_portal = vec![false; n];
    for &v in &removed_high_load {
        is_portal[v.index()] = true;
        if let Some(p) = tree.tree.parent(v) {
            is_portal[p.index()] = true;
        }
    }
    // The global root always acts as a portal of its component so that every
    // component ends up with exactly one portal even when F is empty.
    is_portal[root.index()] = true;

    // Step 4: skeleton of T \ F — iteratively strip degree-1 non-portals.
    // Forest adjacency (tree edges not in F) as a flat CSR over the parent
    // links, using the child id as the link id.
    let adj = flowgraph::Csr::from_links(
        n,
        (0..n as u32)
            .map(NodeId)
            .filter_map(|v| match tree.tree.parent(v) {
                Some(p) if !removed[v.index()] => Some((EdgeId(v.0), v, p)),
                _ => None,
            }),
    );
    let mut degree: Vec<usize> = g.nodes().map(|v| adj.degree(v)).collect();
    let mut in_skeleton = vec![true; n];
    let mut queue: std::collections::VecDeque<NodeId> = g
        .nodes()
        .filter(|v| degree[v.index()] <= 1 && !is_portal[v.index()])
        .collect();
    while let Some(v) = queue.pop_front() {
        if !in_skeleton[v.index()] || is_portal[v.index()] {
            continue;
        }
        in_skeleton[v.index()] = false;
        for (_, w) in adj.incident(v) {
            if in_skeleton[w.index()] {
                degree[w.index()] -= 1;
                if degree[w.index()] <= 1 && !is_portal[w.index()] {
                    queue.push_back(w);
                }
            }
        }
    }

    // Step 5: secondary portals = skeleton nodes of degree > 2.
    for v in g.nodes() {
        if in_skeleton[v.index()] && degree[v.index()] > 2 {
            is_portal[v.index()] = true;
        }
    }

    // Step 6: on every maximal portal-free skeleton path, delete the tree
    // edge of minimum capacity (the set D) and remember a virtual
    // portal-to-portal edge of the same capacity.
    let mut removed_path_edges = Vec::new();
    let mut d_virtual: Vec<(NodeId, f64)> = Vec::new(); // (node whose parent edge was cut, capacity)
    {
        // Walk skeleton paths: consider skeleton tree edges (v, parent(v))
        // with both endpoints in the skeleton and not removed; group them into
        // maximal chains whose inner nodes are non-portal degree-2 skeleton
        // nodes.
        let mut visited = vec![false; n];
        for start in g.nodes() {
            // Start from portal skeleton nodes and walk each incident chain.
            if !in_skeleton[start.index()] || !is_portal[start.index()] {
                continue;
            }
            for (_, nb) in adj.incident(start) {
                if !in_skeleton[nb.index()] || visited[nb.index()] && is_portal[nb.index()] {
                    continue;
                }
                // Walk the chain start - nb - ... until the next portal.
                let mut prev = start;
                let mut cur = nb;
                let mut chain_min: Option<(NodeId, f64)> = None;
                let mut chain_nodes = Vec::new();
                loop {
                    // Tree edge between prev and cur: the child is whichever
                    // has the other as parent.
                    let (child, _parent) = if tree.tree.parent(cur) == Some(prev) {
                        (cur, prev)
                    } else {
                        (prev, cur)
                    };
                    if !removed[child.index()] {
                        let cap = tree
                            .tree
                            .parent_edge(child)
                            .map(|e| g.capacity(e))
                            .unwrap_or(f64::INFINITY);
                        if chain_min.map(|(_, c)| cap < c).unwrap_or(true) {
                            chain_min = Some((child, cap));
                        }
                    }
                    if is_portal[cur.index()] {
                        break;
                    }
                    chain_nodes.push(cur);
                    // Continue to the next skeleton neighbor that is not prev.
                    let next = adj
                        .incident(cur)
                        .iter()
                        .map(|(_, w)| w)
                        .find(|&w| w != prev && in_skeleton[w.index()]);
                    match next {
                        Some(w) => {
                            prev = cur;
                            cur = w;
                        }
                        None => break,
                    }
                }
                // Only process each chain once: mark inner nodes visited and
                // skip when the chain was already walked from the other side.
                if chain_nodes.iter().any(|v| visited[v.index()]) {
                    continue;
                }
                if chain_nodes.is_empty() && start.index() > cur.index() {
                    // A direct portal-portal skeleton edge: process from the
                    // smaller endpoint only.
                    continue;
                }
                for v in &chain_nodes {
                    visited[v.index()] = true;
                }
                if let Some((child, cap)) = chain_min {
                    removed_path_edges.push(child);
                    d_virtual.push((child, cap));
                }
            }
        }
    }
    for &v in &removed_path_edges {
        removed[v.index()] = true;
    }

    // Step 7: components of T \ (F ∪ D); each contains exactly one portal.
    let component_of = components_of_forest(tree, &removed);
    let num_components = component_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut portal_of_component = vec![None; num_components];
    for v in g.nodes() {
        if is_portal[v.index()] {
            let c = component_of[v.index()];
            // Prefer the first portal encountered; components produced by the
            // construction contain exactly one, which tests assert.
            if portal_of_component[c].is_none() {
                portal_of_component[c] = Some(v);
            }
        }
    }
    let portal_of_component: Vec<NodeId> = portal_of_component
        .into_iter()
        .enumerate()
        .map(|(c, p)| p.unwrap_or_else(|| panic!("component {c} has no portal")))
        .collect();

    // Step 8: the core — virtual D edges plus graph edges between different
    // components of T \ F, both attached to the portals of their components.
    let mut core = Graph::with_nodes(num_components);
    let mut core_origin = Vec::new();
    for (child, cap) in d_virtual {
        let parent = tree.tree.parent(child).expect("D edges are tree edges");
        let cu = component_of[child.index()];
        let cv = component_of[parent.index()];
        if cu != cv {
            core.add_edge(NodeId(cu as u32), NodeId(cv as u32), cap)
                .expect("valid core edge");
            core_origin.push(CoreEdgeOrigin::PathReplacement(child));
        }
    }
    for (id, e) in g.edges() {
        let cu = comp_tf[e.tail.index()];
        let cv = comp_tf[e.head.index()];
        if cu == cv {
            continue;
        }
        let ju = component_of[e.tail.index()];
        let jv = component_of[e.head.index()];
        if ju == jv {
            continue;
        }
        core.add_edge(NodeId(ju as u32), NodeId(jv as u32), e.capacity)
            .expect("valid core edge");
        core_origin.push(CoreEdgeOrigin::GraphEdge(id));
    }

    JTree {
        component_of,
        portal_of_component,
        removed_high_load,
        removed_path_edges,
        core,
        core_origin,
        j_target: j,
    }
}

/// Selects the set `F` of at most `j` tree edges with the highest relative
/// load, using the geometric classes of §4 step 3 (returns the child node of
/// every selected edge).
fn select_high_load_edges(tree: &CapacitatedTree, j: usize) -> Vec<NodeId> {
    let n = tree.tree.num_nodes();
    let mut candidates: Vec<(f64, NodeId)> = (0..n)
        .map(|v| NodeId(v as u32))
        .filter(|&v| tree.tree.parent(v).is_some())
        .map(|v| (tree.rload[v.index()], v))
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let r = candidates[0].0.max(1.0);
    let imax = ((candidates.len() as f64).log2().ceil() as usize + 1).max(1);
    // Geometric classes: class i holds rload in (R/2^i, R/2^{i-1}].
    let class_of = |rload: f64| -> usize {
        if rload <= 0.0 {
            return usize::MAX;
        }
        let ratio = r / rload;
        (ratio.log2().floor() as usize) + 1
    };
    let mut class_sizes = std::collections::BTreeMap::new();
    for &(rl, _) in &candidates {
        *class_sizes.entry(class_of(rl)).or_insert(0usize) += 1;
    }
    // Minimal i0 whose class has at least j/imax edges.
    let threshold = (j / imax).max(1);
    let mut i0 = *class_sizes.keys().next().unwrap_or(&1);
    for (&i, &size) in &class_sizes {
        if size >= threshold {
            i0 = i;
            break;
        }
    }
    // F = edges in classes strictly before i0 (rload > R / 2^{i0-1}),
    // capped at j for safety.
    let mut f: Vec<NodeId> = candidates
        .iter()
        .filter(|(rl, _)| class_of(*rl) < i0)
        .map(|&(_, v)| v)
        .collect();
    f.truncate(j);
    f
}

/// Selects exactly the `min(j, n−1)` most loaded tree edges (the `F` rule of
/// [`build_jtree_top_loaded`]); ties broken by node id for determinism.
fn select_top_loaded_edges(tree: &CapacitatedTree, j: usize) -> Vec<NodeId> {
    let n = tree.tree.num_nodes();
    let mut candidates: Vec<(f64, NodeId)> = (0..n)
        .map(|v| NodeId(v as u32))
        .filter(|&v| tree.tree.parent(v).is_some())
        .map(|v| (tree.rload[v.index()], v))
        .collect();
    candidates.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    candidates.truncate(j);
    candidates.into_iter().map(|(_, v)| v).collect()
}

/// Labels the components of the forest obtained from the tree by removing the
/// parent edges of the flagged nodes.
fn components_of_forest(tree: &CapacitatedTree, removed: &[bool]) -> Vec<usize> {
    let n = tree.tree.num_nodes();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    for &v in tree.tree.preorder() {
        if tree.tree.parent(v).is_none() || removed[v.index()] {
            label[v.index()] = next;
            next += 1;
        } else {
            let p = tree.tree.parent(v).expect("non-root has parent");
            label[v.index()] = label[p.index()];
        }
    }
    label
}

/// One level of the recursive construction of Theorem 8.10.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchyLevel {
    /// Nodes of the graph at this level (clusters of the previous level).
    pub num_nodes: usize,
    /// Edges before sparsification.
    pub num_edges: usize,
    /// Edges after sparsification.
    pub num_sparsified_edges: usize,
    /// The `j` used at this level.
    pub j: usize,
    /// Number of portals / core nodes produced.
    pub num_portals: usize,
    /// Number of core edges produced.
    pub num_core_edges: usize,
}

/// Statistics of a full recursive hierarchy construction (used by experiment
/// E7; the congestion approximator itself uses the flat `O(log n)`-tree
/// ensemble, which Lemma 3.3 shows is sufficient).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hierarchy {
    /// Per-level statistics, outermost level first.
    pub levels: Vec<HierarchyLevel>,
}

/// Runs the recursion of Theorem 8.10: sparsify, build a low-stretch tree,
/// extract a `(n/β)`-tree, then recurse on its core until the core has at
/// most `stop_at` nodes.
///
/// # Errors
///
/// Propagates construction errors (empty or disconnected inputs).
///
/// # Panics
///
/// Panics if `beta <= 1.0`.
pub fn build_hierarchy(
    g: &Graph,
    beta: f64,
    stop_at: usize,
    seed: u64,
) -> Result<Hierarchy, GraphError> {
    assert!(beta > 1.0, "beta must exceed 1");
    let mut levels = Vec::new();
    let mut current = g.clone();
    let mut level_seed = seed;
    while current.num_nodes() > stop_at.max(2) && levels.len() < 32 {
        let num_nodes = current.num_nodes();
        let num_edges = current.num_edges();
        let sparse = if current.num_edges() > 4 * current.num_nodes() {
            sparsify(
                &current,
                &SparsifyConfig {
                    epsilon: 0.5,
                    oversampling: 2.0,
                    seed: level_seed,
                },
            )
            .graph
        } else {
            current.clone()
        };
        let (sparse_labels, pieces) = sparse.components();
        let sparse = if pieces > 1 {
            // Sparsification kept connectivity by construction, but guard
            // against pathological randomness by falling back to the input.
            let _ = sparse_labels;
            current.clone()
        } else {
            sparse
        };
        let ensemble = build_tree_ensemble(
            &sparse,
            &RackeConfig::default()
                .with_num_trees(1)
                .with_seed(level_seed),
        )?;
        let j = ((num_nodes as f64 / beta).ceil() as usize).max(1);
        let jtree = build_jtree(&sparse, &ensemble.trees[0], j);
        levels.push(HierarchyLevel {
            num_nodes,
            num_edges,
            num_sparsified_edges: sparse.num_edges(),
            j,
            num_portals: jtree.num_portals(),
            num_core_edges: jtree.core.num_edges(),
        });
        if jtree.num_portals() >= num_nodes || jtree.core.num_edges() == 0 {
            break;
        }
        // Recurse on the core, merging parallel edges to keep it a graph of
        // manageable size (the paper keeps multigraphs; merging parallel
        // edges only strengthens the core's cuts and is the standard step 9
        // of the centralized construction).
        current = merge_parallel_edges(&jtree.core);
        level_seed = level_seed.wrapping_add(1);
    }
    Ok(Hierarchy { levels })
}

/// Merges parallel edges of a multigraph, summing their capacities (step 9 of
/// the centralized routine in §4).
pub fn merge_parallel_edges(g: &Graph) -> Graph {
    let mut sums: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for (_, e) in g.edges() {
        let key = if e.tail.index() <= e.head.index() {
            (e.tail.index(), e.head.index())
        } else {
            (e.head.index(), e.tail.index())
        };
        *sums.entry(key).or_insert(0.0) += e.capacity;
    }
    let mut out = Graph::with_nodes(g.num_nodes());
    for ((u, v), cap) in sums {
        out.add_edge(NodeId(u as u32), NodeId(v as u32), cap)
            .expect("merged edge endpoints are valid");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::gen;

    fn capacitated_tree(g: &Graph, seed: u64) -> CapacitatedTree {
        let ensemble =
            build_tree_ensemble(g, &RackeConfig::default().with_num_trees(1).with_seed(seed))
                .unwrap();
        ensemble.trees.into_iter().next().unwrap()
    }

    #[test]
    fn portal_count_is_bounded() {
        let g = gen::grid(8, 8, 1.0);
        let tree = capacitated_tree(&g, 1);
        for j in [2usize, 4, 8, 16] {
            let jt = build_jtree(&g, &tree, j);
            assert!(
                jt.num_portals() <= 4 * j + 1,
                "j = {j}: {} portals exceeds 4j + 1",
                jt.num_portals()
            );
        }
    }

    #[test]
    fn every_component_has_exactly_one_portal() {
        let g = gen::random_gnp(50, 0.15, (1.0, 5.0), 3);
        let tree = capacitated_tree(&g, 2);
        let jt = build_jtree(&g, &tree, 6);
        // portal_of_component is total by construction (panics otherwise);
        // additionally check that no component contains two portals that are
        // *primary* (endpoints of removed edges map to distinct components
        // only when the construction is consistent).
        for (c, &p) in jt.portal_of_component.iter().enumerate() {
            assert_eq!(jt.component_of[p.index()], c);
            assert!(jt.is_portal(p));
        }
        assert_eq!(
            jt.component_of.iter().copied().max().unwrap() + 1,
            jt.num_components()
        );
    }

    #[test]
    fn core_edges_connect_distinct_components() {
        let g = gen::grid(6, 6, 1.0);
        let tree = capacitated_tree(&g, 4);
        let jt = build_jtree(&g, &tree, 5);
        assert_eq!(jt.core.num_nodes(), jt.num_components());
        assert_eq!(jt.core.num_edges(), jt.core_origin.len());
        for (_, e) in jt.core.edges() {
            assert_ne!(e.tail, e.head);
        }
    }

    #[test]
    fn trivial_j_tree_when_j_covers_everything() {
        let g = gen::path(10, 1.0);
        let tree = capacitated_tree(&g, 5);
        // With j >= n-1 every tree edge may be removed; the construction must
        // still produce a consistent structure.
        let jt = build_jtree(&g, &tree, 20);
        assert!(jt.num_portals() >= 1);
        assert!(jt.num_portals() <= 10);
    }

    #[test]
    fn removed_edges_have_high_load() {
        let g = gen::barbell(6, 3, 1.0, 1.0);
        let tree = capacitated_tree(&g, 6);
        let jt = build_jtree(&g, &tree, 3);
        if jt.removed_high_load.is_empty() {
            return; // nothing removed: fine for small j on benign trees
        }
        let min_removed: f64 = jt
            .removed_high_load
            .iter()
            .map(|v| tree.rload[v.index()])
            .fold(f64::INFINITY, f64::min);
        let max_any = tree.max_rload();
        assert!(
            min_removed >= max_any / 16.0,
            "removed edges should be among the most loaded"
        );
    }

    #[test]
    fn merge_parallel_edges_sums_capacities() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(0), 2.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 3.0).unwrap();
        let merged = merge_parallel_edges(&g);
        assert_eq!(merged.num_edges(), 2);
        assert!((merged.total_capacity() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_shrinks_levels() {
        let g = gen::random_gnp(120, 0.08, (1.0, 4.0), 9);
        let h = build_hierarchy(&g, 4.0, 10, 1).unwrap();
        assert!(!h.levels.is_empty());
        for w in h.levels.windows(2) {
            assert!(
                w[1].num_nodes <= w[0].num_nodes,
                "levels must not grow: {:?}",
                h.levels
            );
        }
        // The top level covers the whole graph.
        assert_eq!(h.levels[0].num_nodes, 120);
    }
}
