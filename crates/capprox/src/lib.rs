//! Congestion approximators for the distributed max-flow reproduction
//! (paper §2, §4, §6, §8).
//!
//! A congestion approximator is a linear operator `R` with
//! `‖Rb‖_∞ ≤ opt(b) ≤ α·‖Rb‖_∞` for every demand vector `b`, where `opt(b)`
//! is the smallest possible maximum edge congestion of any routing of `b`.
//! Sherman's gradient descent (implemented in the `maxflow` crate) needs `R`
//! and `Rᵀ` as black boxes; this crate builds them from:
//!
//! * [`mod@sparsify`] — cut sparsifiers (§6) that shrink dense graphs before
//!   the expensive tree constructions;
//! * [`racke`] — Räcke-style distributions of capacitated low-stretch
//!   spanning trees built by multiplicative weight updates (§2, §8.2);
//! * [`jtree`] — Madry's j-tree construction with portals and skeletons
//!   (§4, §8.3);
//! * [`mod@hierarchy`] — the recursive j-tree hierarchy of Theorem 8.10,
//!   which assembles the ensemble level by level so preparation stays
//!   affordable at millions of nodes;
//! * [`approximator`] — the `O(log n)`-sample tree-cut approximator of
//!   Lemma 3.3 with `R·b` / `Rᵀ·y` evaluation by tree aggregation (§9.1).
//!
//! # Example
//!
//! An approximator is built once per graph and then evaluated many times —
//! the posture of the `maxflow::PreparedMaxFlow` session, whose queries call
//! the borrowed-scratch operators [`CongestionApproximator::apply_into`] /
//! [`CongestionApproximator::apply_transpose_into`] so that repeated
//! evaluations allocate nothing once the [`OperatorScratch`] is warm:
//!
//! ```
//! use capprox::{CongestionApproximator, OperatorScratch, RackeConfig};
//! use flowgraph::{gen, Demand, NodeId};
//!
//! let g = gen::grid(5, 5, 1.0);
//! let r = CongestionApproximator::build(&g, &RackeConfig::default()).unwrap();
//! let b = Demand::st(&g, NodeId(0), NodeId(24), 1.0);
//! let lower = r.congestion_lower_bound(&b);
//! let upper = r.congestion_upper_bound(&g, &b);
//! assert!(lower <= upper);
//!
//! // Allocation-free evaluation with caller-owned buffers (one per session,
//! // reused across gradient iterations).
//! let mut scratch = OperatorScratch::for_nodes(g.num_nodes());
//! let mut rows = vec![0.0; r.num_rows()];
//! r.apply_into(&b, &mut rows, &mut scratch).unwrap();
//! assert_eq!(rows, r.apply(&b).unwrap());
//! ```
//!
//! The allocating [`CongestionApproximator::apply`] /
//! [`CongestionApproximator::apply_transpose`] remain as conveniences for
//! one-off evaluations; misuse (a demand or price vector of the wrong
//! dimension) is reported as `GraphError::DemandMismatch` by both forms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximator;
pub mod hierarchy;
pub mod jtree;
pub mod racke;
pub mod sparsify;

pub use approximator::{
    exhaustive_opt_congestion, ApproximatorStats, CapacityChange, CapacityUpdateStats,
    CongestionApproximator, OperatorScratch,
};
pub use hierarchy::{
    build_hierarchical_ensemble, ChainStats, HierarchyConfig, HierarchyLevelStats, HierarchyStats,
};
pub use jtree::{
    build_hierarchy, build_jtree, build_jtree_top_loaded, CoreEdgeOrigin, Hierarchy, JTree,
};
pub use racke::{build_tree_ensemble, CapacitatedTree, EnsembleStats, RackeConfig, TreeEnsemble};
pub use sparsify::{forest_indices, sparsify, Sparsifier, SparsifyConfig};
