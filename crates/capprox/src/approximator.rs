//! The congestion approximator `R` (paper §2 and Lemma 3.3).
//!
//! `R` has one row per (tree, non-root node) pair of a sampled tree ensemble:
//! the row for node `v` of tree `T` evaluates, for a demand vector `b`, the
//! congestion `|Σ_{w ∈ subtree_T(v)} b_w| / cap_G(δ(subtree_T(v)))` that any
//! routing of `b` must place on the cut induced by `v`'s parent edge. Because
//! every row is the congestion of an actual cut of `G`,
//! `‖Rb‖_∞ ≤ opt(b)` holds unconditionally; the tree-distribution argument
//! (Lemma 3.3) bounds the other direction by a factor `α`.
//!
//! The two linear operators needed by Sherman's gradient descent — `R·b` and
//! `Rᵀ·y` — are tree aggregations: subtree sums for `R` and root-to-node
//! prefix sums for `Rᵀ` (§9.1), which is what makes the distributed
//! evaluation possible in `Õ(√n + D)` rounds. The same independence that
//! makes the *distributed* evaluation cheap makes the *threaded* one cheap:
//! each tree's aggregation touches only that tree, so
//! [`CongestionApproximator::apply_into_par`] and
//! [`CongestionApproximator::apply_transpose_into_par`] fan the per-tree work
//! across a worker pool and reduce in fixed tree order, producing results
//! byte-identical to the sequential evaluation for any thread count.
//!
//! # Level-ordered slot layout
//!
//! Construction flattens every tree into a struct-of-arrays view
//! (`TreeSlots`, private): nodes are permuted into *slots* following the
//! tree's BFS preorder (slot 0 is the root, each level is a contiguous slot
//! range, every parent precedes its children), and the per-slot parent index
//! and cut capacity live in flat arrays. Both aggregations then run as plain
//! index sweeps over contiguous `f64` buffers — a reverse sweep
//! `buf[parent[i]] += buf[i]` for the subtree sums, a forward sweep
//! `buf[i] = buf[parent[i]] + price[i]` for the prefix sums — with no
//! `Option` branches or per-node child-list chasing on the hot path. The slot
//! order is exactly the preorder the original per-node walks followed, so
//! every floating-point addition happens in the same sequence on the same
//! values: results are bit-for-bit identical to the pointer-chasing
//! evaluation, just faster.

use flowgraph::{Demand, EdgeId, Graph, GraphError};
use parallel::Parallelism;
use serde::{Deserialize, Serialize};

use crate::hierarchy::{build_hierarchical_ensemble, HierarchyConfig, HierarchyStats};
use crate::racke::{build_tree_ensemble, CapacitatedTree, RackeConfig, TreeEnsemble};

/// A congestion approximator built from an ensemble of capacitated spanning
/// trees.
#[derive(Debug, Clone)]
pub struct CongestionApproximator {
    trees: Vec<CapacitatedTree>,
    /// One flattened slot view per tree, same order as `trees`.
    slots: Vec<TreeSlots>,
    num_nodes: usize,
    /// Per-level quality bookkeeping when the ensemble came from the
    /// recursive hierarchy ([`Self::build_hierarchical`]); `None` for direct
    /// builds.
    hierarchy: Option<HierarchyStats>,
}

/// Dispatches a lane-blocked kernel call to a monomorphized instantiation
/// for the common lane counts (`K = 1..=8`, the session block width and its
/// compaction tails) and to the dynamic fallback (`K = 0`, meaning "read the
/// runtime lane count") otherwise. The lane-inner loops of the blocked
/// kernels only vectorize when the trip count is a compile-time constant;
/// with a runtime `k` the autovectorizer gives up and the blocked sweeps run
/// *slower* than `k` scalar sweeps. Every instantiation executes the exact
/// same operations in the same order, so byte-identity is unaffected.
macro_rules! lane_dispatch {
    ($k:expr, $slf:ident.$f:ident($($args:expr),* $(,)?)) => {
        match $k {
            1 => $slf.$f::<1>($($args),*),
            2 => $slf.$f::<2>($($args),*),
            3 => $slf.$f::<3>($($args),*),
            4 => $slf.$f::<4>($($args),*),
            5 => $slf.$f::<5>($($args),*),
            6 => $slf.$f::<6>($($args),*),
            7 => $slf.$f::<7>($($args),*),
            8 => $slf.$f::<8>($($args),*),
            _ => $slf.$f::<0>($($args),*),
        }
    };
}

/// Flattened, level-ordered view of one capacitated tree (see the module
/// docs): node `node_at_slot[i]` occupies slot `i`, slots follow the tree's
/// BFS preorder, and `parent_slot[i] < i` for every non-root slot.
#[derive(Debug, Clone)]
struct TreeSlots {
    /// Slot of the parent of the node at each slot; the root slot (0) maps to
    /// itself.
    parent_slot: Vec<u32>,
    /// Node index occupying each slot (the BFS preorder permutation).
    node_at_slot: Vec<u32>,
    /// Inverse permutation: slot occupied by each node.
    slot_of_node: Vec<u32>,
    /// Cut capacity of each slot's parent edge (0 at the root slot).
    cut_capacity: Vec<f64>,
}

impl TreeSlots {
    fn new(t: &CapacitatedTree) -> Self {
        let n = t.tree.num_nodes();
        let order = t.tree.preorder();
        let mut slot_of_node = vec![0u32; n];
        for (slot, &v) in order.iter().enumerate() {
            slot_of_node[v.index()] = slot as u32;
        }
        let mut parent_slot = vec![0u32; n];
        let mut node_at_slot = vec![0u32; n];
        let mut cut_capacity = vec![0.0; n];
        for (slot, &v) in order.iter().enumerate() {
            node_at_slot[slot] = v.index() as u32;
            cut_capacity[slot] = t.cut_capacity[v.index()];
            parent_slot[slot] = match t.tree.parent(v) {
                // Parents precede children in the preorder, so the parent's
                // slot is already final.
                Some(p) => slot_of_node[p.index()],
                None => slot as u32,
            };
        }
        TreeSlots {
            parent_slot,
            node_at_slot,
            slot_of_node,
            cut_capacity,
        }
    }

    /// Subtree sums of the node-indexed `values`, left in slot space in
    /// `buf`. The reverse sweep performs the same additions in the same order
    /// as [`flowgraph::RootedTree::subtree_sums_into`].
    fn subtree_sums_to_slots(&self, values: &[f64], buf: &mut [f64]) {
        for (x, &v) in buf.iter_mut().zip(&self.node_at_slot) {
            *x = values[v as usize];
        }
        for i in (1..buf.len()).rev() {
            let add = buf[i];
            buf[self.parent_slot[i] as usize] += add;
        }
    }

    /// Divides the slot-space subtree sums in `buf` by the cut capacities and
    /// gathers the rows back into node order (`out[v]` is the row of node
    /// `v`, matching the public row layout).
    fn rows_from_slots(&self, buf: &[f64], out: &mut [f64]) {
        for (r, &slot) in out.iter_mut().zip(&self.slot_of_node) {
            let cap = self.cut_capacity[slot as usize];
            let sum = buf[slot as usize];
            *r = if cap > 0.0 { sum / cap } else { 0.0 };
        }
    }

    /// One tree's `R·b` rows: subtree sums, then the capacity division, all
    /// through the slot permutation. `buf` is a node-sized scratch.
    fn apply_rows(&self, values: &[f64], buf: &mut [f64], out: &mut [f64]) {
        self.subtree_sums_to_slots(values, buf);
        self.rows_from_slots(buf, out);
    }

    /// Gathers one tree's block of the row-indexed price vector `y_rows`
    /// (node order) into slot space, dividing by the cut capacities — the
    /// per-row `y_i / cap_i` scaling of `Rᵀ`.
    fn prices_to_slots(&self, y_rows: &[f64], prices: &mut [f64]) {
        for ((p, &v), &cap) in prices
            .iter_mut()
            .zip(&self.node_at_slot)
            .zip(&self.cut_capacity)
        {
            *p = if cap > 0.0 {
                y_rows[v as usize] / cap
            } else {
                0.0
            };
        }
    }

    /// Root-to-slot prefix sums of the slot-space `prices` into `buf`. The
    /// forward sweep performs the same additions in the same order as
    /// [`flowgraph::RootedTree::prefix_sums_from_root_into`].
    fn prefix_sums_in_slots(&self, prices: &[f64], buf: &mut [f64]) {
        if buf.is_empty() {
            return;
        }
        buf[0] = 0.0 + prices[0];
        for i in 1..buf.len() {
            buf[i] = buf[self.parent_slot[i] as usize] + prices[i];
        }
    }

    /// Accumulates the slot-space prefix sums in `buf` into the node-indexed
    /// `potentials` (the `π += ` reduction of `Rᵀ`, in node order like the
    /// original per-node loop).
    fn add_potentials_from_slots(&self, buf: &[f64], potentials: &mut [f64]) {
        for (p, &slot) in potentials.iter_mut().zip(&self.slot_of_node) {
            *p += buf[slot as usize];
        }
    }

    /// Blocked counterpart of [`Self::subtree_sums_to_slots`]: `values_block`
    /// holds `k` lane-major right-hand sides (`values_block[v*k + l]` is lane
    /// `l` of node `v`) and `buf` receives the `k` subtree-sum lanes of every
    /// slot. The sweep is element-outer / lane-inner, so each lane sees
    /// exactly the additions of the `k = 1` sweep in the same order — every
    /// lane is byte-identical to a scalar evaluation of that right-hand side,
    /// while the `parent_slot` walk (the bandwidth-bound part at scale) is
    /// paid once for all `k` lanes.
    fn subtree_sums_to_slots_block(&self, values_block: &[f64], k: usize, buf: &mut [f64]) {
        lane_dispatch!(k, self.subtree_sums_to_slots_impl(values_block, k, buf));
    }

    #[inline(always)]
    fn subtree_sums_to_slots_impl<const K: usize>(
        &self,
        values_block: &[f64],
        k_dyn: usize,
        buf: &mut [f64],
    ) {
        let k = if K > 0 { K } else { k_dyn };
        for (chunk, &v) in buf.chunks_exact_mut(k).zip(&self.node_at_slot) {
            chunk.copy_from_slice(&values_block[v as usize * k..][..k]);
        }
        for i in (1..self.parent_slot.len()).rev() {
            let p = self.parent_slot[i] as usize;
            // Parents precede children in the level order (`p < i`), so the
            // parent window and the child window are disjoint; the split lets
            // the compiler see that and keep the lane loop vectorized.
            let (head, tail) = buf.split_at_mut(i * k);
            let parent = &mut head[p * k..p * k + k];
            for (dst, &add) in parent.iter_mut().zip(&tail[..k]) {
                *dst += add;
            }
        }
    }

    /// Blocked counterpart of [`Self::rows_from_slots`]: divides every lane
    /// of the slot-space subtree sums by the (lane-independent) cut capacity
    /// and gathers the rows back into node order, lane-major.
    fn rows_from_slots_block(&self, buf: &[f64], k: usize, out: &mut [f64]) {
        lane_dispatch!(k, self.rows_from_slots_impl(buf, k, out));
    }

    #[inline(always)]
    fn rows_from_slots_impl<const K: usize>(&self, buf: &[f64], k_dyn: usize, out: &mut [f64]) {
        let k = if K > 0 { K } else { k_dyn };
        for (chunk, &slot) in out.chunks_exact_mut(k).zip(&self.slot_of_node) {
            let cap = self.cut_capacity[slot as usize];
            if cap > 0.0 {
                let src = &buf[slot as usize * k..][..k];
                for (r, &sum) in chunk.iter_mut().zip(src) {
                    *r = sum / cap;
                }
            } else {
                chunk.fill(0.0);
            }
        }
    }

    /// One tree's `k` lanes of `R·b` rows in one slot walk. `buf` is a
    /// `slots × k` scratch.
    fn apply_rows_block(&self, values_block: &[f64], k: usize, buf: &mut [f64], out: &mut [f64]) {
        self.subtree_sums_to_slots_block(values_block, k, buf);
        self.rows_from_slots_block(buf, k, out);
    }

    /// Blocked counterpart of [`Self::prices_to_slots`]: gathers `k` lanes of
    /// one tree's row-indexed prices into slot space, dividing each lane by
    /// the cut capacity.
    fn prices_to_slots_block(&self, y_rows_block: &[f64], k: usize, prices: &mut [f64]) {
        lane_dispatch!(k, self.prices_to_slots_impl(y_rows_block, k, prices));
    }

    #[inline(always)]
    fn prices_to_slots_impl<const K: usize>(
        &self,
        y_rows_block: &[f64],
        k_dyn: usize,
        prices: &mut [f64],
    ) {
        let k = if K > 0 { K } else { k_dyn };
        for ((chunk, &v), &cap) in prices
            .chunks_exact_mut(k)
            .zip(&self.node_at_slot)
            .zip(&self.cut_capacity)
        {
            if cap > 0.0 {
                let src = &y_rows_block[v as usize * k..][..k];
                for (p, &y) in chunk.iter_mut().zip(src) {
                    *p = y / cap;
                }
            } else {
                chunk.fill(0.0);
            }
        }
    }

    /// Blocked counterpart of [`Self::prefix_sums_in_slots`]: the forward
    /// sweep walks the slots once and advances all `k` prefix-sum lanes,
    /// each lane adding in the `k = 1` order.
    fn prefix_sums_in_slots_block(&self, prices: &[f64], k: usize, buf: &mut [f64]) {
        lane_dispatch!(k, self.prefix_sums_in_slots_impl(prices, k, buf));
    }

    #[inline(always)]
    fn prefix_sums_in_slots_impl<const K: usize>(
        &self,
        prices: &[f64],
        k_dyn: usize,
        buf: &mut [f64],
    ) {
        let k = if K > 0 { K } else { k_dyn };
        if self.parent_slot.is_empty() {
            return;
        }
        for (b, &p) in buf[..k].iter_mut().zip(&prices[..k]) {
            *b = 0.0 + p;
        }
        for i in 1..self.parent_slot.len() {
            let p = self.parent_slot[i] as usize;
            // `p < i` (parents precede children), so the parent window is
            // entirely inside `head` and disjoint from the slot being written.
            let (head, tail) = buf.split_at_mut(i * k);
            let parent = &head[p * k..p * k + k];
            let src = &prices[i * k..i * k + k];
            for ((dst, &a), &b) in tail[..k].iter_mut().zip(parent).zip(src) {
                *dst = a + b;
            }
        }
    }

    /// Blocked counterpart of [`Self::add_potentials_from_slots`]:
    /// accumulates all `k` prefix-sum lanes into the lane-major node-indexed
    /// potentials, in node order like the scalar loop.
    fn add_potentials_from_slots_block(&self, buf: &[f64], k: usize, potentials: &mut [f64]) {
        lane_dispatch!(k, self.add_potentials_from_slots_impl(buf, k, potentials));
    }

    #[inline(always)]
    fn add_potentials_from_slots_impl<const K: usize>(
        &self,
        buf: &[f64],
        k_dyn: usize,
        potentials: &mut [f64],
    ) {
        let k = if K > 0 { K } else { k_dyn };
        for (chunk, &slot) in potentials.chunks_exact_mut(k).zip(&self.slot_of_node) {
            let src = &buf[slot as usize * k..][..k];
            for (p, &x) in chunk.iter_mut().zip(src) {
                *p += x;
            }
        }
    }
}

// The parallel operator evaluations share `&CongestionApproximator` (and the
// ensembles it is built from) across worker threads; pin thread-safety at
// compile time so a future field can't silently revoke it.
const _: fn() = parallel::assert_send_sync::<CongestionApproximator>;
const _: fn() = parallel::assert_send_sync::<TreeEnsemble>;
const _: fn() = parallel::assert_send_sync::<CapacitatedTree>;
const _: fn() = parallel::assert_send_sync::<OperatorScratch>;

/// Reusable node-sized buffers for the allocation-free operator evaluations
/// [`CongestionApproximator::apply_into`] and
/// [`CongestionApproximator::apply_transpose_into`].
///
/// Construct once (or use `Default` and let the first evaluation size it) and
/// pass `&mut` per call: after the first call on a given approximator no
/// further heap allocation happens, which is what keeps the session API's
/// gradient iterations allocation-free.
#[derive(Debug, Clone, Default)]
pub struct OperatorScratch {
    node_a: Vec<f64>,
    node_b: Vec<f64>,
    /// Tree-major workspaces (`num_trees × num_nodes`) backing the parallel
    /// operator evaluations: each tree's worker gets its own disjoint
    /// node-sized chunk, so no two workers share a buffer. Sized lazily on
    /// the first parallel call — sequential callers never pay for them.
    tree_a: Vec<f64>,
    tree_b: Vec<f64>,
}

impl OperatorScratch {
    /// Scratch pre-sized for an `n`-node approximator.
    pub fn for_nodes(n: usize) -> Self {
        OperatorScratch {
            node_a: vec![0.0; n],
            node_b: vec![0.0; n],
            tree_a: Vec::new(),
            tree_b: Vec::new(),
        }
    }

    /// Grows (or shrinks) the buffers to cover `n` nodes; a no-op when the
    /// size already matches, so warm buffers stay warm.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.node_a.len() != n {
            self.node_a.resize(n, 0.0);
        }
        if self.node_b.len() != n {
            self.node_b.resize(n, 0.0);
        }
    }

    /// Sizes the tree-major workspaces for a `trees × n` parallel evaluation
    /// (`both` additionally sizes the second workspace, needed by `Rᵀ`).
    /// No-op once warm, like [`Self::ensure_nodes`].
    fn ensure_tree_major(&mut self, trees: usize, n: usize, both: bool) {
        let len = trees * n;
        if self.tree_a.len() != len {
            self.tree_a.resize(len, 0.0);
        }
        if both && self.tree_b.len() != len {
            self.tree_b.resize(len, 0.0);
        }
    }
}

/// Summary statistics describing an approximator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproximatorStats {
    /// Number of trees in the ensemble.
    pub num_trees: usize,
    /// Number of rows of `R` (trees × nodes; root rows are identically 0).
    pub num_rows: usize,
    /// The provable quality bound `min_T max_e rload_T(e)` (route everything
    /// on the single best tree).
    pub provable_alpha: f64,
}

/// One edge-capacity change for
/// [`CongestionApproximator::update_capacities`]: `edge` moved from capacity
/// `old` to capacity `new`. The graph passed alongside the changes must
/// already hold the new capacities (apply [`Graph::set_capacity`] first).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityChange {
    /// The edge whose capacity changed.
    pub edge: EdgeId,
    /// The capacity the approximator was last prepared with.
    pub old: f64,
    /// The capacity the graph now holds.
    pub new: f64,
}

/// Work counters from one incremental
/// [`CongestionApproximator::update_capacities`] call, for asserting that the
/// incremental path actually ran (and how much it touched) instead of a
/// silent full rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CapacityUpdateStats {
    /// Trees in the ensemble (all of them are inspected).
    pub trees_total: usize,
    /// Trees where at least one cut capacity changed.
    pub trees_touched: usize,
    /// Total `(tree, node)` cut-capacity entries patched — the actual work
    /// done, proportional to the tree-path lengths of the changed edges, not
    /// to the graph size.
    pub slots_patched: usize,
}

impl CongestionApproximator {
    /// Wraps an explicit tree ensemble as an approximator, building the
    /// flattened slot views the operator sweeps run over.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if the ensemble contains no
    /// trees: an approximator with zero rows would report `‖Rb‖_∞ = 0` for
    /// every demand, silently certifying nonsense instead of failing.
    pub fn from_ensemble(ensemble: TreeEnsemble) -> Result<Self, GraphError> {
        let Some(first) = ensemble.trees.first() else {
            return Err(GraphError::InvalidConfig {
                parameter: "ensemble",
                reason: "must contain at least one tree (R would have no rows)",
            });
        };
        let num_nodes = first.tree.num_nodes();
        let slots = ensemble.trees.iter().map(TreeSlots::new).collect();
        Ok(CongestionApproximator {
            trees: ensemble.trees,
            slots,
            num_nodes,
            hierarchy: None,
        })
    }

    /// [`Self::from_ensemble`] with the hierarchy's per-level quality
    /// bookkeeping attached (retrievable via [`Self::hierarchy_stats`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::from_ensemble`].
    pub fn from_ensemble_with_hierarchy(
        ensemble: TreeEnsemble,
        stats: HierarchyStats,
    ) -> Result<Self, GraphError> {
        let mut approx = Self::from_ensemble(ensemble)?;
        approx.hierarchy = Some(stats);
        Ok(approx)
    }

    /// Builds the approximator for `g` by constructing a Räcke-style tree
    /// ensemble (Lemma 3.3: `O(log n)` sampled trees).
    ///
    /// # Errors
    ///
    /// Propagates construction errors for empty or disconnected graphs.
    pub fn build(g: &Graph, config: &RackeConfig) -> Result<Self, GraphError> {
        Self::from_ensemble(build_tree_ensemble(g, config)?)
    }

    /// Builds the approximator through the recursive j-tree hierarchy of
    /// Theorem 8.10 (see [`crate::hierarchy`]) — the scalable counterpart of
    /// [`Self::build`] for million-node graphs. The lifted trees are genuine
    /// capacitated spanning trees of `g`, so every certificate and operator
    /// behaves exactly as for a direct build; the hierarchy's per-level
    /// bookkeeping is available via [`Self::hierarchy_stats`].
    ///
    /// # Example
    ///
    /// ```
    /// use capprox::{CongestionApproximator, HierarchyConfig, RackeConfig};
    /// use flowgraph::{gen, Demand, NodeId};
    ///
    /// let g = gen::grid(20, 20, 1.0);
    /// let r = CongestionApproximator::build_hierarchical(
    ///     &g,
    ///     &HierarchyConfig::default().with_direct_threshold(64),
    ///     &RackeConfig::default().with_num_trees(2),
    /// )
    /// .unwrap();
    /// let b = Demand::st(&g, NodeId(0), NodeId(399), 1.0);
    /// assert!(r.congestion_lower_bound(&b) <= r.congestion_upper_bound(&g, &b));
    /// assert!(r.hierarchy_stats().unwrap().num_levels() >= 1);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates configuration and construction errors from
    /// [`build_hierarchical_ensemble`].
    pub fn build_hierarchical(
        g: &Graph,
        hierarchy: &HierarchyConfig,
        racke: &RackeConfig,
    ) -> Result<Self, GraphError> {
        let (ensemble, stats) = build_hierarchical_ensemble(g, hierarchy, racke)?;
        Self::from_ensemble_with_hierarchy(ensemble, stats)
    }

    /// Per-level quality bookkeeping of the hierarchical construction, or
    /// `None` when the ensemble was built directly.
    pub fn hierarchy_stats(&self) -> Option<&HierarchyStats> {
        self.hierarchy.as_ref()
    }

    /// Re-prepares the approximator in place after a batch of edge-capacity
    /// changes, touching only the affected rows instead of rebuilding every
    /// tree from scratch.
    ///
    /// The tree *topologies* are kept: a row of `R` is the cut induced by a
    /// tree node's parent edge, and its capacity is linear in the graph's
    /// edge capacities — edge `e = {u, v}` contributes `cap(e)` to exactly
    /// the cuts of the nodes on the tree path between `u` and `v` (the LCA
    /// marking identity behind [`crate::racke::tree_loads`]). So a change of
    /// `new − old` on `e` patches each tree by adding that delta along one
    /// tree path, then refreshing the affected relative loads from the
    /// graph's current parent-edge capacities. Cost is
    /// `O(Σ_changes Σ_trees pathlen)` — independent of graph size for short
    /// paths — versus the full `O(trees · (m + n))` rebuild.
    ///
    /// `g` must already hold the new capacities (call
    /// [`Graph::set_capacity`] first); each edge may appear in `changes` at
    /// most once. Note the re-sampled ensemble a fresh build would draw can
    /// differ *topologically*: this method keeps the prepared trees and
    /// re-capacitates them, which preserves every certificate (each row
    /// remains a genuine cut of `g` at its true capacity). Hierarchy
    /// bookkeeping from [`Self::build_hierarchical`] is construction-time
    /// metadata and is left untouched.
    ///
    /// # Errors
    ///
    /// Returns an error — after which the approximator may be partially
    /// patched and **must be discarded and rebuilt** (the caller's full-
    /// rebuild fallback path) — when:
    ///
    /// - `g`'s node count differs from the approximator's
    ///   ([`GraphError::DemandMismatch`]);
    /// - a change names an edge out of range
    ///   ([`GraphError::EdgeOutOfRange`]);
    /// - a change's `old` or `new` capacity is non-finite or not positive
    ///   ([`GraphError::InvalidWeight`]);
    /// - `g`'s capacity for a changed edge is not bit-exactly the declared
    ///   `new` value ([`GraphError::InvalidConfig`]) — the caller forgot
    ///   `set_capacity`, listed an edge twice, or is racing the update;
    /// - a patched cut capacity degenerates to a non-finite or non-positive
    ///   value ([`GraphError::InvalidWeight`]), which accumulated rounding
    ///   can produce only when `|delta|` dwarfs the surviving cut.
    pub fn update_capacities(
        &mut self,
        g: &Graph,
        changes: &[CapacityChange],
    ) -> Result<CapacityUpdateStats, GraphError> {
        if g.num_nodes() != self.num_nodes {
            return Err(GraphError::DemandMismatch {
                expected: self.num_nodes,
                actual: g.num_nodes(),
            });
        }
        // Validate everything before mutating anything: the only errors a
        // caller can hit mid-patch after this loop are numerical.
        for c in changes {
            if c.edge.index() >= g.num_edges() {
                return Err(GraphError::EdgeOutOfRange {
                    edge: c.edge.index(),
                    num_edges: g.num_edges(),
                });
            }
            for cap in [c.old, c.new] {
                if !(cap.is_finite() && cap > 0.0) {
                    return Err(GraphError::InvalidWeight { value: cap });
                }
            }
            if g.capacity(c.edge).to_bits() != c.new.to_bits() {
                return Err(GraphError::InvalidConfig {
                    parameter: "changes",
                    reason: "graph capacity is not the declared new value: \
                             apply Graph::set_capacity before update_capacities \
                             and list each edge at most once",
                });
            }
        }
        let mut stats = CapacityUpdateStats {
            trees_total: self.trees.len(),
            ..CapacityUpdateStats::default()
        };
        for (t, slots) in self.trees.iter_mut().zip(&mut self.slots) {
            let mut patched_here = 0usize;
            for c in changes {
                let delta = c.new - c.old;
                if delta == 0.0 {
                    continue;
                }
                let e = g.edge(c.edge);
                // Edge {u, v} crosses exactly the cuts of the nodes strictly
                // below the LCA on the u–v tree path; walk both legs.
                let meet = t.tree.lca(e.tail, e.head);
                for leg in [e.tail, e.head] {
                    let mut v = leg;
                    while v != meet {
                        let vi = v.index();
                        let cut = t.cut_capacity[vi] + delta;
                        if !(cut.is_finite() && cut > 0.0) {
                            return Err(GraphError::InvalidWeight { value: cut });
                        }
                        t.cut_capacity[vi] = cut;
                        slots.cut_capacity[slots.slot_of_node[vi] as usize] = cut;
                        let (Some(parent_edge), Some(parent)) =
                            (t.tree.parent_edge(v), t.tree.parent(v))
                        else {
                            // Unreachable for spanning trees of `g`: every
                            // node strictly below an ancestor has a parent
                            // realized by a graph edge.
                            return Err(GraphError::Internal {
                                invariant: "tree path node below the LCA lacks a parent edge",
                            });
                        };
                        t.rload[vi] = cut / g.capacity(parent_edge);
                        patched_here += 1;
                        v = parent;
                    }
                }
            }
            if patched_here > 0 {
                stats.trees_touched += 1;
                stats.slots_patched += patched_here;
            }
        }
        Ok(stats)
    }

    /// The trees backing the approximator.
    pub fn trees(&self) -> &[CapacitatedTree] {
        &self.trees
    }

    /// Number of network nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of rows of `R` (one per tree per node; root rows are zero).
    pub fn num_rows(&self) -> usize {
        self.trees.len() * self.num_nodes
    }

    /// Summary statistics.
    pub fn stats(&self) -> ApproximatorStats {
        ApproximatorStats {
            num_trees: self.trees.len(),
            num_rows: self.num_rows(),
            provable_alpha: self.provable_alpha(),
        }
    }

    /// The conservative, always-valid quality bound: routing any demand on
    /// the single tree with the smallest maximum relative load overestimates
    /// the optimal congestion by at most this factor.
    pub fn provable_alpha(&self) -> f64 {
        self.trees
            .iter()
            .map(|t| t.max_rload().max(1.0))
            .fold(f64::INFINITY, f64::min)
    }

    /// Evaluates `R·b`: for every tree and node, the congestion forced on the
    /// corresponding tree cut. Row layout: `tree_index * n + node_index`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] if `b.len()` does not match the
    /// approximator's node count.
    pub fn apply(&self, b: &Demand) -> Result<Vec<f64>, GraphError> {
        let mut rows = vec![0.0; self.num_rows()];
        let mut scratch = OperatorScratch::default();
        self.apply_into(b, &mut rows, &mut scratch)?;
        Ok(rows)
    }

    /// Evaluates `R·b` into the caller-owned buffer `rows` using borrowed
    /// scratch, so repeated evaluations (one per gradient iteration) allocate
    /// nothing in the steady state.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] if `b.len()` does not match the
    /// approximator's node count.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` does not equal [`Self::num_rows`] (a misuse of
    /// the scratch-buffer protocol, not of the data).
    pub fn apply_into(
        &self,
        b: &Demand,
        rows: &mut [f64],
        scratch: &mut OperatorScratch,
    ) -> Result<(), GraphError> {
        if b.len() != self.num_nodes {
            return Err(GraphError::DemandMismatch {
                expected: self.num_nodes,
                actual: b.len(),
            });
        }
        assert_eq!(rows.len(), self.num_rows(), "row buffer length mismatch");
        scratch.ensure_nodes(self.num_nodes);
        for (slots, out) in self.slots.iter().zip(rows.chunks_mut(self.num_nodes)) {
            slots.apply_rows(b.values(), &mut scratch.node_a, out);
        }
        Ok(())
    }

    /// [`Self::apply_into`] with the per-tree subtree aggregations fanned
    /// across the workers of `par`. The row block of each tree is a disjoint
    /// chunk of `rows` and each worker aggregates into its own chunk of the
    /// scratch's tree-major workspace, so the result is **byte-identical** to
    /// the sequential evaluation for every thread count;
    /// `Parallelism::sequential()` takes the sequential path exactly.
    ///
    /// Each parallel call spawns its scoped workers afresh (tens of
    /// microseconds), so the fan-out pays off when the per-call work —
    /// `O(num_trees × n)` — dominates that setup: large instances, or the
    /// default `O(log n)`-tree ensembles on 10k+ nodes. For many small
    /// queries, prefer fanning out at the query level
    /// (`PreparedMaxFlow::par_max_flow_batch` in the `maxflow` crate), which
    /// spawns once per batch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::apply_into`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::apply_into`].
    pub fn apply_into_par(
        &self,
        b: &Demand,
        rows: &mut [f64],
        scratch: &mut OperatorScratch,
        par: &Parallelism,
    ) -> Result<(), GraphError> {
        if par.is_sequential() || self.trees.len() <= 1 || self.num_nodes == 0 {
            return self.apply_into(b, rows, scratch);
        }
        if b.len() != self.num_nodes {
            return Err(GraphError::DemandMismatch {
                expected: self.num_nodes,
                actual: b.len(),
            });
        }
        assert_eq!(rows.len(), self.num_rows(), "row buffer length mismatch");
        let n = self.num_nodes;
        scratch.ensure_tree_major(self.trees.len(), n, false);
        let tasks: Vec<(&TreeSlots, &mut [f64], &mut [f64])> = self
            .slots
            .iter()
            .zip(rows.chunks_mut(n))
            .zip(scratch.tree_a.chunks_mut(n))
            .map(|((slots, out), tmp)| (slots, out, tmp))
            .collect();
        par.for_each_owned(tasks, |_, (slots, out, tmp)| {
            slots.apply_rows(b.values(), tmp, out);
        });
        Ok(())
    }

    /// `‖R·b‖_∞` — the approximator's estimate (lower bound) of the optimal
    /// congestion needed to route `b` in `G`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the approximator's node count.
    pub fn congestion_lower_bound(&self, b: &Demand) -> f64 {
        self.apply(b)
            .expect("demand length mismatch")
            .iter()
            .map(|x| x.abs())
            .fold(0.0, f64::max)
    }

    /// An upper bound on the optimal congestion: the best congestion achieved
    /// by routing `b` entirely on one of the ensemble's trees (using graph
    /// edge capacities). Together with [`Self::congestion_lower_bound`] this
    /// sandwiches `opt(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the approximator's node count.
    pub fn congestion_upper_bound(&self, g: &Graph, b: &Demand) -> f64 {
        self.congestion_upper_bound_par(g, b, &Parallelism::sequential())
    }

    /// [`Self::congestion_upper_bound`] with the independent per-tree
    /// routings mapped across the workers of `par` and reduced by the
    /// fixed-order minimum — byte-identical to sequential for any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the approximator's node count.
    pub fn congestion_upper_bound_par(&self, g: &Graph, b: &Demand, par: &Parallelism) -> f64 {
        par.par_map_reduce(
            &self.trees,
            |_, t| t.tree_routing_congestion(g, b),
            f64::INFINITY,
            f64::min,
        )
    }

    /// Evaluates `Rᵀ·y` for a price vector `y` (one entry per row of `R`,
    /// same layout as [`Self::apply`]): returns the per-node potentials
    /// `π_v = Σ_{rows i whose cut contains v} y_i / cap_i` — the quantity the
    /// gradient descent needs to compute `∂φ₂/∂f_e = π_v − π_u` (§9.1).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] if `y.len()` does not equal
    /// [`Self::num_rows`].
    pub fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>, GraphError> {
        let mut potentials = vec![0.0; self.num_nodes];
        let mut scratch = OperatorScratch::default();
        self.apply_transpose_into(y, &mut potentials, &mut scratch)?;
        Ok(potentials)
    }

    /// Evaluates `Rᵀ·y` into the caller-owned buffer `potentials` using
    /// borrowed scratch, the allocation-free counterpart of
    /// [`Self::apply_transpose`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] if `y.len()` does not equal
    /// [`Self::num_rows`].
    ///
    /// # Panics
    ///
    /// Panics if `potentials.len()` does not equal the approximator's node
    /// count (a misuse of the scratch-buffer protocol, not of the data).
    pub fn apply_transpose_into(
        &self,
        y: &[f64],
        potentials: &mut [f64],
        scratch: &mut OperatorScratch,
    ) -> Result<(), GraphError> {
        if y.len() != self.num_rows() {
            return Err(GraphError::DemandMismatch {
                expected: self.num_rows(),
                actual: y.len(),
            });
        }
        assert_eq!(
            potentials.len(),
            self.num_nodes,
            "potential buffer length mismatch"
        );
        potentials.fill(0.0);
        scratch.ensure_nodes(self.num_nodes);
        for (slots, y_rows) in self.slots.iter().zip(y.chunks(self.num_nodes)) {
            // Per-slot price of the row indexed by this slot's parent edge,
            // already scaled by the cut capacity.
            slots.prices_to_slots(y_rows, &mut scratch.node_a);
            // π contribution of this tree: sum of prices along the root path.
            slots.prefix_sums_in_slots(&scratch.node_a, &mut scratch.node_b);
            slots.add_potentials_from_slots(&scratch.node_b, potentials);
        }
        Ok(())
    }

    /// [`Self::apply_transpose_into`] with the per-tree root-path prefix sums
    /// fanned across the workers of `par`, followed by a **fixed tree-order
    /// reduction** on the calling thread: tree contributions are added into
    /// `potentials` in tree index order, exactly like the sequential loop, so
    /// the floating-point result is byte-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::apply_transpose_into`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::apply_transpose_into`].
    pub fn apply_transpose_into_par(
        &self,
        y: &[f64],
        potentials: &mut [f64],
        scratch: &mut OperatorScratch,
        par: &Parallelism,
    ) -> Result<(), GraphError> {
        if par.is_sequential() || self.trees.len() <= 1 || self.num_nodes == 0 {
            return self.apply_transpose_into(y, potentials, scratch);
        }
        if y.len() != self.num_rows() {
            return Err(GraphError::DemandMismatch {
                expected: self.num_rows(),
                actual: y.len(),
            });
        }
        assert_eq!(
            potentials.len(),
            self.num_nodes,
            "potential buffer length mismatch"
        );
        let n = self.num_nodes;
        scratch.ensure_tree_major(self.trees.len(), n, true);
        struct TransposeTask<'a> {
            slots: &'a TreeSlots,
            y_rows: &'a [f64],
            prices: &'a mut [f64],
            prefix: &'a mut [f64],
        }
        let tasks: Vec<TransposeTask<'_>> = self
            .slots
            .iter()
            .zip(y.chunks(n))
            .zip(scratch.tree_a.chunks_mut(n))
            .zip(scratch.tree_b.chunks_mut(n))
            .map(|(((slots, y_rows), prices), prefix)| TransposeTask {
                slots,
                y_rows,
                prices,
                prefix,
            })
            .collect();
        par.for_each_owned(tasks, |_, task| {
            task.slots.prices_to_slots(task.y_rows, task.prices);
            task.slots.prefix_sums_in_slots(task.prices, task.prefix);
        });
        potentials.fill(0.0);
        for (slots, prefix) in self.slots.iter().zip(scratch.tree_b.chunks(n)) {
            slots.add_potentials_from_slots(prefix, potentials);
        }
        Ok(())
    }

    /// Evaluates `R·b` for `k` right-hand sides in one walk over every
    /// tree's slots — the blocked (multi-RHS) counterpart of
    /// [`Self::apply_into`].
    ///
    /// # Lane layout
    ///
    /// Inputs and outputs are **lane-major**: `b_block[v*k + l]` is lane `l`
    /// of node `v`'s demand, and `rows_block[(t*n + v)*k + l]` is lane `l` of
    /// the row for node `v` of tree `t` (the `k = 1` row layout with `k`
    /// contiguous lanes per row). The per-slot sweeps are element-outer /
    /// lane-inner, so **each lane's floating-point sequence is exactly the
    /// `k = 1` sequence**: lane `l` of the result is byte-identical to
    /// `apply_into` on lane `l`'s demand, while the level-ordered slot walk —
    /// the memory-bandwidth-bound part on million-node instances — is paid
    /// once per sweep instead of once per demand.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] if `b_block.len()` is not
    /// `k × num_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rows_block.len() != k × num_rows` (misuse of
    /// the scratch-buffer protocol, not of the data).
    pub fn apply_block_into(
        &self,
        b_block: &[f64],
        k: usize,
        rows_block: &mut [f64],
        scratch: &mut OperatorScratch,
    ) -> Result<(), GraphError> {
        assert!(k > 0, "blocked operators need at least one lane");
        if b_block.len() != self.num_nodes * k {
            return Err(GraphError::DemandMismatch {
                expected: self.num_nodes * k,
                actual: b_block.len(),
            });
        }
        assert_eq!(
            rows_block.len(),
            self.num_rows() * k,
            "row block buffer length mismatch"
        );
        scratch.ensure_nodes(self.num_nodes * k);
        for (slots, out) in self
            .slots
            .iter()
            .zip(rows_block.chunks_mut(self.num_nodes * k))
        {
            slots.apply_rows_block(b_block, k, &mut scratch.node_a, out);
        }
        Ok(())
    }

    /// [`Self::apply_block_into`] with the per-tree blocked aggregations
    /// fanned across the workers of `par`; byte-identical to the sequential
    /// blocked evaluation (and hence to `k` scalar evaluations) for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::apply_block_into`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::apply_block_into`].
    pub fn apply_block_into_par(
        &self,
        b_block: &[f64],
        k: usize,
        rows_block: &mut [f64],
        scratch: &mut OperatorScratch,
        par: &Parallelism,
    ) -> Result<(), GraphError> {
        if par.is_sequential() || self.trees.len() <= 1 || self.num_nodes == 0 {
            return self.apply_block_into(b_block, k, rows_block, scratch);
        }
        assert!(k > 0, "blocked operators need at least one lane");
        if b_block.len() != self.num_nodes * k {
            return Err(GraphError::DemandMismatch {
                expected: self.num_nodes * k,
                actual: b_block.len(),
            });
        }
        assert_eq!(
            rows_block.len(),
            self.num_rows() * k,
            "row block buffer length mismatch"
        );
        let nk = self.num_nodes * k;
        scratch.ensure_tree_major(self.trees.len(), nk, false);
        let tasks: Vec<(&TreeSlots, &mut [f64], &mut [f64])> = self
            .slots
            .iter()
            .zip(rows_block.chunks_mut(nk))
            .zip(scratch.tree_a.chunks_mut(nk))
            .map(|((slots, out), tmp)| (slots, out, tmp))
            .collect();
        par.for_each_owned(tasks, |_, (slots, out, tmp)| {
            slots.apply_rows_block(b_block, k, tmp, out);
        });
        Ok(())
    }

    /// Evaluates `Rᵀ·y` for `k` price vectors in one walk over every tree's
    /// slots — the blocked counterpart of [`Self::apply_transpose_into`].
    /// Lane layout as in [`Self::apply_block_into`]: `y_block[(t*n + v)*k + l]`
    /// in, `potentials_block[v*k + l]` out, each lane byte-identical to the
    /// scalar transpose on that lane's prices.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] if `y_block.len()` is not
    /// `k × num_rows`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `potentials_block.len() != k × num_nodes`
    /// (misuse of the scratch-buffer protocol, not of the data).
    pub fn apply_transpose_block_into(
        &self,
        y_block: &[f64],
        k: usize,
        potentials_block: &mut [f64],
        scratch: &mut OperatorScratch,
    ) -> Result<(), GraphError> {
        assert!(k > 0, "blocked operators need at least one lane");
        if y_block.len() != self.num_rows() * k {
            return Err(GraphError::DemandMismatch {
                expected: self.num_rows() * k,
                actual: y_block.len(),
            });
        }
        assert_eq!(
            potentials_block.len(),
            self.num_nodes * k,
            "potential block buffer length mismatch"
        );
        potentials_block.fill(0.0);
        scratch.ensure_nodes(self.num_nodes * k);
        for (slots, y_rows) in self.slots.iter().zip(y_block.chunks(self.num_nodes * k)) {
            slots.prices_to_slots_block(y_rows, k, &mut scratch.node_a);
            slots.prefix_sums_in_slots_block(&scratch.node_a, k, &mut scratch.node_b);
            slots.add_potentials_from_slots_block(&scratch.node_b, k, potentials_block);
        }
        Ok(())
    }

    /// [`Self::apply_transpose_block_into`] with the per-tree blocked prefix
    /// sums fanned across the workers of `par`, followed by the fixed
    /// tree-order reduction on the calling thread — byte-identical to the
    /// sequential blocked evaluation for every thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::apply_transpose_block_into`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::apply_transpose_block_into`].
    pub fn apply_transpose_block_into_par(
        &self,
        y_block: &[f64],
        k: usize,
        potentials_block: &mut [f64],
        scratch: &mut OperatorScratch,
        par: &Parallelism,
    ) -> Result<(), GraphError> {
        if par.is_sequential() || self.trees.len() <= 1 || self.num_nodes == 0 {
            return self.apply_transpose_block_into(y_block, k, potentials_block, scratch);
        }
        assert!(k > 0, "blocked operators need at least one lane");
        if y_block.len() != self.num_rows() * k {
            return Err(GraphError::DemandMismatch {
                expected: self.num_rows() * k,
                actual: y_block.len(),
            });
        }
        assert_eq!(
            potentials_block.len(),
            self.num_nodes * k,
            "potential block buffer length mismatch"
        );
        let nk = self.num_nodes * k;
        scratch.ensure_tree_major(self.trees.len(), nk, true);
        struct TransposeBlockTask<'a> {
            slots: &'a TreeSlots,
            y_rows: &'a [f64],
            prices: &'a mut [f64],
            prefix: &'a mut [f64],
        }
        let tasks: Vec<TransposeBlockTask<'_>> = self
            .slots
            .iter()
            .zip(y_block.chunks(nk))
            .zip(scratch.tree_a.chunks_mut(nk))
            .zip(scratch.tree_b.chunks_mut(nk))
            .map(|(((slots, y_rows), prices), prefix)| TransposeBlockTask {
                slots,
                y_rows,
                prices,
                prefix,
            })
            .collect();
        par.for_each_owned(tasks, |_, task| {
            task.slots
                .prices_to_slots_block(task.y_rows, k, task.prices);
            task.slots
                .prefix_sums_in_slots_block(task.prices, k, task.prefix);
        });
        potentials_block.fill(0.0);
        for (slots, prefix) in self.slots.iter().zip(scratch.tree_b.chunks(nk)) {
            slots.add_potentials_from_slots_block(prefix, k, potentials_block);
        }
        Ok(())
    }

    /// Measured approximation factor for a specific demand:
    /// `opt_estimate / ‖Rb‖_∞`, where the optimum is estimated by the best
    /// tree routing (an upper bound on `opt`, so the returned value is an
    /// upper bound on the true factor for this demand).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the approximator's node count.
    pub fn measured_alpha(&self, g: &Graph, b: &Demand) -> f64 {
        let lower = self.congestion_lower_bound(b);
        let upper = self.congestion_upper_bound(g, b);
        if lower <= 0.0 {
            1.0
        } else {
            upper / lower
        }
    }
}

/// Exact optimal congestion `opt(b)` of a demand on a *small* graph (≤ 20
/// nodes), computed as the maximum cut congestion over all proper cuts.
/// By LP duality (max-flow min-cut for single commodities / the max
/// concurrent-flow bound used in §2), this is the exact value for
/// single-source-single-sink demands and a lower bound in general; it serves
/// as the ground truth in the approximator quality experiments.
///
/// # Panics
///
/// Panics if the graph has more than 20 nodes.
pub fn exhaustive_opt_congestion(g: &Graph, b: &Demand) -> f64 {
    flowgraph::cut::enumerate_proper_cuts(g)
        .iter()
        .map(|c| c.demand_congestion(g, b))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::{gen, Demand, NodeId};

    fn build(g: &Graph, trees: usize, seed: u64) -> CongestionApproximator {
        CongestionApproximator::build(
            g,
            &RackeConfig::default().with_num_trees(trees).with_seed(seed),
        )
        .unwrap()
    }

    #[test]
    fn lower_bound_never_exceeds_exact_opt() {
        // ‖Rb‖∞ ≤ opt(b) must hold for every demand because every row is a
        // genuine cut of G.
        let g = gen::random_gnp(12, 0.35, (1.0, 4.0), 3);
        let approx = build(&g, 4, 1);
        let mut rng = gen::rng(7);
        for _ in 0..20 {
            let mut b = Demand::zeros(12);
            for v in 0..12 {
                b.set(NodeId(v), rand::Rng::gen_range(&mut rng, -2.0..2.0));
            }
            let total = b.total();
            let last = b.get(NodeId(11)) - total;
            b.set(NodeId(11), last);
            let lower = approx.congestion_lower_bound(&b);
            let opt = exhaustive_opt_congestion(&g, &b);
            assert!(
                lower <= opt + 1e-9,
                "lower bound {lower} exceeded exact opt {opt}"
            );
        }
    }

    #[test]
    fn sandwich_bounds_bracket_exact_opt_for_st_demands() {
        let g = gen::grid(4, 4, 1.0);
        let approx = build(&g, 8, 2);
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.0);
        let lower = approx.congestion_lower_bound(&b);
        let upper = approx.congestion_upper_bound(&g, &b);
        let opt = exhaustive_opt_congestion(&g, &b);
        assert!(lower <= opt + 1e-9);
        assert!(upper + 1e-9 >= opt);
        assert!(upper >= lower);
        // The measured quality should be modest on a small grid.
        assert!(approx.measured_alpha(&g, &b) < 20.0);
    }

    #[test]
    fn apply_transpose_is_adjoint_of_apply() {
        // <R b, y> must equal <b, Rᵀ y> for arbitrary b, y.
        let g = gen::random_gnp(15, 0.3, (1.0, 3.0), 4);
        let approx = build(&g, 3, 3);
        let mut rng = gen::rng(11);
        let mut b = Demand::zeros(15);
        for v in 0..15 {
            b.set(NodeId(v), rand::Rng::gen_range(&mut rng, -1.0..1.0));
        }
        let y: Vec<f64> = (0..approx.num_rows())
            .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
            .collect();
        let rb = approx.apply(&b).unwrap();
        let rty = approx.apply_transpose(&y).unwrap();
        let lhs: f64 = rb.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = rty.iter().zip(b.values()).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()),
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn zero_demand_gives_zero_rows() {
        let g = gen::grid(3, 3, 1.0);
        let approx = build(&g, 2, 5);
        let b = Demand::zeros(9);
        assert!(approx.apply(&b).unwrap().iter().all(|&x| x == 0.0));
        assert_eq!(approx.congestion_lower_bound(&b), 0.0);
        assert_eq!(approx.measured_alpha(&g, &b), 1.0);
    }

    #[test]
    fn dimension_mismatches_are_reported_not_panicked() {
        let g = gen::grid(3, 3, 1.0);
        let approx = build(&g, 2, 5);
        let short = Demand::zeros(4);
        assert_eq!(
            approx.apply(&short),
            Err(GraphError::DemandMismatch {
                expected: 9,
                actual: 4
            })
        );
        let bad_prices = vec![0.0; 3];
        assert_eq!(
            approx.apply_transpose(&bad_prices),
            Err(GraphError::DemandMismatch {
                expected: approx.num_rows(),
                actual: 3
            })
        );
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let g = gen::random_gnp(12, 0.3, (1.0, 4.0), 9);
        let approx = build(&g, 3, 2);
        let b = Demand::st(&g, NodeId(0), NodeId(11), 1.5);
        let mut scratch = OperatorScratch::for_nodes(approx.num_nodes());
        let mut rows = vec![0.0; approx.num_rows()];
        approx.apply_into(&b, &mut rows, &mut scratch).unwrap();
        assert_eq!(rows, approx.apply(&b).unwrap());
        let y: Vec<f64> = (0..approx.num_rows())
            .map(|i| (i % 5) as f64 - 2.0)
            .collect();
        let mut pot = vec![0.0; approx.num_nodes()];
        approx
            .apply_transpose_into(&y, &mut pot, &mut scratch)
            .unwrap();
        assert_eq!(pot, approx.apply_transpose(&y).unwrap());
    }

    #[test]
    fn parallel_operators_are_byte_identical_to_sequential() {
        use parallel::Parallelism;
        let g = gen::random_gnp(24, 0.25, (1.0, 5.0), 17);
        let approx = build(&g, 5, 3);
        let mut rng = gen::rng(23);
        let mut b = Demand::zeros(24);
        for v in 0..24 {
            b.set(NodeId(v), rand::Rng::gen_range(&mut rng, -2.0..2.0));
        }
        let y: Vec<f64> = (0..approx.num_rows())
            .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
            .collect();
        let seq_rows = approx.apply(&b).unwrap();
        let seq_pot = approx.apply_transpose(&y).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let par = Parallelism::with_threads(threads);
            let mut scratch = OperatorScratch::default();
            let mut rows = vec![0.0; approx.num_rows()];
            approx
                .apply_into_par(&b, &mut rows, &mut scratch, &par)
                .unwrap();
            let mut pot = vec![0.0; approx.num_nodes()];
            approx
                .apply_transpose_into_par(&y, &mut pot, &mut scratch, &par)
                .unwrap();
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&rows), bits(&seq_rows), "apply at {threads} threads");
            assert_eq!(
                bits(&pot),
                bits(&seq_pot),
                "apply_transpose at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_operators_report_dimension_mismatches() {
        use parallel::Parallelism;
        let g = gen::grid(3, 3, 1.0);
        let approx = build(&g, 3, 5);
        let par = Parallelism::with_threads(4);
        let mut scratch = OperatorScratch::default();
        let mut rows = vec![0.0; approx.num_rows()];
        assert_eq!(
            approx.apply_into_par(&Demand::zeros(4), &mut rows, &mut scratch, &par),
            Err(GraphError::DemandMismatch {
                expected: 9,
                actual: 4
            })
        );
        let mut pot = vec![0.0; approx.num_nodes()];
        assert_eq!(
            approx.apply_transpose_into_par(&[0.0; 3], &mut pot, &mut scratch, &par),
            Err(GraphError::DemandMismatch {
                expected: approx.num_rows(),
                actual: 3
            })
        );
    }

    #[test]
    fn empty_ensemble_is_rejected_not_vacuous() {
        // Regression: an empty ensemble used to silently produce a 0-node,
        // 0-row approximator whose every answer (`apply`, lower bounds) was
        // a vacuous zero. It must be a configuration error instead.
        let empty = TreeEnsemble {
            trees: Vec::new(),
            stats: crate::racke::EnsembleStats {
                num_trees: 0,
                max_rloads: Vec::new(),
                decomposition_rounds: 0,
                average_stretches: Vec::new(),
            },
        };
        assert!(matches!(
            CongestionApproximator::from_ensemble(empty),
            Err(GraphError::InvalidConfig {
                parameter: "ensemble",
                ..
            })
        ));
    }

    #[test]
    fn stats_report_shapes() {
        let g = gen::grid(4, 4, 1.0);
        let approx = build(&g, 5, 6);
        let stats = approx.stats();
        assert_eq!(stats.num_trees, 5);
        assert_eq!(stats.num_rows, 5 * 16);
        assert!(stats.provable_alpha >= 1.0);
        assert_eq!(approx.num_nodes(), 16);
    }

    #[test]
    fn blocked_operators_match_k_scalar_applies_byte_for_byte() {
        use parallel::Parallelism;
        let g = gen::random_gnp(23, 0.3, (1.0, 5.0), 31);
        let approx = build(&g, 4, 7);
        let n = approx.num_nodes();
        let rows_n = approx.num_rows();
        let mut rng = gen::rng(41);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for k in [1usize, 2, 3, 8] {
            // k random demands + k random price vectors.
            let demands: Vec<Demand> = (0..k)
                .map(|_| {
                    let mut b = Demand::zeros(n);
                    for v in 0..n {
                        b.set(NodeId(v as u32), rand::Rng::gen_range(&mut rng, -2.0..2.0));
                    }
                    b
                })
                .collect();
            let ys: Vec<Vec<f64>> = (0..k)
                .map(|_| {
                    (0..rows_n)
                        .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
                        .collect()
                })
                .collect();
            // Pack lane-major.
            let mut b_block = vec![0.0; n * k];
            for (l, b) in demands.iter().enumerate() {
                for (v, &x) in b.values().iter().enumerate() {
                    b_block[v * k + l] = x;
                }
            }
            let mut y_block = vec![0.0; rows_n * k];
            for (l, y) in ys.iter().enumerate() {
                for (r, &x) in y.iter().enumerate() {
                    y_block[r * k + l] = x;
                }
            }
            let mut scratch = OperatorScratch::default();
            let mut rows_block = vec![0.0; rows_n * k];
            approx
                .apply_block_into(&b_block, k, &mut rows_block, &mut scratch)
                .unwrap();
            let mut pot_block = vec![0.0; n * k];
            approx
                .apply_transpose_block_into(&y_block, k, &mut pot_block, &mut scratch)
                .unwrap();
            for l in 0..k {
                let scalar_rows = approx.apply(&demands[l]).unwrap();
                let lane_rows: Vec<f64> = (0..rows_n).map(|r| rows_block[r * k + l]).collect();
                assert_eq!(
                    bits(&lane_rows),
                    bits(&scalar_rows),
                    "apply lane {l} of {k}"
                );
                let scalar_pot = approx.apply_transpose(&ys[l]).unwrap();
                let lane_pot: Vec<f64> = (0..n).map(|v| pot_block[v * k + l]).collect();
                assert_eq!(
                    bits(&lane_pot),
                    bits(&scalar_pot),
                    "transpose lane {l} of {k}"
                );
            }
            // The parallel blocked variants stay byte-identical too.
            for threads in [2usize, 4] {
                let par = Parallelism::with_threads(threads);
                let mut par_scratch = OperatorScratch::default();
                let mut par_rows = vec![0.0; rows_n * k];
                approx
                    .apply_block_into_par(&b_block, k, &mut par_rows, &mut par_scratch, &par)
                    .unwrap();
                assert_eq!(bits(&par_rows), bits(&rows_block), "par apply k={k}");
                let mut par_pot = vec![0.0; n * k];
                approx
                    .apply_transpose_block_into_par(
                        &y_block,
                        k,
                        &mut par_pot,
                        &mut par_scratch,
                        &par,
                    )
                    .unwrap();
                assert_eq!(bits(&par_pot), bits(&pot_block), "par transpose k={k}");
            }
        }
    }

    #[test]
    fn blocked_operators_report_dimension_mismatches() {
        let g = gen::grid(3, 3, 1.0);
        let approx = build(&g, 2, 5);
        let mut scratch = OperatorScratch::default();
        let mut rows = vec![0.0; approx.num_rows() * 2];
        assert_eq!(
            approx.apply_block_into(&[0.0; 4], 2, &mut rows, &mut scratch),
            Err(GraphError::DemandMismatch {
                expected: 18,
                actual: 4
            })
        );
        let mut pot = vec![0.0; approx.num_nodes() * 2];
        assert_eq!(
            approx.apply_transpose_block_into(&[0.0; 5], 2, &mut pot, &mut scratch),
            Err(GraphError::DemandMismatch {
                expected: approx.num_rows() * 2,
                actual: 5
            })
        );
    }

    #[test]
    fn exhaustive_opt_matches_min_cut_for_unit_st_demand() {
        // opt for routing F units from s to t equals F / mincut(s, t).
        let g = gen::barbell(4, 1, 1.0, 1.0);
        let (s, t) = gen::default_terminals(&g);
        let b = Demand::st(&g, s, t, 3.0);
        let opt = exhaustive_opt_congestion(&g, &b);
        let mincut = flowgraph::cut::exhaustive_min_st_cut(&g, s, t);
        assert!((opt - 3.0 / mincut).abs() < 1e-9);
    }

    /// A graph with small-integer capacities: every cut capacity is an exact
    /// integer in f64, so incremental patching (`old_sum + delta`) and fresh
    /// recomputation (marking-order summation) must agree *bitwise*, not just
    /// within tolerance.
    fn integer_cap_graph(seed: u64) -> Graph {
        let mut g = gen::random_gnp(14, 0.35, (1.0, 4.0), seed);
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        for (i, e) in edges.into_iter().enumerate() {
            g.set_capacity(e, (i % 7 + 1) as f64).unwrap();
        }
        g
    }

    #[test]
    fn incremental_update_matches_recapacitated_trees_bitwise() {
        let mut g = integer_cap_graph(31);
        let mut approx = build(&g, 4, 8);
        // Change a few spread-out edges to new integer capacities.
        let targets: Vec<EdgeId> = g.edge_ids().step_by(5).take(4).collect();
        let mut changes = Vec::new();
        for (j, &e) in targets.iter().enumerate() {
            let old = g.capacity(e);
            let new = (j * 3 + 2) as f64;
            g.set_capacity(e, new).unwrap();
            changes.push(CapacityChange { edge: e, old, new });
        }
        let stats = approx.update_capacities(&g, &changes).unwrap();
        assert_eq!(stats.trees_total, 4);
        assert!(stats.trees_touched >= 1);
        assert!(stats.slots_patched >= 1);

        // Ground truth: the SAME tree topologies, recapacitated from scratch
        // against the updated graph.
        let fresh_trees: Vec<CapacitatedTree> = approx
            .trees()
            .iter()
            .map(|t| CapacitatedTree::new(&g, t.tree.clone()))
            .collect();
        for (inc, fresh) in approx.trees().iter().zip(&fresh_trees) {
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&inc.cut_capacity), bits(&fresh.cut_capacity));
            assert_eq!(bits(&inc.rload), bits(&fresh.rload));
        }
        // The patched slot views drive the operators: R·b and Rᵀ·y through
        // the incrementally updated approximator match a from-scratch wrap of
        // the recapacitated trees bitwise.
        let fresh_approx = CongestionApproximator::from_ensemble(TreeEnsemble {
            trees: fresh_trees,
            stats: crate::racke::EnsembleStats {
                num_trees: 4,
                max_rloads: Vec::new(),
                decomposition_rounds: 0,
                average_stretches: Vec::new(),
            },
        })
        .unwrap();
        let b = Demand::st(&g, NodeId(0), NodeId(13), 2.0);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&approx.apply(&b).unwrap()),
            bits(&fresh_approx.apply(&b).unwrap())
        );
        let y: Vec<f64> = (0..approx.num_rows())
            .map(|i| (i % 3) as f64 - 1.0)
            .collect();
        assert_eq!(
            bits(&approx.apply_transpose(&y).unwrap()),
            bits(&fresh_approx.apply_transpose(&y).unwrap())
        );
    }

    #[test]
    fn incremental_update_counters_and_noop() {
        let mut g = integer_cap_graph(32);
        let mut approx = build(&g, 3, 9);
        // A no-op change (old == new) patches nothing.
        let e0 = g.edge_ids().next().unwrap();
        let cap = g.capacity(e0);
        let stats = approx
            .update_capacities(
                &g,
                &[CapacityChange {
                    edge: e0,
                    old: cap,
                    new: cap,
                }],
            )
            .unwrap();
        assert_eq!(stats.trees_touched, 0);
        assert_eq!(stats.slots_patched, 0);
        // An empty batch is a no-op too.
        let stats = approx.update_capacities(&g, &[]).unwrap();
        assert_eq!(
            stats,
            CapacityUpdateStats {
                trees_total: 3,
                trees_touched: 0,
                slots_patched: 0
            }
        );
        // A real change touches every tree: the changed edge crosses at
        // least one cut (its endpoints' tree path is non-empty) per tree.
        g.set_capacity(e0, cap + 2.0).unwrap();
        let stats = approx
            .update_capacities(
                &g,
                &[CapacityChange {
                    edge: e0,
                    old: cap,
                    new: cap + 2.0,
                }],
            )
            .unwrap();
        assert_eq!(stats.trees_touched, 3);
        assert!(stats.slots_patched >= 3);
    }

    #[test]
    fn incremental_update_rejects_bad_inputs() {
        let g = integer_cap_graph(33);
        let mut approx = build(&g, 2, 10);
        let e0 = g.edge_ids().next().unwrap();
        let cap = g.capacity(e0);
        // Node-count mismatch.
        let small = gen::grid(2, 2, 1.0);
        assert!(matches!(
            approx.update_capacities(&small, &[]),
            Err(GraphError::DemandMismatch {
                expected: 14,
                actual: 4
            })
        ));
        // Edge out of range.
        let bogus = EdgeId(u32::MAX);
        assert!(matches!(
            approx.update_capacities(
                &g,
                &[CapacityChange {
                    edge: bogus,
                    old: 1.0,
                    new: 2.0
                }]
            ),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
        // Non-finite / non-positive capacities.
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            assert!(matches!(
                approx.update_capacities(
                    &g,
                    &[CapacityChange {
                        edge: e0,
                        old: cap,
                        new: bad
                    }]
                ),
                Err(GraphError::InvalidWeight { .. })
            ));
        }
        // Graph not actually updated: the declared new value must match the
        // graph's capacity bit-exactly.
        assert!(matches!(
            approx.update_capacities(
                &g,
                &[CapacityChange {
                    edge: e0,
                    old: cap,
                    new: cap + 1.0
                }]
            ),
            Err(GraphError::InvalidConfig {
                parameter: "changes",
                ..
            })
        ));
    }

    #[test]
    fn incremental_update_works_on_hierarchical_builds() {
        // The lifted trees of the j-tree hierarchy are genuine capacitated
        // spanning trees of `g`, so the same path-patching applies.
        let mut g = gen::grid(6, 6, 1.0);
        let mut approx = CongestionApproximator::build_hierarchical(
            &g,
            &HierarchyConfig::default().with_direct_threshold(16),
            &RackeConfig::default().with_num_trees(2).with_seed(3),
        )
        .unwrap();
        let e = g.edge_ids().nth(10).unwrap();
        g.set_capacity(e, 3.0).unwrap();
        let stats = approx
            .update_capacities(
                &g,
                &[CapacityChange {
                    edge: e,
                    old: 1.0,
                    new: 3.0,
                }],
            )
            .unwrap();
        assert!(stats.trees_touched >= 1);
        let fresh: Vec<CapacitatedTree> = approx
            .trees()
            .iter()
            .map(|t| CapacitatedTree::new(&g, t.tree.clone()))
            .collect();
        for (inc, f) in approx.trees().iter().zip(&fresh) {
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&inc.cut_capacity), bits(&f.cut_capacity));
            assert_eq!(bits(&inc.rload), bits(&f.rload));
        }
        // Hierarchy bookkeeping survives as construction-time metadata.
        assert!(approx.hierarchy_stats().is_some());
    }
}
