//! The AKPW low average-stretch spanning tree algorithm (paper §7).
//!
//! Following Alon et al. in the formulation of Blelloch et al.: edges are
//! bucketed into geometric length classes, and the algorithm repeatedly
//! (i) runs the low-diameter decomposition of [`crate::decompose::split_graph`]
//! on the currently active classes, (ii) keeps the BFS tree of every cluster,
//! and (iii) contracts the clusters into super-nodes, carrying parallel edges
//! along as a multigraph (§7: "Remove all self loops, but leave parallel
//! edges in place").

use flowgraph::contract::ContractedGraph;
use flowgraph::{EdgeId, Graph, GraphError, NodeId, RootedTree};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::decompose::split_graph;
use crate::theoretical_z;

/// Configuration of the low-stretch spanning tree construction.
#[derive(Debug, Clone)]
pub struct LowStretchConfig {
    /// Geometric growth factor of the length classes. `None` selects the
    /// theoretical `2^{√(6 log n log log n)}` (which at practical sizes makes
    /// the construction a single low-diameter decomposition).
    pub z: Option<f64>,
    /// The decomposition radius as a fraction of `z` (the paper uses `z/4`).
    pub radius_factor: f64,
    /// RNG seed; the construction is randomized (Theorem 3.1 is a bound on
    /// the *expected* stretch).
    pub seed: u64,
}

impl Default for LowStretchConfig {
    fn default() -> Self {
        LowStretchConfig {
            z: Some(32.0),
            radius_factor: 0.25,
            seed: 0,
        }
    }
}

impl LowStretchConfig {
    /// Configuration using the theoretical class growth `z` from Theorem 3.1.
    pub fn theoretical() -> Self {
        LowStretchConfig {
            z: None,
            ..Default::default()
        }
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the class growth factor.
    #[must_use]
    pub fn with_z(mut self, z: f64) -> Self {
        self.z = Some(z);
        self
    }
}

/// Statistics of one construction, used for round accounting and by the
/// experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct LowStretchStats {
    /// Number of contract-and-recurse iterations performed.
    pub iterations: usize,
    /// Number of length classes induced by the input lengths and `z`.
    pub num_classes: usize,
    /// The class growth factor actually used.
    pub z: f64,
    /// Sum of the (cluster-level CONGEST) rounds taken by the low-diameter
    /// decompositions; each such round costs `O(D + √n)` network rounds when
    /// simulated on a cluster graph (Lemma 5.1).
    pub decomposition_rounds: usize,
    /// Number of times the progress safeguard had to force a contraction.
    pub forced_contractions: usize,
}

/// A constructed low-stretch spanning tree plus its construction statistics.
#[derive(Debug, Clone)]
pub struct LowStretchResult {
    /// The spanning tree (rooted at node 0), realized by graph edges.
    pub tree: RootedTree,
    /// Construction statistics.
    pub stats: LowStretchStats,
}

/// Computes a low average-stretch spanning tree of `g` with respect to the
/// given edge `lengths` (Theorem 3.1).
///
/// # Errors
///
/// Returns [`GraphError::Empty`] for an empty graph,
/// [`GraphError::NotConnected`] for a disconnected graph and
/// [`GraphError::InvalidWeight`] if some length is not strictly positive and
/// finite or the length vector has the wrong size.
pub fn low_stretch_spanning_tree(
    g: &Graph,
    lengths: &[f64],
    config: &LowStretchConfig,
) -> Result<LowStretchResult, GraphError> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    if lengths.len() != g.num_edges() {
        return Err(GraphError::InvalidWeight {
            value: lengths.len() as f64,
        });
    }
    for &l in lengths {
        if !(l.is_finite() && l > 0.0) {
            return Err(GraphError::InvalidWeight { value: l });
        }
    }
    if !g.is_connected() {
        return Err(GraphError::NotConnected);
    }
    let n = g.num_nodes();
    if n == 1 {
        let tree = RootedTree::from_parents(NodeId(0), vec![None], vec![None])?;
        return Ok(LowStretchResult {
            tree,
            stats: LowStretchStats {
                iterations: 0,
                num_classes: 0,
                z: config.z.unwrap_or_else(|| theoretical_z(n)),
                decomposition_rounds: 0,
                forced_contractions: 0,
            },
        });
    }

    let z = config.z.unwrap_or_else(|| theoretical_z(n)).max(2.0);
    let radius = ((z * config.radius_factor).round() as usize).max(2);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Length classes: class(e) = floor(log_z(ℓ(e)/ℓ_min)) + 1, so class 1
    // holds lengths in [ℓ_min, ℓ_min·z).
    let min_len = lengths.iter().cloned().fold(f64::INFINITY, f64::min);
    let class_of: Vec<usize> = lengths
        .iter()
        .map(|&l| ((l / min_len).ln() / z.ln()).floor() as usize + 1)
        .collect();
    let num_classes = class_of.iter().copied().max().unwrap_or(1);

    // Current contracted multigraph plus the mapping of its edges back to G.
    let mut cur = g.clone();
    let mut orig_of: Vec<EdgeId> = g.edge_ids().collect();
    let mut tree_edges: Vec<EdgeId> = Vec::new();
    let mut stats = LowStretchStats {
        iterations: 0,
        num_classes,
        z,
        decomposition_rounds: 0,
        forced_contractions: 0,
    };

    let mut active_class = 1usize;
    while cur.num_nodes() > 1 {
        stats.iterations += 1;
        let has_active = cur
            .edge_ids()
            .any(|e| class_of[orig_of[e.index()].index()] <= active_class);
        if !has_active {
            // Nothing to decompose at this scale yet: advance the class.
            // (The remaining multigraph has edges because G is connected.)
            active_class += 1;
            continue;
        }

        let dec = split_graph(
            &cur,
            |e| class_of[orig_of[e.index()].index()] <= active_class,
            radius,
            &mut rng,
        );
        stats.decomposition_rounds += dec.rounds.max(1);
        for &e in &dec.tree_edges {
            tree_edges.push(orig_of[e.index()]);
        }

        let labels = if dec.num_clusters == cur.num_nodes() {
            // Unlucky decomposition with no contraction: force progress by
            // merging the endpoints of one active edge.
            stats.forced_contractions += 1;
            let e = cur
                .edge_ids()
                .find(|&e| class_of[orig_of[e.index()].index()] <= active_class)
                .expect("an active edge exists");
            tree_edges.push(orig_of[e.index()]);
            let edge = cur.edge(e);
            let mut labels = dec.cluster_of.clone();
            let from = labels[edge.head.index()];
            let to = labels[edge.tail.index()];
            for l in &mut labels {
                if *l == from {
                    *l = to;
                }
            }
            densify(&labels)
        } else {
            dec.cluster_of
        };

        let contracted = ContractedGraph::new(&cur, &labels);
        orig_of = contracted
            .original_edge
            .iter()
            .map(|&prev| orig_of[prev.index()])
            .collect();
        cur = contracted.graph;
        active_class = (active_class + 1).min(num_classes + 1);
    }

    debug_assert_eq!(
        tree_edges.len(),
        n - 1,
        "AKPW must select exactly n-1 edges"
    );
    let tree = RootedTree::spanning_from_edges(g, NodeId(0), &tree_edges)?;
    Ok(LowStretchResult { tree, stats })
}

/// Re-labels an arbitrary labelling to dense labels `0..k`, preserving the
/// partition.
fn densify(labels: &[usize]) -> Vec<usize> {
    let mut map = std::collections::HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = map.len();
            *map.entry(l).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::{gen, spanning};

    fn unit_lengths(g: &Graph) -> Vec<f64> {
        vec![1.0; g.num_edges()]
    }

    #[test]
    fn produces_spanning_tree_on_grid() {
        let g = gen::grid(8, 8, 1.0);
        let lengths = unit_lengths(&g);
        let r = low_stretch_spanning_tree(&g, &lengths, &LowStretchConfig::default()).unwrap();
        assert_eq!(r.tree.num_nodes(), 64);
        assert_eq!(r.tree.graph_edges().len(), 63);
        assert!(r.stats.iterations >= 1);
    }

    #[test]
    fn produces_spanning_tree_on_all_families() {
        for fam in gen::Family::ALL {
            let g = fam.generate(50, 3);
            let lengths: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
            let r = low_stretch_spanning_tree(&g, &lengths, &LowStretchConfig::default())
                .unwrap_or_else(|e| panic!("family {fam}: {e}"));
            assert_eq!(
                r.tree.graph_edges().len(),
                g.num_nodes() - 1,
                "family {fam}"
            );
        }
    }

    #[test]
    fn stretch_is_low_on_the_grid() {
        // On a 10x10 unit grid the AKPW tree should beat a BFS tree rooted in
        // a corner and stay well below the trivial O(diameter) bound.
        // (A uniformly random spanning tree is already near-optimal on a grid,
        // so the meaningful baselines are BFS and the absolute bound; the E3
        // experiment reports all of them.)
        let g = gen::grid(10, 10, 1.0);
        let lengths = unit_lengths(&g);
        let mut akpw_total = 0.0;
        for seed in 0..5 {
            let cfg = LowStretchConfig::default().with_seed(seed);
            let r = low_stretch_spanning_tree(&g, &lengths, &cfg).unwrap();
            akpw_total += r.tree.average_stretch(&g, |e| lengths[e.index()]);
        }
        let akpw_avg = akpw_total / 5.0;
        let bfs = spanning::bfs_tree(&g, NodeId(0)).unwrap();
        let bfs_stretch = bfs.average_stretch(&g, |e| lengths[e.index()]);
        assert!(
            akpw_avg < bfs_stretch,
            "AKPW stretch {akpw_avg} should beat corner-BFS stretch {bfs_stretch}"
        );
        let log2n = (g.num_nodes() as f64).log2();
        assert!(
            akpw_avg < 2.0 * log2n,
            "AKPW stretch {akpw_avg} should be well below 2·log2(n) = {}",
            2.0 * log2n
        );
    }

    #[test]
    fn respects_length_classes() {
        // A cycle where one edge is enormously long: the long edge should not
        // appear in the tree (it is the only edge whose removal keeps the
        // cycle spanning, and AKPW activates it last).
        let mut g = gen::path(20, 1.0);
        g.add_edge(NodeId(19), NodeId(0), 1.0).unwrap();
        let mut lengths = vec![1.0; g.num_edges()];
        let long_edge = EdgeId((g.num_edges() - 1) as u32);
        lengths[long_edge.index()] = 1.0e6;
        let cfg = LowStretchConfig::default().with_z(4.0);
        let r = low_stretch_spanning_tree(&g, &lengths, &cfg).unwrap();
        assert!(
            !r.tree.graph_edges().contains(&long_edge),
            "the very long edge must not be chosen"
        );
        assert!(r.stats.num_classes > 1);
    }

    #[test]
    fn single_node_and_errors() {
        let g = Graph::with_nodes(1);
        let r = low_stretch_spanning_tree(&g, &[], &LowStretchConfig::default()).unwrap();
        assert_eq!(r.tree.num_nodes(), 1);

        let g = Graph::with_nodes(0);
        assert!(matches!(
            low_stretch_spanning_tree(&g, &[], &LowStretchConfig::default()),
            Err(GraphError::Empty)
        ));

        let g = gen::path(3, 1.0);
        assert!(low_stretch_spanning_tree(&g, &[1.0], &LowStretchConfig::default()).is_err());
        assert!(low_stretch_spanning_tree(&g, &[1.0, -2.0], &LowStretchConfig::default()).is_err());

        let disconnected = {
            let mut g = Graph::with_nodes(4);
            g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
            g
        };
        assert!(matches!(
            low_stretch_spanning_tree(&disconnected, &[1.0], &LowStretchConfig::default()),
            Err(GraphError::NotConnected)
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = gen::random_gnp(40, 0.2, (1.0, 4.0), 7);
        let lengths: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
        let cfg = LowStretchConfig::default().with_seed(11);
        let a = low_stretch_spanning_tree(&g, &lengths, &cfg).unwrap();
        let b = low_stretch_spanning_tree(&g, &lengths, &cfg).unwrap();
        assert_eq!(a.tree.graph_edges(), b.tree.graph_edges());
    }

    #[test]
    fn theoretical_config_works() {
        let g = gen::grid(6, 6, 1.0);
        let lengths = unit_lengths(&g);
        let r = low_stretch_spanning_tree(&g, &lengths, &LowStretchConfig::theoretical()).unwrap();
        assert_eq!(r.tree.graph_edges().len(), 35);
        // With the theoretical z the whole graph fits in one length class.
        assert_eq!(r.stats.num_classes, 1);
    }

    #[test]
    fn multigraph_with_parallel_edges() {
        let mut g = gen::cycle(10, 1.0);
        // Add parallel edges.
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 2.0).unwrap();
        let lengths = vec![1.0; g.num_edges()];
        let r = low_stretch_spanning_tree(&g, &lengths, &LowStretchConfig::default()).unwrap();
        assert_eq!(r.tree.graph_edges().len(), 9);
    }
}
