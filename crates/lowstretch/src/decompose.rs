//! Low-diameter decomposition (`SplitGraph` of Blelloch et al., Figure 4 of
//! the paper).
//!
//! Given an unweighted (multi)graph restricted to a set of *active* edges and
//! a target radius `ρ`, the decomposition partitions the nodes into clusters
//! of hop radius `O(ρ)` such that every edge is cut (has endpoints in
//! different clusters) with probability `O(log n / ρ)`.
//!
//! We implement the random-delay BFS variant that the paper's `SplitGraph`
//! uses: every node draws a random start delay in `[0, ρ)`, all nodes grow
//! BFS balls simultaneously (a ball can start expanding only after its
//! delay), and every node joins the cluster of the first ball that reaches
//! it, breaking ties by the smaller center identifier. In the CONGEST model
//! the same process runs in `O(ρ)` rounds because only the winning traversal
//! needs to proceed over any edge (§7).

use flowgraph::{EdgeId, Graph, NodeId};
use rand::Rng;

/// Result of a low-diameter decomposition.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Cluster label of every node (dense in `0..num_clusters`).
    pub cluster_of: Vec<usize>,
    /// Number of clusters.
    pub num_clusters: usize,
    /// BFS-tree edges chosen inside the clusters (each connects a node to the
    /// neighbor through which it was first reached).
    pub tree_edges: Vec<EdgeId>,
    /// The center node of every cluster.
    pub centers: Vec<NodeId>,
    /// Maximum hop radius observed (distance from a node to its center).
    pub max_radius: usize,
    /// Number of active edges whose endpoints ended up in different clusters.
    pub cut_edges: usize,
    /// Number of synchronous rounds the random-delay BFS would take in the
    /// CONGEST model (the largest finish time over all nodes).
    pub rounds: usize,
}

/// Runs the random-delay BFS decomposition on the subgraph formed by the
/// edges for which `active(e)` is true, with target radius `radius`.
///
/// Nodes that are isolated in the active subgraph become singleton clusters.
///
/// # Panics
///
/// Panics if `radius == 0`.
pub fn split_graph(
    g: &Graph,
    active: impl Fn(EdgeId) -> bool,
    radius: usize,
    rng: &mut impl Rng,
) -> Decomposition {
    assert!(radius >= 1, "target radius must be at least 1");
    let n = g.num_nodes();
    // Random start delays in [0, radius).
    let delays: Vec<usize> = (0..n).map(|_| rng.gen_range(0..radius)).collect();

    // Priority queue on (arrival_time, center_id, node): every node is the
    // potential center of its own ball, started at its delay.
    // A node is claimed by the first (time, center) pair to reach it.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Item {
        time: usize,
        center: u32,
        node: u32,
        via_edge: u32,
        has_via: bool,
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<Item>> =
        std::collections::BinaryHeap::new();
    for (v, &delay) in delays.iter().enumerate().take(n) {
        heap.push(std::cmp::Reverse(Item {
            time: delay,
            center: v as u32,
            node: v as u32,
            via_edge: 0,
            has_via: false,
        }));
    }

    let mut owner: Vec<Option<(u32, usize)>> = vec![None; n]; // (center, arrival time)
    let mut tree_edges = Vec::new();
    let mut rounds = 0usize;
    while let Some(std::cmp::Reverse(item)) = heap.pop() {
        let v = item.node as usize;
        if owner[v].is_some() {
            continue;
        }
        owner[v] = Some((item.center, item.time));
        rounds = rounds.max(item.time);
        if item.has_via {
            tree_edges.push(EdgeId(item.via_edge));
        }
        for (eid, w) in g.incident(NodeId(v as u32)) {
            if !active(eid) || owner[w.index()].is_some() {
                continue;
            }
            heap.push(std::cmp::Reverse(Item {
                time: item.time + 1,
                center: item.center,
                node: w.0,
                via_edge: eid.0,
                has_via: true,
            }));
        }
    }

    // Densify cluster labels and gather statistics.
    let mut label_of_center = std::collections::HashMap::new();
    let mut centers = Vec::new();
    let mut cluster_of = vec![0usize; n];
    let mut max_radius = 0usize;
    for v in 0..n {
        let (center, time) =
            owner[v].expect("every node is claimed (it is its own candidate center)");
        let next = label_of_center.len();
        let label = *label_of_center.entry(center).or_insert_with(|| {
            centers.push(NodeId(center));
            next
        });
        cluster_of[v] = label;
        max_radius = max_radius.max(time.saturating_sub(delays[center as usize]));
    }
    let num_clusters = centers.len();
    let cut_edges = g
        .edges()
        .filter(|(id, e)| active(*id) && cluster_of[e.tail.index()] != cluster_of[e.head.index()])
        .count();

    Decomposition {
        cluster_of,
        num_clusters,
        tree_edges,
        centers,
        max_radius,
        cut_edges,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::gen;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn decomposition_covers_all_nodes() {
        let g = gen::grid(6, 6, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let dec = split_graph(&g, |_| true, 3, &mut rng);
        assert_eq!(dec.cluster_of.len(), 36);
        assert!(dec.num_clusters >= 1);
        assert_eq!(dec.centers.len(), dec.num_clusters);
        // Radius is bounded by the target radius (ball grows for < radius steps
        // after its delay, and delays are < radius).
        assert!(dec.max_radius <= 2 * 3);
    }

    #[test]
    fn tree_edges_span_clusters() {
        let g = gen::grid(6, 6, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let dec = split_graph(&g, |_| true, 4, &mut rng);
        // Each cluster of size k contributes k-1 tree edges.
        assert_eq!(dec.tree_edges.len(), 36 - dec.num_clusters);
        // Tree edges never cross clusters.
        for &e in &dec.tree_edges {
            let edge = g.edge(e);
            assert_eq!(
                dec.cluster_of[edge.tail.index()],
                dec.cluster_of[edge.head.index()]
            );
        }
    }

    #[test]
    fn inactive_edges_are_never_used() {
        let g = gen::grid(4, 4, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Only edges with even ids are active.
        let dec = split_graph(&g, |e| e.index() % 2 == 0, 3, &mut rng);
        for &e in &dec.tree_edges {
            assert_eq!(e.index() % 2, 0, "used an inactive edge");
        }
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let g = gen::path(5, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // No active edges at all.
        let dec = split_graph(&g, |_| false, 2, &mut rng);
        assert_eq!(dec.num_clusters, 5);
        assert!(dec.tree_edges.is_empty());
        assert_eq!(dec.cut_edges, 0);
    }

    #[test]
    fn larger_radius_gives_fewer_clusters_on_average() {
        let g = gen::grid(10, 10, 1.0);
        let mut small_total = 0usize;
        let mut large_total = 0usize;
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            small_total += split_graph(&g, |_| true, 2, &mut rng).num_clusters;
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 100);
            large_total += split_graph(&g, |_| true, 8, &mut rng).num_clusters;
        }
        assert!(large_total < small_total, "{large_total} !< {small_total}");
    }

    #[test]
    fn rounds_bounded_by_twice_radius() {
        let g = gen::grid(8, 8, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dec = split_graph(&g, |_| true, 5, &mut rng);
        assert!(dec.rounds <= 2 * 5 + 1);
    }
}
