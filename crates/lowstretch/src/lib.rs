//! Low average-stretch spanning trees (paper §7, Theorem 3.1).
//!
//! The congestion-approximator construction of Ghaffari et al. repeatedly
//! needs spanning trees whose *average stretch*
//! `Σ_e d_T(u_e, v_e) / Σ_e ℓ(e)` is small. The paper follows the classic
//! scheme of Alon, Karp, Peleg and West (AKPW) in the parallel formulation of
//! Blelloch et al.:
//!
//! 1. bucket the edges into length classes `E_i` with geometrically growing
//!    thresholds `z^i`;
//! 2. repeatedly run a low-diameter decomposition (`SplitGraph`) on the
//!    currently active (short) edges, take a BFS tree inside every cluster,
//!    contract the clusters and move to the next length class.
//!
//! The union of the per-cluster BFS trees over all iterations is a spanning
//! tree with expected average stretch `2^{O(√(log n · log log n))}` for the
//! theoretical choice of `z`; at practical sizes the crate lets callers pick
//! `z` (the experiments measure the realized stretch, see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use flowgraph::gen;
//! use lowstretch::{low_stretch_spanning_tree, LowStretchConfig};
//!
//! let g = gen::grid(8, 8, 1.0);
//! let lengths: Vec<f64> = g.edge_ids().map(|_| 1.0).collect();
//! let result = low_stretch_spanning_tree(&g, &lengths, &LowStretchConfig::default()).unwrap();
//! let stretch = result.tree.average_stretch(&g, |e| lengths[e.index()]);
//! assert!(stretch >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod akpw;
pub mod decompose;

pub use akpw::{low_stretch_spanning_tree, LowStretchConfig, LowStretchResult, LowStretchStats};
pub use decompose::{split_graph, Decomposition};

/// The theoretical class-growth parameter `z = 2^{√(6 log n · log log n)}` of
/// Alon et al. (§7). At practical sizes this exceeds the graph diameter, so
/// the construction degenerates to a single low-diameter decomposition; the
/// experiments therefore also sweep smaller `z` values.
pub fn theoretical_z(n: usize) -> f64 {
    if n < 4 {
        return 4.0;
    }
    let ln = (n as f64).ln() / std::f64::consts::LN_2;
    let lln = ln.max(2.0).log2();
    (6.0 * ln * lln).sqrt().exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_z_grows_slowly() {
        let z100 = theoretical_z(100);
        let z10000 = theoretical_z(10_000);
        assert!(z100 > 1.0);
        assert!(z10000 > z100);
        // Sub-polynomial: far below n itself.
        assert!(z10000 < 10_000.0 * 10_000.0);
        assert_eq!(theoretical_z(2), 4.0);
    }
}
