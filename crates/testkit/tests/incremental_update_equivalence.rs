//! Equivalence suite for `CongestionApproximator::update_capacities`, the
//! incremental re-preparation behind `flowd`'s graph-update requests.
//!
//! The pinned contract: after a batch of edge-capacity changes, the
//! incrementally patched approximator is equivalent to **rebuilding the same
//! tree topologies from scratch** against the updated graph
//! (`CapacitatedTree::new` per kept tree) — per-cut capacities, relative
//! loads, and the certified congestion *brackets* (lower/upper bound) all
//! agree. Bitwise equality is impossible in general — the incremental path
//! computes `old_sum + delta` while the fresh path re-sums every crossing
//! edge in LCA-marking order, and float addition is not associative — so the
//! suite pins a tight relative tolerance instead; the unit tests in
//! `capprox::approximator` cover the bitwise case with integer capacities.
//!
//! The suite also counter-asserts the incremental path actually ran
//! (`trees_touched`/`slots_patched` from `CapacityUpdateStats`): a silent
//! full rebuild masquerading as an incremental update would pass any output
//! check, so the work counters are part of the contract.

use capprox::racke::{CapacitatedTree, EnsembleStats, TreeEnsemble};
use capprox::{CapacityChange, CongestionApproximator, RackeConfig};
use flowgraph::{Demand, EdgeId, Graph};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use testkit::families;

/// Relative tolerance for `old_sum + delta` versus re-summation: both are
/// within a few ulps of the true value for the modest cut sizes of the
/// oracle families.
const TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * (1.0 + a.abs().max(b.abs()))
}

/// Rebuilds the ground truth: the same tree topologies, recapacitated from
/// scratch against the updated graph.
fn recapacitated(approx: &CongestionApproximator, g: &Graph) -> CongestionApproximator {
    let trees: Vec<CapacitatedTree> = approx
        .trees()
        .iter()
        .map(|t| CapacitatedTree::new(g, t.tree.clone()))
        .collect();
    let num_trees = trees.len();
    CongestionApproximator::from_ensemble(TreeEnsemble {
        trees,
        stats: EnsembleStats {
            num_trees,
            max_rloads: Vec::new(),
            decomposition_rounds: 0,
            average_stretches: Vec::new(),
        },
    })
    .expect("kept ensembles are non-empty")
}

/// Draws `count` distinct edges and new capacities from the instance seed,
/// applies them to `g`, and returns the change records.
fn apply_random_changes(g: &mut Graph, seed: u64, count: usize) -> Vec<CapacityChange> {
    let mut rng = flowgraph::gen::rng(seed);
    let m = g.num_edges();
    let mut picked: Vec<usize> = Vec::new();
    let mut changes = Vec::new();
    for _ in 0..count.min(m) {
        let mut e = rand::Rng::gen_range(&mut rng, 0..m);
        while picked.contains(&e) {
            e = rand::Rng::gen_range(&mut rng, 0..m);
        }
        picked.push(e);
        let edge = EdgeId(e as u32);
        let old = g.capacity(edge);
        let new = rand::Rng::gen_range(&mut rng, 0.25..8.0);
        g.set_capacity(edge, new).expect("positive finite capacity");
        changes.push(CapacityChange { edge, old, new });
    }
    changes
}

fn assert_equivalent(
    inc: &CongestionApproximator,
    fresh: &CongestionApproximator,
    g: &Graph,
    b: &Demand,
    context: &str,
) -> Result<(), TestCaseError> {
    for (ti, (it, ft)) in inc.trees().iter().zip(fresh.trees().iter()).enumerate() {
        for v in 0..g.num_nodes() {
            prop_assert!(
                close(it.cut_capacity[v], ft.cut_capacity[v]),
                "{context}: tree {ti} node {v} cut {} vs fresh {}",
                it.cut_capacity[v],
                ft.cut_capacity[v]
            );
            prop_assert!(
                close(it.rload[v], ft.rload[v]),
                "{context}: tree {ti} node {v} rload {} vs fresh {}",
                it.rload[v],
                ft.rload[v]
            );
        }
    }
    // The operator path (R·b through the patched slot views) feeds the
    // brackets the solver certifies against; both ends must agree.
    let (lo_i, lo_f) = (
        inc.congestion_lower_bound(b),
        fresh.congestion_lower_bound(b),
    );
    prop_assert!(close(lo_i, lo_f), "{context}: lower {lo_i} vs {lo_f}");
    let (hi_i, hi_f) = (
        inc.congestion_upper_bound(g, b),
        fresh.congestion_upper_bound(g, b),
    );
    prop_assert!(close(hi_i, hi_f), "{context}: upper {hi_i} vs {hi_f}");
    prop_assert!(lo_i <= hi_i * (1.0 + TOL), "{context}: bracket inverted");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Incremental == fresh-recapacitation across every oracle family, for
    /// random change batches of varying size, including a second chained
    /// batch on top of the first (updates compose without drift).
    #[test]
    fn incremental_update_equals_fresh_recapacitation(
        n in 12usize..32,
        seed in 0u64..10_000,
        batch in 1usize..6,
    ) {
        for inst in families::oracle_families(n, seed) {
            let mut g = inst.graph.clone();
            let mut approx = CongestionApproximator::build(
                &g,
                &RackeConfig::default().with_num_trees(3).with_seed(seed ^ 0x5eed),
            ).expect("families are connected");
            let b = Demand::st(&g, inst.s, inst.t, 1.0);

            let changes = apply_random_changes(&mut g, seed ^ 0x11, batch);
            let stats = approx.update_capacities(&g, &changes).expect("valid changes");
            prop_assert_eq!(stats.trees_total, 3, "family {}", inst.name);
            // Every change moves a real capacity, and every edge crosses at
            // least one tree cut per tree, so all trees get patched.
            prop_assert_eq!(stats.trees_touched, 3, "family {}", inst.name);
            prop_assert!(
                stats.slots_patched >= changes.len() * 3,
                "family {}: {} slots for {} changes",
                inst.name, stats.slots_patched, changes.len()
            );
            let fresh = recapacitated(&approx, &g);
            assert_equivalent(&approx, &fresh, &g, &b, inst.name)?;

            // A second batch chained on the already-patched state.
            let changes2 = apply_random_changes(&mut g, seed ^ 0x22, batch);
            approx.update_capacities(&g, &changes2).expect("valid changes");
            let fresh2 = recapacitated(&approx, &g);
            assert_equivalent(&approx, &fresh2, &g, &b, inst.name)?;
        }
    }

    /// Same equivalence through the recursive j-tree hierarchy builder: the
    /// lifted trees are genuine spanning trees of `g`, so path patching must
    /// work identically on them.
    #[test]
    fn hierarchical_builds_update_incrementally_too(
        seed in 0u64..10_000,
        batch in 1usize..4,
    ) {
        let inst = &families::oracle_families(25, seed)[1]; // the grid family
        let mut g = inst.graph.clone();
        let mut approx = CongestionApproximator::build_hierarchical(
            &g,
            &capprox::HierarchyConfig::default().with_direct_threshold(16),
            &RackeConfig::default().with_num_trees(2).with_seed(seed),
        ).expect("grid is connected");
        let b = Demand::st(&g, inst.s, inst.t, 1.0);
        let changes = apply_random_changes(&mut g, seed ^ 0x33, batch);
        let stats = approx.update_capacities(&g, &changes).expect("valid changes");
        prop_assert!(stats.trees_touched >= 1);
        let fresh = recapacitated(&approx, &g);
        assert_equivalent(&approx, &fresh, &g, &b, "hierarchical grid")?;
        prop_assert!(approx.hierarchy_stats().is_some());
    }
}
