//! Differential suite for the recursive j-tree hierarchy (Theorem 8.10).
//!
//! Three properties are pinned on seeded oracle families:
//!
//! 1. **Soundness**: the hierarchical and the direct approximator both
//!    certify a bracket `[lower, upper]` around the same `opt(b)`, so the two
//!    intervals must intersect on every demand.
//! 2. **Quality band**: the hierarchical bracket may be wider (the recursion
//!    trades approximation quality for build scalability) but only by a
//!    bounded factor over the direct build's bracket.
//! 3. **Byte stability**: two hierarchical builds with the same configuration
//!    produce bit-identical operators — every `R·b` evaluation matches to the
//!    last bit.

use capprox::{CongestionApproximator, HierarchyConfig, RackeConfig};
use flowgraph::Demand;
use proptest::prelude::*;
use testkit::families::{oracle_families, streaming, Instance};

/// How much wider the hierarchical bracket may be than the direct bracket on
/// the small seeded instances below. The recursion inflates the quality `α`
/// by a bounded per-level factor (sparsifier distortion times the j-tree
/// embedding loss), and with the shallow hierarchies these sizes produce the
/// observed inflation stays well under this band.
const QUALITY_BAND: f64 = 16.0;

fn hier_config(seed: u64) -> HierarchyConfig {
    HierarchyConfig::default()
        .with_direct_threshold(24)
        .with_chains(2)
        .with_trees_per_chain(Some(2))
        .with_seed(seed)
}

fn racke_config(seed: u64) -> RackeConfig {
    RackeConfig::default().with_seed(seed).with_num_trees(4)
}

/// Checks all three pinned properties on one instance; panics with the
/// family name on violation.
fn check_instance(inst: &Instance, seed: u64) {
    let g = &inst.graph;
    let racke = racke_config(seed);
    let direct = CongestionApproximator::build(g, &racke).expect("direct build succeeds");
    let hier = CongestionApproximator::build_hierarchical(g, &hier_config(seed), &racke)
        .expect("hierarchical build succeeds");
    let b = Demand::st(g, inst.s, inst.t, 1.0);

    let (dl, du) = (
        direct.congestion_lower_bound(&b),
        direct.congestion_upper_bound(g, &b),
    );
    let (hl, hu) = (
        hier.congestion_lower_bound(&b),
        hier.congestion_upper_bound(g, &b),
    );
    let tol = 1e-9 * (1.0 + du.abs() + hu.abs());
    assert!(
        hl <= du + tol && dl <= hu + tol,
        "family {}: hierarchical bracket [{hl}, {hu}] and direct bracket [{dl}, {du}] \
         cannot both contain opt(b)",
        inst.name
    );
    assert!(
        hu / hl.max(f64::MIN_POSITIVE) <= QUALITY_BAND * (du / dl.max(f64::MIN_POSITIVE)),
        "family {}: hierarchical bracket ratio {} exceeds {QUALITY_BAND}x the direct ratio {}",
        inst.name,
        hu / hl,
        du / dl
    );

    // Byte stability: an identical second build evaluates bit-identically.
    let again = CongestionApproximator::build_hierarchical(g, &hier_config(seed), &racke)
        .expect("hierarchical rebuild succeeds");
    let rows = hier.apply(&b).expect("apply succeeds");
    let rows_again = again.apply(&b).expect("apply succeeds");
    assert_eq!(rows.len(), rows_again.len());
    for (i, (a, b)) in rows.iter().zip(&rows_again).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "family {}: row {i} differs between identical builds",
            inst.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn hierarchy_stays_in_band_and_byte_stable_on_seeded_families(
        n in 16usize..90,
        family in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let inst = oracle_families(n, seed).swap_remove(family);
        check_instance(&inst, seed);
    }
}

#[test]
fn hierarchy_stays_in_band_on_a_ten_thousand_node_grid() {
    // The satellite's upper size bound: a 10k-node mesh built by the
    // streaming generator, recursed through several levels. One chain and
    // one bottom tree keep the debug-mode runtime acceptable; byte
    // stability and the bracket intersection are checked exactly as above.
    let g = streaming::grid(100, 100, 1.0).expect("10k grid fits u32 ids");
    let inst = Instance {
        name: "grid10k",
        s: flowgraph::NodeId(0),
        t: flowgraph::NodeId(9_999),
        graph: g,
        seed: 7,
    };
    let racke = RackeConfig::default().with_seed(7).with_num_trees(1);
    let config = HierarchyConfig::default()
        .with_direct_threshold(512)
        .with_chains(1)
        .with_trees_per_chain(Some(1))
        .with_seed(7);
    let hier = CongestionApproximator::build_hierarchical(&inst.graph, &config, &racke)
        .expect("hierarchical build succeeds at n = 10k");
    let stats = hier.hierarchy_stats().expect("hierarchy stats recorded");
    assert!(
        stats.num_levels() >= 2,
        "a 10k-node grid must recurse at least twice, got {} levels",
        stats.num_levels()
    );
    let b = Demand::st(&inst.graph, inst.s, inst.t, 1.0);
    let (lower, upper) = (
        hier.congestion_lower_bound(&b),
        hier.congestion_upper_bound(&inst.graph, &b),
    );
    assert!(
        lower > 0.0 && lower <= upper,
        "degenerate bracket [{lower}, {upper}]"
    );
    // The corner-to-corner cut of a 100x100 unit grid has opt ~ 1/2 at the
    // corners; the certified bracket must contain a plausible opt, i.e. stay
    // within a generous constant of the trivial corner cut bound.
    assert!(
        lower <= 0.5 + 1e-9,
        "lower bound {lower} exceeds the corner cut congestion 1/2"
    );
    assert!(upper >= 0.5 - 1e-9, "upper bound {upper} misses opt >= 1/2");
}
