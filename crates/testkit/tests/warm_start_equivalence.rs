//! Differential suite for warm-started duals (`MaxFlowConfig::warm_start`).
//!
//! Two properties are pinned across the seeded workload families:
//!
//! 1. **Off means off**: with the knob disabled (the default), sessions are
//!    history-free — repeated and interleaved queries answer byte-identically
//!    to a fresh PR-3-style session and to the one-shot wrapper, so enabling
//!    the feature elsewhere can never perturb existing callers.
//! 2. **On stays certified**: with the knob enabled, every answer — cold,
//!    warm-repeat, and reversed-pair — remains a feasible `s`–`t` flow inside
//!    the `(1 ± ε)`-style oracle band against the exact Dinic optimum, and
//!    the certified upper bound still bounds the optimum. Warm starts may
//!    change the descent trajectory, never the contract.

use capprox::RackeConfig;
use congest::Parallelism;
use maxflow::{approx_max_flow, MaxFlowConfig, PreparedMaxFlow};
use proptest::prelude::*;
use testkit::{families, OracleConfig};

fn config(seed: u64, eps: f64) -> MaxFlowConfig {
    MaxFlowConfig::default()
        .with_epsilon(eps)
        .with_racke(RackeConfig::default().with_num_trees(4).with_seed(seed))
        .with_phases(Some(2))
        .with_max_iterations_per_phase(1_000)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn disabled_warm_start_is_byte_identical_and_history_free(
        n in 12usize..30,
        seed in 0u64..10_000,
    ) {
        for inst in families::oracle_families(n, seed) {
            let cfg = config(seed ^ 0x5a, 0.3);
            let explicit_off = cfg.clone().with_warm_start(false);
            // Repeats are exactly where a leaked warm cache would show up.
            let pairs = [
                (inst.s, inst.t),
                (inst.s, inst.t),
                (inst.t, inst.s),
                (inst.s, inst.t),
            ];
            let mut default_session =
                PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
            let mut off_session =
                PreparedMaxFlow::prepare(&inst.graph, &explicit_off).expect("connected");
            let default_batch = default_session.max_flow_batch(&pairs).expect("valid pairs");
            let off_batch = off_session.max_flow_batch(&pairs).expect("valid pairs");
            let one_shot = approx_max_flow(&inst.graph, inst.s, inst.t, &cfg)
                .expect("families are connected");
            for (d, o) in default_batch.iter().zip(&off_batch) {
                prop_assert_eq!(d.value.to_bits(), o.value.to_bits(), "family {}", inst.name);
                prop_assert_eq!(
                    bits(d.flow.values()), bits(o.flow.values()),
                    "family {} flow differs", inst.name
                );
            }
            // History-free: the repeat of (s, t) equals the first answer bit
            // for bit, and both equal the stateless one-shot wrapper.
            prop_assert_eq!(
                bits(default_batch[0].flow.values()), bits(default_batch[1].flow.values()),
                "family {}: a repeated query diverged without warm starts", inst.name
            );
            prop_assert_eq!(
                one_shot.value.to_bits(), default_batch[0].value.to_bits(),
                "family {}", inst.name
            );
            prop_assert_eq!(
                bits(one_shot.flow.values()), bits(default_batch[0].flow.values()),
                "family {} flow differs from the one-shot wrapper", inst.name
            );
        }
    }

    #[test]
    fn warm_started_queries_stay_certified(
        n in 12usize..30,
        seed in 0u64..10_000,
    ) {
        // At the tiny proptest budgets the absolute (1 - ε) floor is out of
        // reach on some random instances with or without warm starts (the
        // asymptotic guarantee assumes O(ε⁻³) iterations), so this test
        // pins the budget-independent contract: every warm answer is a
        // feasible flow bracketed by the optimum and the certificate, and
        // warm re-use never degrades the answer materially below the
        // knob-off answer at the same budget. The absolute oracle band is
        // pinned by `warm_start_holds_the_oracle_band_at_the_full_budget`
        // below at the oracle suite's verified budget.
        let eps = 0.25;
        let tol = 1e-6;
        for inst in families::oracle_families(n, seed) {
            let cfg = config(seed ^ 0xc3, eps).with_warm_start(true);
            let exact = baselines::dinic::max_flow(&inst.graph, inst.s, inst.t)
                .expect("families are connected");
            let off = approx_max_flow(&inst.graph, inst.s, inst.t, &cfg.clone().with_warm_start(false))
                .expect("families are connected");
            let mut session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
            // Cold, warm-repeat (cache hit, scaled re-use), warm-repeat
            // again, and the reversed pair (negated re-use).
            let pairs = [
                (inst.s, inst.t),
                (inst.s, inst.t),
                (inst.s, inst.t),
                (inst.t, inst.s),
            ];
            for (i, &(s, t)) in pairs.iter().enumerate() {
                let r = session.max_flow(s, t).expect("valid terminals");
                let validated = r
                    .flow
                    .validate_st_flow(&inst.graph, s, t, tol)
                    .unwrap_or_else(|e| {
                        panic!("family {} query {i}: infeasible warm flow: {e}", inst.name)
                    });
                prop_assert!(
                    (validated - r.value).abs() <= tol * (1.0 + r.value.abs()),
                    "family {} query {i}: reported {} vs validated {}",
                    inst.name, r.value, validated
                );
                prop_assert!(
                    r.value <= exact.value + tol,
                    "family {} query {i}: value {} exceeds the optimum {}",
                    inst.name, r.value, exact.value
                );
                prop_assert!(
                    exact.value <= r.upper_bound + tol,
                    "family {} query {i}: certificate {} fails to bound the optimum {}",
                    inst.name, r.upper_bound, exact.value
                );
                // Forward queries (cold or warm) must not land materially
                // below the knob-off answer for the same budget.
                if s == inst.s {
                    prop_assert!(
                        r.value >= 0.9 * off.value - tol,
                        "family {} query {i}: warm value {} degraded below 0.9x the \
                         knob-off value {}",
                        inst.name, r.value, off.value
                    );
                }
            }
            // The parallel batch entry point runs warm batches through the
            // same wave schedule as the sequential one (waves are barriers,
            // so every warm flow is ready regardless of worker scheduling)
            // and must agree bit for bit — fresh sessions on both sides so
            // only the entry point differs.
            let par_cfg = cfg.clone().with_parallelism(Parallelism::with_threads(4));
            let mut par_session =
                PreparedMaxFlow::prepare(&inst.graph, &par_cfg).expect("connected");
            let par = par_session.par_max_flow_batch(&pairs).expect("valid pairs");
            let mut seq_session =
                PreparedMaxFlow::prepare(&inst.graph, &par_cfg).expect("connected");
            let seq = seq_session.max_flow_batch(&pairs).expect("valid pairs");
            for (p, q) in par.iter().zip(&seq) {
                prop_assert_eq!(
                    bits(p.flow.values()), bits(q.flow.values()),
                    "family {}: warm parallel batch diverged from sequential", inst.name
                );
            }
        }
    }
}

/// The full `(1 ± ε)`-style oracle band under warm starts, at the oracle
/// suite's verified budget and seeds (deterministic — can never flake):
/// cold, warm-repeat and reversed-pair answers all land between the quality
/// floor and the exact optimum, with a valid certificate.
#[test]
fn warm_start_holds_the_oracle_band_at_the_full_budget() {
    let oracle = OracleConfig::default();
    let cfg = oracle.solver_config().with_warm_start(true);
    let tol = oracle.tol;
    for inst in families::oracle_families(25, 7) {
        let exact = baselines::dinic::max_flow(&inst.graph, inst.s, inst.t)
            .expect("families are connected");
        let floor = oracle.quality_floor() * exact.value;
        let mut session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        let pairs = [(inst.s, inst.t), (inst.s, inst.t), (inst.t, inst.s)];
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let r = session.max_flow(s, t).expect("valid terminals");
            r.flow
                .validate_st_flow(&inst.graph, s, t, tol)
                .unwrap_or_else(|e| {
                    panic!("family {} query {i}: infeasible warm flow: {e}", inst.name)
                });
            // The graph is undirected, so the reversed optimum equals the
            // forward optimum and the same band applies to every query.
            assert!(
                r.value <= exact.value + tol,
                "family {} query {i}: value {} exceeds the optimum {}",
                inst.name,
                r.value,
                exact.value
            );
            assert!(
                r.value >= floor - tol,
                "family {} query {i}: value {} below the (1-ε-slack) floor {}",
                inst.name,
                r.value,
                floor
            );
            assert!(
                exact.value <= r.upper_bound + tol,
                "family {} query {i}: certificate {} fails to bound the optimum {}",
                inst.name,
                r.upper_bound,
                exact.value
            );
        }
    }
}
