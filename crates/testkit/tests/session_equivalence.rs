//! Differential suite for the build-once / query-many session API.
//!
//! Three equivalences are pinned across the seeded workload families:
//!
//! 1. A [`PreparedMaxFlow`] session answers **byte-identically** to the
//!    one-shot `approx_max_flow` wrapper for the same seed — the session's
//!    cached approximator, repair tree and reused scratch buffers must not
//!    perturb a single bit of the result.
//! 2. `max_flow_batch` equals the per-query loop, bit for bit and in order.
//! 3. `route` on a session equals the free `route_demand` for arbitrary
//!    balanced demands.

use capprox::RackeConfig;
use flowgraph::{Demand, NodeId};
use maxflow::{approx_max_flow, route_demand, MaxFlowConfig, PreparedMaxFlow};
use proptest::prelude::*;
use testkit::families;

fn config(seed: u64, eps: f64) -> MaxFlowConfig {
    MaxFlowConfig::default()
        .with_epsilon(eps)
        .with_racke(RackeConfig::default().with_num_trees(4).with_seed(seed))
        .with_phases(Some(2))
        .with_max_iterations_per_phase(600)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn session_answers_byte_identically_to_one_shot(
        n in 12usize..36,
        seed in 0u64..10_000,
        eps_pick in 0usize..3,
    ) {
        let eps = [0.5, 0.25, 0.1][eps_pick];
        for inst in families::oracle_families(n, seed) {
            let cfg = config(seed, eps);
            let one_shot = approx_max_flow(&inst.graph, inst.s, inst.t, &cfg)
                .expect("families are connected");
            let mut session = PreparedMaxFlow::prepare(&inst.graph, &cfg)
                .expect("families are connected");
            let ses = session.max_flow(inst.s, inst.t).expect("valid terminals");
            prop_assert_eq!(
                one_shot.value.to_bits(), ses.value.to_bits(),
                "family {} value differs", inst.name
            );
            prop_assert_eq!(
                one_shot.upper_bound.to_bits(), ses.upper_bound.to_bits(),
                "family {} upper bound differs", inst.name
            );
            prop_assert_eq!(one_shot.iterations, ses.iterations, "family {}", inst.name);
            prop_assert_eq!(one_shot.phases, ses.phases, "family {}", inst.name);
            prop_assert_eq!(
                bits(one_shot.flow.values()), bits(ses.flow.values()),
                "family {} flow differs", inst.name
            );
            // A repeat of the same query through the warm scratch is also
            // byte-identical.
            let again = session.max_flow(inst.s, inst.t).expect("valid terminals");
            prop_assert_eq!(bits(ses.flow.values()), bits(again.flow.values()));
        }
    }

    #[test]
    fn batch_equals_per_query_loop(
        n in 12usize..30,
        seed in 0u64..10_000,
    ) {
        for inst in families::oracle_families(n, seed) {
            let cfg = config(seed ^ 0xb5, 0.3);
            let last = NodeId((inst.graph.num_nodes() - 1) as u32);
            let pairs = [
                (inst.s, inst.t),
                (inst.t, inst.s),
                (NodeId(0), last),
                (inst.s, inst.t),
            ];
            let mut batch_session =
                PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
            let batch = batch_session.max_flow_batch(&pairs).expect("valid pairs");
            prop_assert_eq!(batch.len(), pairs.len());
            let mut loop_session =
                PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
            for (b, &(s, t)) in batch.iter().zip(&pairs) {
                let l = loop_session.max_flow(s, t).expect("valid pair");
                prop_assert_eq!(b.value.to_bits(), l.value.to_bits(), "family {}", inst.name);
                prop_assert_eq!(
                    bits(b.flow.values()), bits(l.flow.values()),
                    "family {} flow differs", inst.name
                );
            }
        }
    }

    #[test]
    fn session_route_equals_free_route_demand(
        n in 12usize..30,
        seed in 0u64..10_000,
        amount in 1u32..50,
    ) {
        for inst in families::oracle_families(n, seed) {
            let cfg = config(seed ^ 0x77, 0.4);
            let b = Demand::st(&inst.graph, inst.s, inst.t, f64::from(amount) / 10.0);
            let mut session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
            let ses = session.route(&b).expect("demand covers the graph");
            let free = route_demand(&inst.graph, session.approximator(), &b, &cfg)
                .expect("demand covers the graph");
            prop_assert_eq!(ses.iterations, free.iterations, "family {}", inst.name);
            prop_assert_eq!(ses.phases, free.phases, "family {}", inst.name);
            prop_assert_eq!(
                ses.congestion.to_bits(), free.congestion.to_bits(),
                "family {}", inst.name
            );
            prop_assert_eq!(
                bits(ses.flow.values()), bits(free.flow.values()),
                "family {} flow differs", inst.name
            );
        }
    }
}
