//! The cross-crate oracle suite every future PR runs through: the solver and
//! the distributed pipeline are held against the exact baselines within
//! `(1 ± ε)` on five structurally distinct seeded graph families, and the
//! CONGEST round accounting is held to its `Õ(D + √n)` / `O(log n)`-bit
//! shape.

use testkit::{
    check_congest_invariants, check_distributed_matches_centralized, check_exact_baselines_agree,
    check_solver_against_exact, congestcheck::CongestBudget, families, oracle_families,
    OracleConfig,
};

#[test]
fn solver_within_one_plus_epsilon_of_dinic_on_all_oracle_families() {
    let config = OracleConfig::default();
    let mut checked = 0;
    // n = 25 with this seed is verified to converge comfortably above the
    // floor on every family at the default iteration budget.
    for inst in oracle_families(25, 7) {
        let report = check_solver_against_exact(&inst, &config).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            report.ratio >= config.quality_floor() && report.ratio <= 1.0 + 1e-9,
            "family {}: ratio {} outside [{}, 1]",
            report.family,
            report.ratio,
            config.quality_floor()
        );
        checked += 1;
    }
    assert!(
        checked >= 4,
        "the oracle must cover at least 4 graph families"
    );
}

#[test]
fn oracle_families_stay_bracketed_across_seeds() {
    // The same bracket must hold for several fixed seeds, not just a lucky
    // one; seeds are fixed so this can never flake.
    let config = OracleConfig {
        max_iterations_per_phase: 2_000,
        epsilon: 0.2,
        quality_slack: 0.25,
        ..OracleConfig::default()
    };
    for seed in [11, 23] {
        for inst in oracle_families(25, seed) {
            check_solver_against_exact(&inst, &config).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn solver_stays_bracketed_over_trimmed_ensembles() {
    // Ensemble trimming (`RackeConfig::with_target_quality`) may drop trees
    // but never the certificate: the `(1 ± ε)`-style bracket against the
    // exact optimum must survive an aggressively trimmed ensemble on every
    // oracle family.
    let config = OracleConfig {
        target_quality: Some(1.5),
        quality_slack: 0.25,
        ..OracleConfig::default()
    };
    for inst in oracle_families(25, 7) {
        let report = check_solver_against_exact(&inst, &config).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            report.ratio >= config.quality_floor() && report.ratio <= 1.0 + 1e-9,
            "family {} over a trimmed ensemble: ratio {} outside [{}, 1]",
            report.family,
            report.ratio,
            config.quality_floor()
        );
    }
}

#[test]
fn solver_stays_bracketed_over_the_recursive_hierarchy() {
    // Building the approximator through the recursive j-tree hierarchy
    // (Theorem 8.10) must keep the `(1 ± ε)`-style bracket on every oracle
    // family: the lifted trees are genuine spanning trees of the input, so
    // only the quality (and hence the slack) may degrade, never soundness.
    let config = OracleConfig {
        hierarchy: Some(
            maxflow::HierarchyConfig::default()
                .with_direct_threshold(16)
                .with_chains(2)
                .with_trees_per_chain(Some(2)),
        ),
        // The hierarchy trades approximator quality (a larger α) for build
        // scalability, so the gradient descent needs a bigger budget and a
        // wider floor than the direct build to converge on the same bracket.
        quality_slack: 0.45,
        max_iterations_per_phase: 12_000,
        ..OracleConfig::default()
    };
    let mut checked = 0;
    for inst in oracle_families(25, 7) {
        let report = check_solver_against_exact(&inst, &config).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            report.ratio >= config.quality_floor() && report.ratio <= 1.0 + 1e-9,
            "family {} over the hierarchy: ratio {} outside [{}, 1]",
            report.family,
            report.ratio,
            config.quality_floor()
        );
        checked += 1;
    }
    assert!(checked >= 4, "the hierarchy must cover all oracle families");
}

#[test]
fn exact_baselines_agree_on_all_oracle_families() {
    for inst in oracle_families(30, 5) {
        check_exact_baselines_agree(&inst, 1e-6).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn distributed_execution_matches_centralized_on_grid_and_fat_tree() {
    let config = OracleConfig {
        max_iterations_per_phase: 500,
        phases: 2,
        ..OracleConfig::default()
    };
    for name in ["grid", "fat_tree"] {
        let inst = oracle_families(36, 3)
            .into_iter()
            .find(|i| i.name == name)
            .expect("family exists");
        check_distributed_matches_centralized(&inst, &config).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn congest_round_shape_holds_on_both_diameter_regimes() {
    let budget = CongestBudget::default();
    let config = OracleConfig {
        max_iterations_per_phase: 100,
        phases: 1,
        ..OracleConfig::default()
    };
    for inst in families::congest_families(64, 9) {
        let dist = maxflow::distributed_approx_max_flow(
            &inst.graph,
            inst.s,
            inst.t,
            &config.solver_config(),
        )
        .expect("connected instance");
        let report = check_congest_invariants(&dist, &budget)
            .unwrap_or_else(|e| panic!("family {}: {e}", inst.name));
        assert!(
            report.max_message_words <= budget.max_message_words,
            "family {}: {} words",
            inst.name,
            report.max_message_words
        );
    }
}

#[test]
fn oracle_runs_are_deterministic() {
    // Two identical runs over a randomized family must produce bit-identical
    // results: the whole pipeline is seeded.
    let inst = oracle_families(30, 13)
        .into_iter()
        .find(|i| i.name == "gnp")
        .expect("gnp family exists");
    let config = OracleConfig {
        max_iterations_per_phase: 300,
        phases: 1,
        // Quality is irrelevant here — the test asserts bit-identical
        // repeatability, so the floor is disabled.
        quality_slack: 1.0,
        ..OracleConfig::default()
    };
    let a = check_solver_against_exact(&inst, &config).unwrap_or_else(|e| panic!("{e}"));
    let b = check_solver_against_exact(&inst, &config).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(a.approx.to_bits(), b.approx.to_bits());
    assert_eq!(a.iterations, b.iterations);
}
