//! Differential suite for the deterministic parallel execution layer.
//!
//! The contract under test: **for any thread count, every parallel entry
//! point produces byte-identical results to `threads = 1`.** Three layers are
//! pinned across the seeded workload families at threads ∈ {1, 2, 4, 8}:
//!
//! 1. `capprox` — the fanned-out operator evaluations `R·b`
//!    (`apply_into_par`) and `Rᵀ·y` (`apply_transpose_into_par`) match the
//!    sequential operators bit for bit (the `Rᵀ` reduction folds tree
//!    contributions in fixed tree order, so even the floating-point error is
//!    identical).
//! 2. `maxflow` — `PreparedMaxFlow::par_max_flow_batch` (query fan-out) and
//!    single queries under a parallel config (operator fan-out inside the
//!    gradient loop) match the sequential session bit for bit.
//! 3. `congest` — the sharded engine's outputs, `RoundCost` and canonical
//!    delivery transcripts match both the sequential arena engine and the
//!    allocation-per-round `reference_run` executable spec.

use capprox::{CongestionApproximator, OperatorScratch, RackeConfig};
use congest::engine::{reference_run_traced, Network, Simulator};
use congest::primitives::BfsProtocol;
use congest::Parallelism;
use flowgraph::{Demand, NodeId};
use maxflow::{MaxFlowConfig, PreparedMaxFlow};
use proptest::prelude::*;
use testkit::families;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn config(seed: u64) -> MaxFlowConfig {
    MaxFlowConfig::default()
        .with_epsilon(0.3)
        .with_racke(RackeConfig::default().with_num_trees(4).with_seed(seed))
        .with_phases(Some(2))
        .with_max_iterations_per_phase(400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_operators_match_sequential_bits(
        n in 12usize..36,
        seed in 0u64..10_000,
    ) {
        for inst in families::oracle_families(n, seed) {
            let r = CongestionApproximator::build(
                &inst.graph,
                &RackeConfig::default().with_num_trees(5).with_seed(seed),
            )
            .expect("families are connected");
            let mut rng = flowgraph::gen::rng(seed ^ 0xabc);
            let mut b = Demand::zeros(inst.graph.num_nodes());
            for v in inst.graph.nodes() {
                b.set(v, rand::Rng::gen_range(&mut rng, -2.0..2.0));
            }
            let y: Vec<f64> = (0..r.num_rows())
                .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
                .collect();
            let seq_rows = r.apply(&b).expect("dimensions match");
            let seq_pot = r.apply_transpose(&y).expect("dimensions match");
            for threads in THREAD_COUNTS {
                let par = Parallelism::with_threads(threads);
                let mut scratch = OperatorScratch::default();
                let mut rows = vec![0.0; r.num_rows()];
                r.apply_into_par(&b, &mut rows, &mut scratch, &par)
                    .expect("dimensions match");
                prop_assert_eq!(
                    bits(&rows), bits(&seq_rows),
                    "family {} apply at {} threads", inst.name, threads
                );
                let mut pot = vec![0.0; r.num_nodes()];
                r.apply_transpose_into_par(&y, &mut pot, &mut scratch, &par)
                    .expect("dimensions match");
                prop_assert_eq!(
                    bits(&pot), bits(&seq_pot),
                    "family {} apply_transpose at {} threads", inst.name, threads
                );
            }
        }
    }

    #[test]
    fn par_batch_and_parallel_queries_match_sequential_bits(
        n in 12usize..28,
        seed in 0u64..10_000,
    ) {
        for inst in families::oracle_families(n, seed) {
            let last = NodeId((inst.graph.num_nodes() - 1) as u32);
            let pairs = [
                (inst.s, inst.t),
                (inst.t, inst.s),
                (NodeId(0), last),
                (inst.s, inst.t),
                (last, NodeId(0)),
            ];
            let mut seq_session = PreparedMaxFlow::prepare(&inst.graph, &config(seed))
                .expect("families are connected");
            let seq = seq_session.max_flow_batch(&pairs).expect("valid pairs");
            for threads in THREAD_COUNTS {
                let cfg = config(seed).with_parallelism(Parallelism::with_threads(threads));
                let mut session = PreparedMaxFlow::prepare(&inst.graph, &cfg)
                    .expect("families are connected");
                // Query fan-out: whole batch, in order, bit for bit.
                let batch = session.par_max_flow_batch(&pairs).expect("valid pairs");
                prop_assert_eq!(batch.len(), seq.len());
                for (p, s) in batch.iter().zip(&seq) {
                    prop_assert_eq!(
                        p.value.to_bits(), s.value.to_bits(),
                        "family {} batch value at {} threads", inst.name, threads
                    );
                    prop_assert_eq!(
                        bits(p.flow.values()), bits(s.flow.values()),
                        "family {} batch flow at {} threads", inst.name, threads
                    );
                    prop_assert_eq!(p.iterations, s.iterations, "family {}", inst.name);
                }
                // Operator fan-out inside a single query's gradient loop.
                let single = session.max_flow(inst.s, inst.t).expect("valid terminals");
                prop_assert_eq!(
                    single.value.to_bits(), seq[0].value.to_bits(),
                    "family {} single query at {} threads", inst.name, threads
                );
                prop_assert_eq!(bits(single.flow.values()), bits(seq[0].flow.values()));
            }
        }
    }

    #[test]
    fn sharded_engine_matches_sequential_and_reference_transcripts(
        n in 16usize..56,
        seed in 0u64..10_000,
    ) {
        for inst in families::congest_families(n, seed) {
            let network = Network::new(inst.graph.clone());
            let protocol = BfsProtocol::new(inst.s);
            let (seq, seq_t) = Simulator::new()
                .run_traced(&network, &protocol)
                .expect("BFS terminates");
            let (reference, reference_t) =
                reference_run_traced(&network, &protocol, 1_000_000).expect("BFS terminates");
            prop_assert_eq!(&seq.cost, &reference.cost, "family {}", inst.name);
            prop_assert_eq!(&seq_t, &reference_t, "family {}", inst.name);
            for threads in THREAD_COUNTS {
                let par = Parallelism::with_threads(threads);
                let (sharded, sharded_t) = Simulator::new()
                    .run_sharded_traced(&network, &protocol, &par)
                    .expect("BFS terminates");
                prop_assert_eq!(
                    &sharded.cost, &seq.cost,
                    "family {} cost at {} threads", inst.name, threads
                );
                prop_assert_eq!(
                    &sharded.outputs, &seq.outputs,
                    "family {} outputs at {} threads", inst.name, threads
                );
                prop_assert_eq!(
                    &sharded_t, &seq_t,
                    "family {} transcript at {} threads", inst.name, threads
                );
                // Byte-identical, not merely equal.
                prop_assert_eq!(
                    format!("{:?}", &sharded_t).into_bytes(),
                    format!("{:?}", &seq_t).into_bytes(),
                    "family {} transcript bytes at {} threads", inst.name, threads
                );
            }
        }
    }
}
