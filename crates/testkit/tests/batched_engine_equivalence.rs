//! Differential suite for the blocked multi-demand gradient engine behind
//! `max_flow_batch` / `par_max_flow_batch` / `route_many`.
//!
//! The engine advances up to 8 demands in lockstep through shared operator
//! walks, so the whole batched serving path rests on one invariant: **lane
//! grouping must never change a single bit of any answer**. Pinned here
//! across seeded families:
//!
//! 1. **Cold batches are the query loop**: without warm starts, batches of
//!    every size — through the sequential and the parallel entry point, with
//!    the direct and the hierarchical approximator — answer byte-identically
//!    to calling `max_flow` once per pair.
//! 2. **Warm batches are per-pair chain replays**: with warm starts, a
//!    batch's answer for the `j`-th occurrence of a terminal pair equals the
//!    `j`-th query of that pair on a fresh warm session (the documented wave
//!    semantics), again bit for bit and thread-count-invariant — the PR-6
//!    parallel warm fallback is gone.
//! 3. **Batches leave the session's single-query warm slot untouched.**
//! 4. **`route_many` is `route` per lane**, and batched answers hold the
//!    `(1 ± ε)` oracle band at the oracle suite's verified budget.

use std::collections::HashMap;

use capprox::{HierarchyConfig, RackeConfig};
use flowgraph::{Demand, Graph, NodeId};
use maxflow::{MaxFlowConfig, MaxFlowResult, Parallelism, PreparedMaxFlow};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use testkit::{families, OracleConfig};

fn config(seed: u64) -> MaxFlowConfig {
    MaxFlowConfig::default()
        .with_epsilon(0.3)
        .with_racke(RackeConfig::default().with_num_trees(4).with_seed(seed))
        .with_phases(Some(2))
        .with_max_iterations_per_phase(600)
}

fn hier_config(seed: u64) -> HierarchyConfig {
    HierarchyConfig::default()
        .with_direct_threshold(16)
        .with_chains(2)
        .with_trees_per_chain(Some(2))
        .with_seed(seed)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic query mix with repeats and reversals (the patterns warm
/// starts react to), seeded so failures reproduce.
fn query_pairs(g: &Graph, k: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes() as u64;
    let mut state = seed | 1;
    let mut step = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(k);
    for i in 0..k {
        if i >= 2 && i % 3 == 2 {
            // Revisit an earlier pair, half the time reversed.
            let (s, t) = pairs[(step() as usize) % i];
            pairs.push(if step() % 2 == 0 { (s, t) } else { (t, s) });
        } else {
            let s = step() % n;
            let mut t = step() % n;
            if t == s {
                t = (t + 1) % n;
            }
            pairs.push((NodeId(s as u32), NodeId(t as u32)));
        }
    }
    pairs
}

fn assert_batches_bit_identical(
    a: &[MaxFlowResult],
    b: &[MaxFlowResult],
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "{}: length mismatch", context);
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(
            x.value.to_bits(),
            y.value.to_bits(),
            "{}: value differs at query {}",
            context,
            i
        );
        prop_assert_eq!(
            x.upper_bound.to_bits(),
            y.upper_bound.to_bits(),
            "{}: upper bound differs at query {}",
            context,
            i
        );
        prop_assert_eq!(
            x.iterations,
            y.iterations,
            "{}: iterations differ at query {}",
            context,
            i
        );
        prop_assert_eq!(
            bits(x.flow.values()),
            bits(y.flow.values()),
            "{}: flow differs at query {}",
            context,
            i
        );
    }
    Ok(())
}

/// The documented warm-batch semantics: each orientation-normalized terminal
/// pair forms a chain through the batch, and the chain replays on a fresh
/// warm session.
fn warm_chain_reference(
    g: &Graph,
    cfg: &MaxFlowConfig,
    pairs: &[(NodeId, NodeId)],
) -> Vec<MaxFlowResult> {
    let mut chains: Vec<((u32, u32), Vec<usize>)> = Vec::new();
    let mut index: HashMap<(u32, u32), usize> = HashMap::new();
    for (i, &(s, t)) in pairs.iter().enumerate() {
        let key = if s.index() <= t.index() {
            (s.0, t.0)
        } else {
            (t.0, s.0)
        };
        match index.get(&key) {
            Some(&c) => chains[c].1.push(i),
            None => {
                index.insert(key, chains.len());
                chains.push((key, vec![i]));
            }
        }
    }
    let mut out: Vec<Option<MaxFlowResult>> = (0..pairs.len()).map(|_| None).collect();
    for (_, chain) in chains {
        let mut session = PreparedMaxFlow::prepare(g, cfg).expect("connected");
        for i in chain {
            let (s, t) = pairs[i];
            out[i] = Some(session.max_flow(s, t).expect("valid pair"));
        }
    }
    out.into_iter()
        .map(|r| r.expect("every query replayed"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Property 1 at every batch size that exercises a distinct lane shape:
    /// a partial block (1, 2, 7) and many full blocks (64).
    #[test]
    fn cold_batches_match_the_query_loop_at_every_size(
        n in 16usize..28,
        seed in 0u64..10_000,
    ) {
        let inst = &families::oracle_families(n, seed)[1]; // grid
        let cfg = config(seed ^ 0x11);
        let par_cfg = cfg.clone().with_parallelism(Parallelism::with_threads(4));
        let pairs = query_pairs(&inst.graph, 64, seed);
        let mut loop_session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        let reference: Vec<MaxFlowResult> = pairs
            .iter()
            .map(|&(s, t)| loop_session.max_flow(s, t).expect("valid pair"))
            .collect();
        let mut seq_session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        let mut par_session = PreparedMaxFlow::prepare(&inst.graph, &par_cfg).expect("connected");
        for k in [1usize, 2, 7, 64] {
            let head = &pairs[..k];
            let batch = seq_session.max_flow_batch(head).expect("valid pairs");
            assert_batches_bit_identical(&batch, &reference[..k], &format!("seq batch k={k}"))?;
            let par = par_session.par_max_flow_batch(head).expect("valid pairs");
            assert_batches_bit_identical(&par, &reference[..k], &format!("par batch k={k}"))?;
        }
    }

    /// Property 1 with the hierarchical approximator: the blocked engine
    /// sees the hierarchy only through the operator interface, so the same
    /// identity must hold.
    #[test]
    fn cold_batches_match_under_the_hierarchy(
        n in 16usize..28,
        seed in 0u64..10_000,
    ) {
        let inst = &families::oracle_families(n, seed)[2]; // expander
        let cfg = config(seed ^ 0x29).with_hierarchy(Some(hier_config(seed ^ 0x29)));
        let pairs = query_pairs(&inst.graph, 7, seed);
        let mut loop_session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        let reference: Vec<MaxFlowResult> = pairs
            .iter()
            .map(|&(s, t)| loop_session.max_flow(s, t).expect("valid pair"))
            .collect();
        let mut batch_session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        let batch = batch_session.max_flow_batch(&pairs).expect("valid pairs");
        assert_batches_bit_identical(&batch, &reference, "hierarchy batch")?;
        let par_cfg = cfg.clone().with_parallelism(Parallelism::with_threads(4));
        let mut par_session = PreparedMaxFlow::prepare(&inst.graph, &par_cfg).expect("connected");
        let par = par_session.par_max_flow_batch(&pairs).expect("valid pairs");
        assert_batches_bit_identical(&par, &reference, "hierarchy par batch")?;
    }

    /// Properties 2 and 3: warm batches replay per-pair chains (thread-count
    /// invariant — the PR-6 silent sequential fallback is gone) and never
    /// touch the session's single-query warm slot.
    #[test]
    fn warm_batches_replay_per_pair_chains(
        n in 16usize..28,
        seed in 0u64..10_000,
    ) {
        let inst = &families::oracle_families(n, seed)[1]; // grid
        let cfg = config(seed ^ 0x37).with_warm_start(true);
        let pairs = query_pairs(&inst.graph, 24, seed);
        let reference = warm_chain_reference(&inst.graph, &cfg, &pairs);
        let mut seq_session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        let seq = seq_session.max_flow_batch(&pairs).expect("valid pairs");
        assert_batches_bit_identical(&seq, &reference, "warm seq batch")?;
        let par_cfg = cfg.clone().with_parallelism(Parallelism::with_threads(4));
        let mut par_session = PreparedMaxFlow::prepare(&inst.graph, &par_cfg).expect("connected");
        let par = par_session.par_max_flow_batch(&pairs).expect("valid pairs");
        assert_batches_bit_identical(&par, &reference, "warm par batch")?;

        // The batch must not have seeded the session's single-query slot: a
        // follow-up query answers like the first query of a fresh session.
        let (s, t) = pairs[0];
        let after_batch = seq_session.max_flow(s, t).expect("valid pair");
        let mut fresh = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        let cold = fresh.max_flow(s, t).expect("valid pair");
        prop_assert_eq!(
            after_batch.value.to_bits(), cold.value.to_bits(),
            "a warm batch leaked state into the session's warm slot"
        );
        prop_assert_eq!(bits(after_batch.flow.values()), bits(cold.flow.values()));
    }

    /// Property 4 (identity half): `route_many` answers each commodity
    /// byte-identically to routing it alone.
    #[test]
    fn route_many_matches_independent_route_calls(
        n in 16usize..28,
        seed in 0u64..10_000,
    ) {
        let inst = &families::oracle_families(n, seed)[3]; // gnp
        let cfg = config(seed ^ 0x53);
        let pairs = query_pairs(&inst.graph, 7, seed);
        let demands: Vec<Demand> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(s, t))| Demand::st(&inst.graph, s, t, 1.0 + 0.5 * i as f64))
            .collect();
        let mut many_session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        let many = many_session.route_many(&demands).expect("valid demands");
        let mut loop_session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        for (l, (b, m)) in demands.iter().zip(&many).enumerate() {
            let single = loop_session.route(b).expect("valid demand");
            prop_assert_eq!(m.iterations, single.iterations, "commodity {}", l);
            prop_assert_eq!(m.phases, single.phases, "commodity {}", l);
            prop_assert_eq!(
                m.congestion.to_bits(), single.congestion.to_bits(),
                "commodity {}: congestion differs", l
            );
            prop_assert_eq!(
                bits(m.flow.values()), bits(single.flow.values()),
                "commodity {}: flow differs", l
            );
        }
    }
}

/// Property 4 (quality half): at the oracle suite's verified budget and
/// seeds, the blocked batch path holds the same `(1 ± ε)` oracle band as the
/// single-query path — deterministic, can never flake.
#[test]
fn batched_answers_hold_the_oracle_band_at_the_full_budget() {
    let oracle = OracleConfig::default();
    let cfg = oracle.solver_config();
    let tol = oracle.tol;
    for inst in families::oracle_families(25, 7) {
        let exact = baselines::dinic::max_flow(&inst.graph, inst.s, inst.t)
            .expect("families are connected");
        let floor = oracle.quality_floor() * exact.value;
        let mut session = PreparedMaxFlow::prepare(&inst.graph, &cfg).expect("connected");
        // A repeated and a reversed query share blocks with the cold one.
        let pairs = [(inst.s, inst.t), (inst.t, inst.s), (inst.s, inst.t)];
        let batch = session.max_flow_batch(&pairs).expect("valid pairs");
        for (i, (r, &(s, t))) in batch.iter().zip(&pairs).enumerate() {
            r.flow
                .validate_st_flow(&inst.graph, s, t, tol)
                .unwrap_or_else(|e| {
                    panic!(
                        "family {} query {i}: infeasible batched flow: {e}",
                        inst.name
                    )
                });
            assert!(
                r.value <= exact.value + tol,
                "family {} query {i}: value {} exceeds the optimum {}",
                inst.name,
                r.value,
                exact.value
            );
            assert!(
                r.value >= floor - tol,
                "family {} query {i}: value {} below the (1-ε-slack) floor {}",
                inst.name,
                r.value,
                floor
            );
            assert!(
                exact.value <= r.upper_bound + tol,
                "family {} query {i}: certificate {} fails to bound the optimum {}",
                inst.name,
                r.upper_bound,
                exact.value
            );
        }
    }
}
