//! The differential conformance suite: one protocol (and one max-flow
//! query), replayed across every engine, communication model, adversary and
//! thread count, must agree — byte-identically on reliable fabrics,
//! modulo the adversary's drop log on lossy ones.
//!
//! The CI `conformance` job runs this suite across the model × threads
//! {1, 4} matrix with a fixed seed set (`CONFORMANCE_THREADS` overrides the
//! thread matrix); the scheduled stress job multiplies the proptest case
//! counts via `PROPTEST_CASES_MULTIPLIER`.

use capprox::RackeConfig;
use congest::model::{Adversary, CommModel, FaultEvent};
use congest::primitives::{BfsProtocol, MinIdFlood};
use congest::treeops::TreeDecomposition;
use congest::{Network, Simulator};
use flowgraph::{gen, spanning, NodeId};
use maxflow::MaxFlowConfig;
use proptest::prelude::*;
use testkit::conformance::{
    check_flow_conformance, check_protocol_matrix, check_tree_aggregation_matrix, ConformanceMatrix,
};

fn matrix() -> ConformanceMatrix {
    ConformanceMatrix::default()
}

#[test]
fn min_id_flood_conforms_on_every_family() {
    for fam in gen::Family::ALL {
        let network = Network::new(fam.generate(30, 3));
        let report = check_protocol_matrix(&network, &MinIdFlood, &matrix())
            .unwrap_or_else(|e| panic!("family {fam}: {e}"));
        // 1 reference + 2 sharded + 2 models + 2 seeds x 3 drop rates.
        assert!(
            report.replays >= 9,
            "family {fam}: {} replays",
            report.replays
        );
        assert!(report.dropped > 0, "family {fam}: adversary never fired");
        assert!(report.retransmissions > 0, "family {fam}");
    }
}

#[test]
fn bfs_conforms_with_timing_dependent_outputs() {
    // BFS parent choices legitimately depend on message timing, so lossy
    // replays check accounting and termination, not output bytes.
    let mut m = matrix();
    m.lossy_outputs_equal = false;
    for fam in gen::Family::ALL {
        let network = Network::new(fam.generate(24, 5));
        check_protocol_matrix(&network, &BfsProtocol::new(NodeId(0)), &m)
            .unwrap_or_else(|e| panic!("family {fam}: {e}"));
    }
}

#[test]
fn flow_query_is_byte_identical_across_the_matrix() {
    let g = gen::grid(5, 5, 1.0);
    let config = MaxFlowConfig::default()
        .with_epsilon(0.3)
        .with_racke(RackeConfig::default().with_num_trees(3).with_seed(7))
        .with_phases(Some(1))
        .with_max_iterations_per_phase(20);
    let report = check_flow_conformance(&g, &config, NodeId(0), NodeId(24), &matrix())
        .expect("flows agree across the model matrix");
    assert!(report.replays >= 8, "{} replays", report.replays);
    assert!(report.retransmissions > 0);
    assert!(report.max_lossy_rounds > report.classic_rounds);
}

#[test]
fn scripted_adversaries_are_replayed_exactly() {
    // A fully scripted adversary (no randomness at all) must produce the
    // identical fault log twice, and the crash must be visible in it.
    let network = Network::new(gen::grid(4, 4, 1.0));
    let adv = Adversary::benign(0)
        .with_crash(2, NodeId(9))
        .with_edge_drop(1, flowgraph::EdgeId(0));
    let model = CommModel::Lossy(adv);
    let (a, af) = Simulator::new()
        .run_model(&network, &model, &MinIdFlood)
        .unwrap();
    let (b, bf) = Simulator::new()
        .run_model(&network, &model, &MinIdFlood)
        .unwrap();
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.cost, b.cost);
    assert_eq!(af.events, bf.events);
    assert!(af.events.iter().any(|e| matches!(
        e,
        FaultEvent::Crashed {
            round: 2,
            node: NodeId(9)
        }
    )));
    assert!(af.dropped() >= 1, "the scripted edge drop must be logged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn protocol_matrix_holds_on_random_graphs(seed in 0u64..10_000, n in 12usize..40) {
        let g = gen::random_gnp(n, 0.2, (1.0, 4.0), seed);
        if !g.is_connected() {
            return Ok(());
        }
        let network = Network::new(g);
        let report = check_protocol_matrix(&network, &MinIdFlood, &matrix());
        prop_assert!(report.is_ok(), "seed {}: {}", seed, report.unwrap_err());
    }

    #[test]
    fn tree_aggregations_conform_on_random_trees(seed in 0u64..10_000, n in 12usize..48) {
        let g = gen::random_gnp(n, 0.2, (1.0, 4.0), seed);
        if !g.is_connected() {
            return Ok(());
        }
        let tree = spanning::max_weight_spanning_tree(&g, NodeId(0)).unwrap();
        let mut rng = gen::rng(seed);
        let dec = TreeDecomposition::sample(
            &tree,
            TreeDecomposition::recommended_probability(n),
            &mut rng,
        );
        // Integer values: f64 sums are exact in any delivery order, so every
        // model must reproduce the oracle bytes.
        let values: Vec<f64> = (0..n).map(|v| ((v * 13 + seed as usize) % 9) as f64 - 4.0).collect();
        // The aggregation protocols route over tree edges of the original
        // graph, so the replay network is the graph itself.
        let network = Network::new(g);
        let report = check_tree_aggregation_matrix(&network, &tree, &dec, &values, &matrix());
        prop_assert!(report.is_ok(), "seed {}: {}", seed, report.unwrap_err());
    }
}
