//! Differential suite for the CSR graph core and the arena CONGEST engine.
//!
//! Two equivalences are pinned on seeded random multigraphs:
//!
//! 1. **Storage**: the CSR `incident`/`neighbors` slices must enumerate
//!    exactly the `(edge, endpoint)` sequence the legacy per-node
//!    `Vec<Vec<EdgeId>>` incidence path produced (same multiset *and* same
//!    insertion order — the documented CSR ordering guarantee).
//! 2. **Execution**: the BFS protocol from `congest::primitives` must
//!    produce byte-identical transcripts, identical `RoundCost` and
//!    identical outputs on the zero-allocation arena engine and on the
//!    allocation-per-round reference engine (`engine::reference_run_traced`).

use congest::engine::{reference_run_traced, Network, Simulator};
use congest::primitives::BfsProtocol;
use flowgraph::{EdgeId, Graph, NodeId};
use proptest::prelude::*;

/// Builds a connected random multigraph: a spanning path plus `extra` random
/// edges (parallel edges allowed), all derived deterministically from the
/// sampled integers.
fn build_graph(n: usize, extras: &[(usize, usize)]) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n - 1 {
        g.add_edge(NodeId(i as u32), NodeId((i + 1) as u32), 1.0 + i as f64)
            .expect("valid path edge");
    }
    for &(a, b) in extras {
        let u = a % n;
        // Skew away from u to avoid self-loops while keeping determinism.
        let v = (u + 1 + (b % (n - 1))) % n;
        g.add_edge(NodeId(u as u32), NodeId(v as u32), 2.0)
            .expect("valid extra edge");
    }
    g
}

/// The legacy incidence path, reconstructed as the executable specification:
/// append each edge id to both endpoint lists at insertion time.
fn legacy_incidence(g: &Graph) -> Vec<Vec<EdgeId>> {
    let mut incidence = vec![Vec::new(); g.num_nodes()];
    for (id, e) in g.edges() {
        incidence[e.tail.index()].push(id);
        incidence[e.head.index()].push(id);
    }
    incidence
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_enumerates_the_legacy_incidence_in_order(
        n in 2usize..40,
        extras in proptest::collection::vec((0usize..1000, 0usize..1000), 0..80),
    ) {
        let g = build_graph(n, &extras);
        let legacy = legacy_incidence(&g);
        for v in g.nodes() {
            let csr_edges: Vec<EdgeId> = g.incident(v).iter().map(|(e, _)| e).collect();
            prop_assert_eq!(&csr_edges, &legacy[v.index()]);
            prop_assert_eq!(g.degree(v), legacy[v.index()].len());
            // Every CSR neighbor is the other endpoint of its edge.
            for (e, w) in g.incident(v) {
                prop_assert_eq!(g.edge(e).other(v), w);
            }
            // neighbors() is exactly the incident slice view.
            let from_iter: Vec<(EdgeId, NodeId)> = g.neighbors(v).collect();
            prop_assert_eq!(&from_iter[..], &g.incident(v).to_vec()[..]);
        }
    }

    #[test]
    fn bfs_transcripts_match_between_engines(
        n in 2usize..30,
        extras in proptest::collection::vec((0usize..1000, 0usize..1000), 0..40),
        root_pick in 0usize..1000,
    ) {
        let g = build_graph(n, &extras);
        let root = NodeId((root_pick % n) as u32);
        let network = Network::new(g);
        let protocol = BfsProtocol::new(root);
        let (arena, arena_t) = Simulator::new()
            .run_traced(&network, &protocol)
            .expect("BFS respects the CONGEST rules");
        let (reference, reference_t) = reference_run_traced(&network, &protocol, 1_000_000)
            .expect("BFS respects the CONGEST rules");
        prop_assert_eq!(&arena.outputs, &reference.outputs);
        prop_assert_eq!(arena.cost, reference.cost);
        // Byte-identical canonical transcripts.
        let arena_bytes = format!("{arena_t:?}").into_bytes();
        let reference_bytes = format!("{reference_t:?}").into_bytes();
        prop_assert_eq!(arena_bytes, reference_bytes);
        // The outputs really are a BFS tree: depths equal graph distances.
        let dist = network.graph().bfs_distances(root);
        for (v, out) in arena.outputs.iter().enumerate() {
            match out {
                None => prop_assert_eq!(v, root.index()),
                Some((e, parent)) => {
                    prop_assert_eq!(dist[v], dist[parent.index()] + 1);
                    let edge = network.graph().edge(*e);
                    prop_assert!(edge.is_incident(NodeId(v as u32)));
                    prop_assert!(edge.is_incident(*parent));
                }
            }
        }
    }
}
