//! Named, seeded workload instances for the oracle suites.
//!
//! Each [`Instance`] bundles a connected graph, the terminal pair the oracles
//! route between, and the seed it was generated from, so every failure
//! message pinpoints a reproducible workload.

use flowgraph::{gen, Graph, GraphError, NodeId};

/// One reproducible workload: a graph plus its terminal pair.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Family name used in failure messages (e.g. `"grid"`).
    pub name: &'static str,
    /// The connected instance graph.
    pub graph: Graph,
    /// Flow source.
    pub s: NodeId,
    /// Flow sink.
    pub t: NodeId,
    /// The seed the instance was generated from.
    pub seed: u64,
}

impl Instance {
    fn from_family(name: &'static str, graph: Graph, seed: u64) -> Self {
        let (s, t) = gen::default_terminals(&graph);
        Instance {
            name,
            graph,
            s,
            t,
            seed,
        }
    }
}

/// The distinct graph families the `(1+ε)` oracle is required to pass on:
/// path, grid, expander, random `G(n,p)` and a datacenter-like fat-tree —
/// five structurally different workloads (line, mesh, low-diameter,
/// unstructured, hierarchical), all seeded.
pub fn oracle_families(n: usize, seed: u64) -> Vec<Instance> {
    let n = n.max(9);
    let side = (n as f64).sqrt().round().max(2.0) as usize;
    let leaves = (n / 8).clamp(2, 8);
    let spines = (leaves / 2).max(2);
    let hosts = ((n.saturating_sub(leaves + spines)) / leaves).max(1);
    let fat = gen::fat_tree(leaves, spines, hosts, 10.0, 40.0);
    let (fs, ft) = gen::fat_tree_terminals(leaves, hosts);
    vec![
        Instance::from_family("path", gen::path(n, 1.0), seed),
        Instance::from_family("grid", gen::grid(side, side, 1.0), seed),
        Instance::from_family("expander", gen::random_regular(n, 6, 1.0, seed), seed),
        Instance::from_family(
            "gnp",
            gen::random_gnp(n, (8.0 / n as f64).min(1.0), (1.0, 10.0), seed),
            seed,
        ),
        Instance {
            name: "fat_tree",
            graph: fat,
            s: fs,
            t: ft,
            seed,
        },
    ]
}

/// Instances for the CONGEST round-shape checks: one low-diameter family
/// (expander), one high-diameter family (path) and the mesh in between, so
/// the `D + √n` bound is stressed from both sides.
pub fn congest_families(n: usize, seed: u64) -> Vec<Instance> {
    let n = n.max(9);
    let side = (n as f64).sqrt().round().max(2.0) as usize;
    vec![
        Instance::from_family("expander", gen::random_regular(n, 6, 1.0, seed), seed),
        Instance::from_family("grid", gen::grid(side, side, 1.0), seed),
        Instance::from_family("path", gen::path(n, 1.0), seed),
    ]
}

/// Streaming generators that scale to millions of nodes.
///
/// Unlike the incremental `flowgraph::gen` builders (which grow the graph one
/// `add_edge` at a time), these compute the exact node and edge counts up
/// front, reject anything that would overflow the `u32` id space with a typed
/// [`GraphError`], fill the three struct-of-arrays edge columns directly and
/// hand them to [`Graph::from_soa`] in one shot — no per-node adjacency Vecs
/// and no incremental reallocation, so peak memory during construction is the
/// final edge list plus nothing.
pub mod streaming {
    use super::*;

    /// Checks a would-be node count against [`Graph::MAX_NODES`].
    ///
    /// `None` (arithmetic overflow while sizing the family) is reported the
    /// same way as an explicit out-of-range count.
    fn checked_nodes(requested: Option<usize>) -> Result<usize, GraphError> {
        match requested {
            Some(n) if n <= Graph::MAX_NODES => Ok(n),
            Some(n) => Err(GraphError::TooManyNodes { requested: n }),
            None => Err(GraphError::TooManyNodes {
                requested: usize::MAX,
            }),
        }
    }

    /// Checks a would-be edge count against [`Graph::MAX_EDGES`].
    fn checked_edges(requested: Option<usize>) -> Result<usize, GraphError> {
        match requested {
            Some(m) if m <= Graph::MAX_EDGES => Ok(m),
            Some(m) => Err(GraphError::TooManyEdges { requested: m }),
            None => Err(GraphError::TooManyEdges {
                requested: usize::MAX,
            }),
        }
    }

    /// Streaming fat-tree: identical topology and edge order to
    /// [`gen::fat_tree`] (leaf→spine fabric, then host uplinks, rack by
    /// rack), but with up-front sizing and a typed overflow error instead of
    /// a panic.
    pub fn fat_tree(
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
        host_capacity: f64,
        fabric_capacity: f64,
    ) -> Result<Graph, GraphError> {
        assert!(
            leaves >= 2 && spines >= 1 && hosts_per_leaf >= 1,
            "fat tree requires at least two leaves, one spine and one host per leaf"
        );
        assert!(
            host_capacity > 0.0 && fabric_capacity > 0.0,
            "fat tree capacities must be strictly positive"
        );
        let hosts = leaves.checked_mul(hosts_per_leaf);
        let num_nodes = checked_nodes(
            hosts
                .and_then(|h| h.checked_add(leaves))
                .and_then(|n| n.checked_add(spines)),
        )?;
        let hosts = hosts.expect("host count fits after node check");
        let num_edges = checked_edges(
            leaves
                .checked_mul(spines)
                .and_then(|f| f.checked_add(hosts)),
        )?;
        let mut tails = Vec::with_capacity(num_edges);
        let mut heads = Vec::with_capacity(num_edges);
        let mut capacities = Vec::with_capacity(num_edges);
        let leaf = |i: usize| (hosts + i) as u32;
        let spine = |i: usize| (hosts + leaves + i) as u32;
        for l in 0..leaves {
            for s in 0..spines {
                tails.push(leaf(l));
                heads.push(spine(s));
                capacities.push(fabric_capacity);
            }
            for h in 0..hosts_per_leaf {
                tails.push((l * hosts_per_leaf + h) as u32);
                heads.push(leaf(l));
                capacities.push(host_capacity);
            }
        }
        Graph::from_soa(num_nodes, tails, heads, capacities)
    }

    /// Streaming grid: identical topology and edge order to [`gen::grid`]
    /// (east then south, row-major), sized up front.
    pub fn grid(rows: usize, cols: usize, capacity: f64) -> Result<Graph, GraphError> {
        assert!(rows > 0 && cols > 0, "grid requires positive dimensions");
        assert!(capacity > 0.0, "grid capacity must be strictly positive");
        let num_nodes = checked_nodes(rows.checked_mul(cols))?;
        let horizontal = rows.checked_mul(cols - 1);
        let vertical = cols.checked_mul(rows - 1);
        let num_edges = checked_edges(horizontal.and_then(|h| vertical.map(|v| h + v)))?;
        let mut tails = Vec::with_capacity(num_edges);
        let mut heads = Vec::with_capacity(num_edges);
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    tails.push(id(r, c));
                    heads.push(id(r, c + 1));
                }
                if r + 1 < rows {
                    tails.push(id(r, c));
                    heads.push(id(r + 1, c));
                }
            }
        }
        let capacities = vec![capacity; tails.len()];
        Graph::from_soa(num_nodes, tails, heads, capacities)
    }

    /// Streaming expander-ish random regular multigraph: the same ring plus
    /// `⌈(d-2)/2⌉` random-permutation construction as
    /// [`gen::random_regular`], with the permutation drawn from the same
    /// seeded RNG, sized up front.
    pub fn random_regular(
        n: usize,
        d: usize,
        capacity: f64,
        seed: u64,
    ) -> Result<Graph, GraphError> {
        assert!(n >= 3, "random regular graph requires at least three nodes");
        assert!(d >= 2, "degree must be at least two");
        assert!(capacity > 0.0, "capacity must be strictly positive");
        let num_nodes = checked_nodes(Some(n))?;
        let extra = d.saturating_sub(2).div_ceil(2);
        // Ring edges plus at most `n` per extra permutation (fixed points of
        // the permutation are skipped, so this is an upper bound).
        let max_edges = checked_edges(n.checked_mul(extra).and_then(|e| e.checked_add(n)))?;
        let mut tails = Vec::with_capacity(max_edges);
        let mut heads = Vec::with_capacity(max_edges);
        for i in 0..n {
            tails.push(i as u32);
            heads.push(((i + 1) % n) as u32);
        }
        let mut rng = gen::rng(seed);
        for _ in 0..extra {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            use rand::seq::SliceRandom;
            perm.shuffle(&mut rng);
            for (u, &v) in perm.iter().enumerate() {
                if u as u32 != v {
                    tails.push(u as u32);
                    heads.push(v);
                }
            }
        }
        let capacities = vec![capacity; tails.len()];
        Graph::from_soa(num_nodes, tails, heads, capacities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_families_are_connected_distinct_and_deterministic() {
        let a = oracle_families(40, 3);
        let b = oracle_families(40, 3);
        assert_eq!(a.len(), 5);
        let mut names: Vec<_> = a.iter().map(|i| i.name).collect();
        names.dedup();
        assert_eq!(names.len(), 5, "family names must be distinct");
        for (x, y) in a.iter().zip(&b) {
            assert!(x.graph.is_connected(), "family {} disconnected", x.name);
            assert_eq!(x.graph, y.graph, "family {} not deterministic", x.name);
            assert_ne!(x.s, x.t, "family {} has degenerate terminals", x.name);
        }
    }

    #[test]
    fn streaming_generators_match_their_incremental_counterparts() {
        assert_eq!(
            streaming::fat_tree(4, 2, 3, 10.0, 40.0).unwrap(),
            gen::fat_tree(4, 2, 3, 10.0, 40.0)
        );
        assert_eq!(streaming::grid(7, 5, 1.0).unwrap(), gen::grid(7, 5, 1.0));
        assert_eq!(
            streaming::random_regular(50, 6, 1.0, 9).unwrap(),
            gen::random_regular(50, 6, 1.0, 9)
        );
    }

    #[test]
    fn streaming_fat_tree_builds_a_million_nodes() {
        let g = streaming::fat_tree(1000, 8, 1000, 10.0, 40.0).unwrap();
        assert_eq!(g.num_nodes(), 1_001_008);
        assert_eq!(g.num_edges(), 1_008_000);
    }

    #[test]
    fn streaming_grid_builds_a_million_nodes() {
        let g = streaming::grid(1000, 1000, 1.0).unwrap();
        assert_eq!(g.num_nodes(), 1_000_000);
        assert_eq!(g.num_edges(), 2 * 1000 * 999);
    }

    #[test]
    fn streaming_random_regular_builds_a_million_nodes() {
        let g = streaming::random_regular(1_000_000, 4, 1.0, 3).unwrap();
        assert_eq!(g.num_nodes(), 1_000_000);
        assert!(g.num_edges() >= 1_000_000);
        assert!(g.num_edges() <= 2_000_000);
    }

    #[test]
    fn streaming_generators_reject_u32_overflow_with_typed_errors() {
        use flowgraph::GraphError;

        // Node-count overflow, including arithmetic overflow while sizing.
        assert!(matches!(
            streaming::grid(Graph::MAX_NODES, 2, 1.0),
            Err(GraphError::TooManyNodes { .. })
        ));
        assert!(matches!(
            streaming::fat_tree(2, 1, usize::MAX / 2, 1.0, 1.0),
            Err(GraphError::TooManyNodes { .. })
        ));
        // Edge-count overflow with an in-range node count.
        assert!(matches!(
            streaming::grid(1, Graph::MAX_NODES, 1.0),
            Err(GraphError::TooManyEdges { .. })
        ));
        assert!(matches!(
            streaming::random_regular(Graph::MAX_NODES, 2, 1.0, 0),
            Err(GraphError::TooManyEdges { .. })
        ));
    }

    #[test]
    fn congest_families_cover_both_diameter_regimes() {
        let fams = congest_families(64, 1);
        let diam: Vec<usize> = fams
            .iter()
            .map(|i| i.graph.approx_hop_diameter().unwrap())
            .collect();
        // The path's diameter dwarfs the expander's.
        assert!(diam[2] > 4 * diam[0], "diameters {diam:?}");
    }
}
