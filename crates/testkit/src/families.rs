//! Named, seeded workload instances for the oracle suites.
//!
//! Each [`Instance`] bundles a connected graph, the terminal pair the oracles
//! route between, and the seed it was generated from, so every failure
//! message pinpoints a reproducible workload.

use flowgraph::{gen, Graph, NodeId};

/// One reproducible workload: a graph plus its terminal pair.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Family name used in failure messages (e.g. `"grid"`).
    pub name: &'static str,
    /// The connected instance graph.
    pub graph: Graph,
    /// Flow source.
    pub s: NodeId,
    /// Flow sink.
    pub t: NodeId,
    /// The seed the instance was generated from.
    pub seed: u64,
}

impl Instance {
    fn from_family(name: &'static str, graph: Graph, seed: u64) -> Self {
        let (s, t) = gen::default_terminals(&graph);
        Instance {
            name,
            graph,
            s,
            t,
            seed,
        }
    }
}

/// The distinct graph families the `(1+ε)` oracle is required to pass on:
/// path, grid, expander, random `G(n,p)` and a datacenter-like fat-tree —
/// five structurally different workloads (line, mesh, low-diameter,
/// unstructured, hierarchical), all seeded.
pub fn oracle_families(n: usize, seed: u64) -> Vec<Instance> {
    let n = n.max(9);
    let side = (n as f64).sqrt().round().max(2.0) as usize;
    let leaves = (n / 8).clamp(2, 8);
    let spines = (leaves / 2).max(2);
    let hosts = ((n.saturating_sub(leaves + spines)) / leaves).max(1);
    let fat = gen::fat_tree(leaves, spines, hosts, 10.0, 40.0);
    let (fs, ft) = gen::fat_tree_terminals(leaves, hosts);
    vec![
        Instance::from_family("path", gen::path(n, 1.0), seed),
        Instance::from_family("grid", gen::grid(side, side, 1.0), seed),
        Instance::from_family("expander", gen::random_regular(n, 6, 1.0, seed), seed),
        Instance::from_family(
            "gnp",
            gen::random_gnp(n, (8.0 / n as f64).min(1.0), (1.0, 10.0), seed),
            seed,
        ),
        Instance {
            name: "fat_tree",
            graph: fat,
            s: fs,
            t: ft,
            seed,
        },
    ]
}

/// Instances for the CONGEST round-shape checks: one low-diameter family
/// (expander), one high-diameter family (path) and the mesh in between, so
/// the `D + √n` bound is stressed from both sides.
pub fn congest_families(n: usize, seed: u64) -> Vec<Instance> {
    let n = n.max(9);
    let side = (n as f64).sqrt().round().max(2.0) as usize;
    vec![
        Instance::from_family("expander", gen::random_regular(n, 6, 1.0, seed), seed),
        Instance::from_family("grid", gen::grid(side, side, 1.0), seed),
        Instance::from_family("path", gen::path(n, 1.0), seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_families_are_connected_distinct_and_deterministic() {
        let a = oracle_families(40, 3);
        let b = oracle_families(40, 3);
        assert_eq!(a.len(), 5);
        let mut names: Vec<_> = a.iter().map(|i| i.name).collect();
        names.dedup();
        assert_eq!(names.len(), 5, "family names must be distinct");
        for (x, y) in a.iter().zip(&b) {
            assert!(x.graph.is_connected(), "family {} disconnected", x.name);
            assert_eq!(x.graph, y.graph, "family {} not deterministic", x.name);
            assert_ne!(x.s, x.t, "family {} has degenerate terminals", x.name);
        }
    }

    #[test]
    fn congest_families_cover_both_diameter_regimes() {
        let fams = congest_families(64, 1);
        let diam: Vec<usize> = fams
            .iter()
            .map(|i| i.graph.approx_hop_diameter().unwrap())
            .collect();
        // The path's diameter dwarfs the expander's.
        assert!(diam[2] > 4 * diam[0], "diameters {diam:?}");
    }
}
