//! Exact-flow oracles: every approximate answer is checked against the exact
//! optimum computed by an independent algorithm.
//!
//! The bracket being enforced on each instance is
//!
//! ```text
//! (1 - ε - slack) · OPT  ≤  value(approx)  ≤  OPT + tol
//! OPT ≤ certified upper bound + tol
//! |value(dinic) - value(push_relabel)| ≤ tol
//! ```
//!
//! where `OPT` comes from Dinic's algorithm and the returned flow is
//! additionally validated edge by edge for feasibility and conservation.

use crate::families::Instance;
use capprox::{HierarchyConfig, RackeConfig};
use maxflow::MaxFlowConfig;

/// Oracle tolerances and the solver configuration under test.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Target approximation quality `ε` handed to the solver.
    pub epsilon: f64,
    /// Extra multiplicative slack granted below `(1 - ε)` for the small
    /// iteration budgets used in tests (the asymptotic guarantee assumes
    /// `O(ε⁻³)` iterations, which tiny test budgets deliberately undershoot).
    pub quality_slack: f64,
    /// Absolute numerical tolerance for value comparisons.
    pub tol: f64,
    /// Iteration budget per scaling phase.
    pub max_iterations_per_phase: usize,
    /// Number of scaling phases.
    pub phases: usize,
    /// Seed for the congestion approximator's tree samples.
    pub seed: u64,
    /// Empirical quality target for ensemble trimming
    /// ([`RackeConfig::with_target_quality`]); `None` keeps the full
    /// Lemma 3.3 schedule.
    pub target_quality: Option<f64>,
    /// Build the congestion approximator through the recursive j-tree
    /// hierarchy ([`HierarchyConfig`]) instead of the direct Räcke
    /// construction; `None` keeps the direct build.
    pub hierarchy: Option<HierarchyConfig>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            epsilon: 0.1,
            quality_slack: 0.2,
            tol: 1e-6,
            max_iterations_per_phase: 4_000,
            phases: 3,
            seed: 2,
            target_quality: None,
            hierarchy: None,
        }
    }
}

impl OracleConfig {
    /// The `MaxFlowConfig` this oracle run hands to the solver.
    pub fn solver_config(&self) -> MaxFlowConfig {
        let mut racke = RackeConfig::default().with_seed(self.seed);
        if let Some(quality) = self.target_quality {
            racke = racke.with_target_quality(quality);
        }
        MaxFlowConfig {
            epsilon: self.epsilon,
            racke,
            alpha: None,
            max_iterations_per_phase: self.max_iterations_per_phase,
            phases: Some(self.phases),
            hierarchy: self.hierarchy.clone(),
            ..Default::default()
        }
    }

    /// The lowest admissible `value / OPT` ratio.
    pub fn quality_floor(&self) -> f64 {
        (1.0 - self.epsilon - self.quality_slack).max(0.0)
    }
}

/// Measurements from a passing oracle check.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Family name of the instance checked.
    pub family: &'static str,
    /// The exact optimum (Dinic).
    pub exact: f64,
    /// The approximate value.
    pub approx: f64,
    /// `approx / exact`.
    pub ratio: f64,
    /// The certified upper bound returned by the solver.
    pub upper_bound: f64,
    /// Gradient iterations spent.
    pub iterations: usize,
}

/// A violated oracle invariant, with enough context to reproduce.
#[derive(Debug, Clone)]
pub struct OracleError {
    /// Family name of the offending instance.
    pub family: &'static str,
    /// Seed of the offending instance.
    pub seed: u64,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oracle violation on family `{}` (seed {}): {}",
            self.family, self.seed, self.message
        )
    }
}

impl std::error::Error for OracleError {}

fn violation(inst: &Instance, message: String) -> OracleError {
    OracleError {
        family: inst.name,
        seed: inst.seed,
        message,
    }
}

/// Checks the centralized solver against the Dinic optimum on one instance:
/// the returned flow must be feasible, its value must land in the
/// `(1 ± ε)`-style bracket, and the certificate must bound the optimum.
pub fn check_solver_against_exact(
    inst: &Instance,
    config: &OracleConfig,
) -> Result<OracleReport, OracleError> {
    let exact = baselines::dinic::max_flow(&inst.graph, inst.s, inst.t)
        .map_err(|e| violation(inst, format!("dinic failed: {e}")))?;
    let approx = maxflow::approx_max_flow(&inst.graph, inst.s, inst.t, &config.solver_config())
        .map_err(|e| violation(inst, format!("solver failed: {e}")))?;

    let validated = approx
        .flow
        .validate_st_flow(&inst.graph, inst.s, inst.t, config.tol)
        .map_err(|e| violation(inst, format!("returned flow is infeasible: {e}")))?;
    if (validated - approx.value).abs() > config.tol * (1.0 + approx.value.abs()) {
        return Err(violation(
            inst,
            format!(
                "reported value {} disagrees with the validated flow value {validated}",
                approx.value
            ),
        ));
    }
    if approx.value > exact.value + config.tol {
        return Err(violation(
            inst,
            format!(
                "approximate value {} exceeds the exact optimum {} — the flow cannot be feasible",
                approx.value, exact.value
            ),
        ));
    }
    let floor = config.quality_floor() * exact.value;
    if approx.value < floor - config.tol {
        return Err(violation(
            inst,
            format!(
                "approximate value {} is below the (1-ε-slack) floor {floor} (exact {})",
                approx.value, exact.value
            ),
        ));
    }
    if exact.value > approx.upper_bound + config.tol {
        return Err(violation(
            inst,
            format!(
                "certified upper bound {} fails to bound the optimum {}",
                approx.upper_bound, exact.value
            ),
        ));
    }
    Ok(OracleReport {
        family: inst.name,
        exact: exact.value,
        approx: approx.value,
        ratio: approx.value / exact.value.max(f64::MIN_POSITIVE),
        upper_bound: approx.upper_bound,
        iterations: approx.iterations,
    })
}

/// Checks that the two independent exact algorithms (Dinic, push-relabel)
/// agree on the optimum — guarding the oracle itself against regressions.
pub fn check_exact_baselines_agree(inst: &Instance, tol: f64) -> Result<f64, OracleError> {
    let d = baselines::dinic::max_flow(&inst.graph, inst.s, inst.t)
        .map_err(|e| violation(inst, format!("dinic failed: {e}")))?;
    let pr = baselines::push_relabel::max_flow(&inst.graph, inst.s, inst.t)
        .map_err(|e| violation(inst, format!("push-relabel failed: {e}")))?;
    if (d.value - pr.value).abs() > tol * (1.0 + d.value.abs()) {
        return Err(violation(
            inst,
            format!("dinic {} and push-relabel {} disagree", d.value, pr.value),
        ));
    }
    Ok(d.value)
}

/// Checks that the round-accounted distributed execution computes exactly the
/// same flow as the centralized solver (the paper's algorithm is
/// deterministic given the approximator, so the values must match to
/// numerical noise, not just within ε).
pub fn check_distributed_matches_centralized(
    inst: &Instance,
    config: &OracleConfig,
) -> Result<f64, OracleError> {
    let cfg = config.solver_config();
    let central = maxflow::approx_max_flow(&inst.graph, inst.s, inst.t, &cfg)
        .map_err(|e| violation(inst, format!("centralized solver failed: {e}")))?;
    let dist = maxflow::distributed_approx_max_flow(&inst.graph, inst.s, inst.t, &cfg)
        .map_err(|e| violation(inst, format!("distributed solver failed: {e}")))?;
    if (central.value - dist.result.value).abs() > config.tol {
        return Err(violation(
            inst,
            format!(
                "distributed value {} diverges from centralized value {}",
                dist.result.value, central.value
            ),
        ));
    }
    if central.iterations != dist.result.iterations {
        return Err(violation(
            inst,
            format!(
                "distributed run spent {} iterations, centralized spent {}",
                dist.result.iterations, central.iterations
            ),
        ));
    }
    Ok(central.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::oracle_families;

    #[test]
    fn oracle_passes_on_a_small_grid() {
        let inst = oracle_families(25, 1)
            .into_iter()
            .find(|i| i.name == "grid")
            .expect("grid family exists");
        let report = check_solver_against_exact(&inst, &OracleConfig::default()).unwrap();
        assert!(report.ratio <= 1.0 + 1e-9);
        assert!(report.ratio >= OracleConfig::default().quality_floor());
    }

    #[test]
    fn oracle_rejects_a_rigged_floor() {
        // With zero slack and eps ~ 0 the floor is ~1.0; a tiny iteration
        // budget cannot reach it, so the oracle must flag the shortfall —
        // proving the check actually bites.
        let inst = oracle_families(25, 1)
            .into_iter()
            .find(|i| i.name == "gnp")
            .expect("gnp family exists");
        let config = OracleConfig {
            epsilon: 0.01,
            quality_slack: 0.0,
            max_iterations_per_phase: 1,
            phases: 1,
            ..OracleConfig::default()
        };
        let err = check_solver_against_exact(&inst, &config)
            .expect_err("1 iteration cannot reach a 0.99 quality floor");
        assert!(err.message.contains("floor"), "unexpected failure: {err}");
    }
}
