//! Cross-crate oracle test harness for the distributed max-flow
//! reproduction.
//!
//! Every future scaling or performance PR runs through this crate: it bundles
//! the seeded workloads, the exact-flow oracles and the CONGEST invariant
//! checkers that pin down what "still correct" means for the pipeline of
//! Ghaffari et al., *Near-Optimal Distributed Maximum Flow* (PODC 2015).
//!
//! * [`families`] — named, seeded graph instances (paths, grids, expanders,
//!   random `G(n,p)`, datacenter-like fat-trees, …) with their terminal
//!   pairs, so suites sweep workloads uniformly and reproducibly;
//! * [`oracle`] — cross-checks of `maxflow::approx_max_flow` /
//!   `maxflow::distributed_approx_max_flow` against the exact
//!   `baselines::dinic` and `baselines::push_relabel` optima within
//!   `(1 ± ε)`-style brackets;
//! * [`congestcheck`] — shape checks on the CONGEST round accounting
//!   (`O((D + √n)·polylog n)` per phase, message payloads of `O(log n)`
//!   bits, per-model width rules);
//! * [`conformance`] — the differential harness: replays one protocol (or
//!   one max-flow query) across every engine, communication model,
//!   adversary seed and thread count and asserts byte-identical results on
//!   reliable fabrics and drop-log-reconciled accounting on lossy ones.
//!
//! # Example
//!
//! ```
//! use testkit::{families, oracle};
//!
//! let inst = families::oracle_families(36, 7).remove(0);
//! let report = oracle::check_solver_against_exact(&inst, &oracle::OracleConfig::default())
//!     .expect("solver stays within the oracle bracket");
//! assert!(report.ratio > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod congestcheck;
pub mod families;
pub mod oracle;

pub use conformance::{
    check_flow_conformance, check_protocol_matrix, check_tree_aggregation_matrix,
    ConformanceMatrix, ConformanceReport, ConformanceViolation, FlowConformanceReport,
};
pub use congestcheck::{check_congest_invariants, check_model_width, CongestBudget, CongestReport};
pub use families::{oracle_families, Instance};
pub use oracle::{
    check_distributed_matches_centralized, check_exact_baselines_agree, check_solver_against_exact,
    OracleConfig, OracleError, OracleReport,
};
