//! Differential conformance harness across engines, models and adversaries.
//!
//! One protocol, many executions: the harness replays the same protocol on
//! every engine (sequential arena, sharded at each configured thread count,
//! allocation-per-round reference) and every communication model (classic
//! CONGEST, Congested Clique, lossy CONGEST under each configured adversary,
//! and — for the tree aggregations — `BCAST(log n)`), then asserts the
//! executions agree:
//!
//! * **reliable replays are byte-identical** — outputs, [`RoundCost`] and
//!   canonical transcripts match the classic baseline exactly, for every
//!   engine, thread count and benign adversary seed;
//! * **lossy replays agree modulo the drop log** — the adversary's
//!   [`FaultLog`](congest::model::FaultLog) reconciles the books exactly
//!   (`messages sent = deliveries + drops`), the run still terminates, and
//!   for delivery-order-independent protocols the outputs are byte-identical
//!   to classic despite the faults;
//! * **flows are byte-identical across the whole matrix** — the max-flow
//!   session answers the same bytes under every model, thread count and
//!   adversary, with the lossy round bill inflated by exactly the logged
//!   recovery traffic.
//!
//! # Quickstart
//!
//! ```
//! use congest::engine::Network;
//! use congest::primitives::MinIdFlood;
//! use flowgraph::gen;
//! use testkit::conformance::{check_protocol_matrix, ConformanceMatrix};
//!
//! let network = Network::new(gen::grid(5, 5, 1.0));
//! let report = check_protocol_matrix(&network, &MinIdFlood, &ConformanceMatrix::default())
//!     .expect("every fabric agrees");
//! assert!(report.replays >= 8);
//! ```
//!
//! The CI `conformance` job drives these checks across the model × threads
//! matrix with a fixed seed set; `CONFORMANCE_THREADS` (comma-separated)
//! overrides the default `1,4` thread matrix.

use congest::engine::reference_run_traced;
use congest::model::{Adversary, CommModel};
use congest::primitives::build_bfs_tree;
use congest::treeops::{
    bcast_prefix_sums, bcast_subtree_sums, distributed_prefix_sums_on, distributed_subtree_sums_on,
    TreeDecomposition,
};
use congest::{Network, Parallelism, Protocol, RoundCost, Simulator};
use flowgraph::{Graph, NodeId, RootedTree};
use maxflow::{MaxFlowConfig, PreparedMaxFlow};

use crate::congestcheck::{check_model_width, CongestBudget};

/// The replay matrix: which thread counts, drop rates and adversary seeds a
/// conformance check sweeps.
#[derive(Debug, Clone)]
pub struct ConformanceMatrix {
    /// Thread counts for the sharded engine replays (`CONFORMANCE_THREADS`
    /// env var overrides, comma-separated; default `1,4`).
    pub thread_counts: Vec<usize>,
    /// Drop probabilities for the lossy replays (`0.0` is asserted
    /// byte-identical to classic; positive rates go through the
    /// retransmit-with-ack adapter).
    pub drop_rates: Vec<f64>,
    /// Adversary seeds replayed at every drop rate.
    pub adversary_seeds: Vec<u64>,
    /// Whether lossy replays must reproduce the classic outputs bit for bit.
    /// True for delivery-order-independent protocols (aggregations, min-id
    /// flooding); set false for protocols whose outputs legitimately depend
    /// on message timing (e.g. BFS parent choices) — the accounting
    /// invariants are still enforced.
    pub lossy_outputs_equal: bool,
    /// Round cap for the adversarial replays.
    pub max_rounds: u64,
}

impl Default for ConformanceMatrix {
    fn default() -> Self {
        let thread_counts = std::env::var("CONFORMANCE_THREADS")
            .ok()
            .map(|s| {
                s.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .filter(|&t| t >= 1)
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1, 4]);
        ConformanceMatrix {
            thread_counts,
            drop_rates: vec![0.0, 0.1, 0.2],
            adversary_seeds: vec![1, 2],
            lossy_outputs_equal: true,
            max_rounds: 1_000_000,
        }
    }
}

/// A violated conformance invariant, described for the failure message.
#[derive(Debug, Clone)]
pub struct ConformanceViolation(String);

impl std::fmt::Display for ConformanceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConformanceViolation {}

fn violation(msg: impl Into<String>) -> ConformanceViolation {
    ConformanceViolation(msg.into())
}

/// Tallies from a passing conformance sweep.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// Total executions compared against the classic baseline.
    pub replays: usize,
    /// Messages the adversaries dropped across all lossy replays.
    pub dropped: u64,
    /// Retransmissions the recovery wrapper billed across all lossy replays.
    pub retransmissions: u64,
    /// The worst lossy round bill observed (finite by construction — an
    /// unterminated replay is a violation, not a tally).
    pub max_lossy_rounds: u64,
    /// Whether the clique replay was skipped because the protocol queued two
    /// messages for one peer over parallel edges — legal in per-edge
    /// CONGEST, unrepresentable in the clique. This is the semantic gap
    /// between the two models, not a bug in either.
    pub clique_skipped: bool,
}

/// Replays `protocol` across every engine and model of `matrix` and checks
/// the agreements described in the [module docs](self).
///
/// # Errors
///
/// Returns the first [`ConformanceViolation`] encountered.
pub fn check_protocol_matrix<P>(
    network: &Network,
    protocol: &P,
    matrix: &ConformanceMatrix,
) -> Result<ConformanceReport, ConformanceViolation>
where
    P: Protocol + Sync,
    P::Msg: Send,
    P::State: Send,
    P::Output: PartialEq + std::fmt::Debug,
{
    let mut report = ConformanceReport::default();
    let sim = Simulator::new().with_max_rounds(matrix.max_rounds);
    let (baseline, baseline_t) = sim
        .run_traced(network, protocol)
        .map_err(|e| violation(format!("classic run failed: {e}")))?;

    // 1. The reference engine (executable spec) agrees byte for byte.
    let (reference, reference_t) = reference_run_traced(network, protocol, matrix.max_rounds)
        .map_err(|e| violation(format!("reference run failed: {e}")))?;
    if reference.outputs != baseline.outputs
        || reference.cost != baseline.cost
        || reference_t != baseline_t
    {
        return Err(violation("reference engine diverged from the arena engine"));
    }
    report.replays += 1;

    // 2. The sharded engine agrees at every thread count.
    for &threads in &matrix.thread_counts {
        let par = Parallelism::with_threads(threads);
        let (sharded, sharded_t) = sim
            .run_sharded_traced(network, protocol, &par)
            .map_err(|e| violation(format!("sharded run ({threads} threads) failed: {e}")))?;
        if sharded.outputs != baseline.outputs
            || sharded.cost != baseline.cost
            || sharded_t != baseline_t
        {
            return Err(violation(format!(
                "sharded engine at {threads} threads diverged from sequential"
            )));
        }
        report.replays += 1;
    }

    // 3. The classic and clique models agree byte for byte (for simple
    //    graphs the clique's pair rule coincides with the per-edge rule).
    for model in [CommModel::Classic, CommModel::Clique] {
        let outcome = sim.run_model_traced(network, &model, protocol);
        let (run, transcript, faults) = match outcome {
            Ok(ok) => ok,
            // Parallel edges make a protocol clique-unrepresentable: one
            // message per edge is legal in CONGEST but exceeds the pair
            // capacity of the clique. Record the gap and move on.
            Err(congest::engine::SimulationError::CliquePairOverflow { .. })
                if matches!(model, CommModel::Clique) =>
            {
                report.clique_skipped = true;
                continue;
            }
            Err(e) => return Err(violation(format!("{} model failed: {e}", model.name()))),
        };
        if !faults.is_empty() {
            return Err(violation(format!(
                "{} model logged faults without an adversary",
                model.name()
            )));
        }
        if run.outputs != baseline.outputs || run.cost != baseline.cost || transcript != baseline_t
        {
            return Err(violation(format!(
                "{} model diverged from the classic engine",
                model.name()
            )));
        }
        report.replays += 1;
    }

    // 4. Lossy replays: drop rate 0 is byte-identical; positive rates close
    //    their books against the fault log and (for order-independent
    //    protocols) reproduce the outputs.
    for &seed in &matrix.adversary_seeds {
        for &drop_p in &matrix.drop_rates {
            let model = CommModel::Lossy(Adversary::lossy(seed, drop_p));
            let (run, transcript, faults) = sim
                .run_model_reliable_traced(network, &model, protocol)
                .map_err(|e| {
                    violation(format!("lossy run (seed {seed}, p {drop_p}) failed: {e}"))
                })?;
            if drop_p == 0.0 {
                if run.outputs != baseline.outputs
                    || run.cost != baseline.cost
                    || transcript != baseline_t
                    || !faults.is_empty()
                {
                    return Err(violation(format!(
                        "lossy model at drop rate 0 (seed {seed}) diverged from classic"
                    )));
                }
            } else {
                if !run.quiescent {
                    return Err(violation(format!(
                        "lossy run (seed {seed}, p {drop_p}) did not reach quiescence"
                    )));
                }
                if run.cost.messages != transcript.len() as u64 + faults.dropped() {
                    return Err(violation(format!(
                        "lossy accounting leak (seed {seed}, p {drop_p}): {} sent != {} \
                         delivered + {} dropped",
                        run.cost.messages,
                        transcript.len(),
                        faults.dropped()
                    )));
                }
                if matrix.lossy_outputs_equal && run.outputs != baseline.outputs {
                    return Err(violation(format!(
                        "lossy outputs (seed {seed}, p {drop_p}) diverged from classic"
                    )));
                }
                if faults.dropped() > 0 && run.cost.retransmissions == 0 {
                    return Err(violation(format!(
                        "drops occurred (seed {seed}, p {drop_p}) but no retransmissions \
                         were billed — the recovery traffic is unaccounted"
                    )));
                }
                report.dropped += faults.dropped();
                report.retransmissions += run.cost.retransmissions;
                report.max_lossy_rounds = report.max_lossy_rounds.max(run.cost.rounds);
            }
            report.replays += 1;
        }
    }

    Ok(report)
}

/// Replays the Lemma 8.2 tree aggregations (subtree sums and root-to-node
/// prefix sums) under every model — classic, clique, each lossy adversary of
/// the matrix **and** `BCAST(log n)` — asserting bit-identical values
/// against the centralized oracle ([`RootedTree::subtree_sums`] /
/// [`RootedTree::prefix_sums_from_root`]) plus model-conformant message
/// widths.
///
/// `values` should be integer-valued so that f64 summation is exact
/// regardless of the delivery order a model induces.
///
/// # Errors
///
/// Returns the first [`ConformanceViolation`] encountered.
pub fn check_tree_aggregation_matrix(
    network: &Network,
    tree: &RootedTree,
    decomposition: &TreeDecomposition,
    values: &[f64],
    matrix: &ConformanceMatrix,
) -> Result<ConformanceReport, ConformanceViolation> {
    let mut report = ConformanceReport::default();
    let budget = CongestBudget::default();
    let bfs = build_bfs_tree(network, tree.root()).tree;
    let expected_up = tree.subtree_sums(values);
    let expected_down = tree.prefix_sums_from_root(values);

    let mut models = vec![CommModel::Classic, CommModel::Clique];
    for &seed in &matrix.adversary_seeds {
        for &drop_p in &matrix.drop_rates {
            models.push(CommModel::Lossy(Adversary::lossy(seed, drop_p)));
        }
    }

    let check = |got: &[f64], want: &[f64], what: &str| -> Result<(), ConformanceViolation> {
        for (v, (g, w)) in got.iter().zip(want).enumerate() {
            if g.to_bits() != w.to_bits() {
                return Err(violation(format!(
                    "{what}: node {v} computed {g}, oracle says {w}"
                )));
            }
        }
        Ok(())
    };

    for model in &models {
        let up = distributed_subtree_sums_on(model, network, tree, decomposition, &bfs, values);
        let down = distributed_prefix_sums_on(model, network, tree, decomposition, &bfs, values);
        check(&up.values, &expected_up, &format!("{} up", model.name()))?;
        check(
            &down.values,
            &expected_down,
            &format!("{} down", model.name()),
        )?;
        for cost in [&up.cost, &down.cost] {
            check_model_width(model, cost, &budget)
                .map_err(|e| violation(format!("{}: {e}", model.name())))?;
        }
        if model.is_lossy() {
            report.retransmissions += up.cost.retransmissions + down.cost.retransmissions;
            report.max_lossy_rounds = report
                .max_lossy_rounds
                .max(up.cost.rounds.max(down.cost.rounds));
        }
        report.replays += 2;
    }

    // BCAST(log n): no decomposition, no pipelining — one global word per
    // node, O(depth) rounds, exactly one word wide.
    let up = bcast_subtree_sums(network, tree, values);
    let down = bcast_prefix_sums(network, tree, values);
    check(&up.values, &expected_up, "bcast up")?;
    check(&down.values, &expected_down, "bcast down")?;
    for cost in [&up.cost, &down.cost] {
        check_model_width(&CommModel::Bcast, cost, &budget)
            .map_err(|e| violation(format!("bcast: {e}")))?;
        if cost.messages > network.num_nodes() as u64 {
            return Err(violation(format!(
                "bcast aggregation used {} broadcasts for {} nodes (at most one each)",
                cost.messages,
                network.num_nodes()
            )));
        }
    }
    report.replays += 2;

    Ok(report)
}

/// Tallies from a passing flow-level sweep.
#[derive(Debug, Clone, Default)]
pub struct FlowConformanceReport {
    /// Model/thread combinations whose flow matched the baseline bytes.
    pub replays: usize,
    /// The classic round bill.
    pub classic_rounds: u64,
    /// The worst lossy round bill observed.
    pub max_lossy_rounds: u64,
    /// Retransmissions billed across the lossy replays.
    pub retransmissions: u64,
}

/// Replays one `distributed_max_flow` query across the model × thread
/// matrix and asserts the *flows* are byte-identical everywhere — models
/// only change the round bill, never the answer — with lossy bills finite,
/// retransmission-inflated and internally consistent.
///
/// # Errors
///
/// Returns the first [`ConformanceViolation`] encountered.
pub fn check_flow_conformance(
    g: &Graph,
    config: &MaxFlowConfig,
    s: NodeId,
    t: NodeId,
    matrix: &ConformanceMatrix,
) -> Result<FlowConformanceReport, ConformanceViolation> {
    let mut report = FlowConformanceReport::default();
    let prepare_err = |e| violation(format!("prepare failed: {e}"));
    let mut session = PreparedMaxFlow::prepare(g, config).map_err(prepare_err)?;
    let baseline = session
        .distributed_max_flow(s, t)
        .map_err(|e| violation(format!("classic query failed: {e}")))?;
    let baseline_bits: Vec<u64> = baseline
        .result
        .flow
        .values()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    report.classic_rounds = baseline.rounds.total.rounds;

    let flow_bits = |result: &maxflow::MaxFlowResult| -> Vec<u64> {
        result.flow.values().iter().map(|x| x.to_bits()).collect()
    };

    // 1. Thread matrix: the parallel execution layer must not change a bit.
    for &threads in &matrix.thread_counts {
        let cfg = config
            .clone()
            .with_parallelism(Parallelism::with_threads(threads));
        let mut par_session = PreparedMaxFlow::prepare(g, &cfg).map_err(prepare_err)?;
        let run = par_session
            .max_flow(s, t)
            .map_err(|e| violation(format!("{threads}-thread query failed: {e}")))?;
        if flow_bits(&run) != baseline_bits {
            return Err(violation(format!(
                "{threads}-thread flow diverged from sequential bytes"
            )));
        }
        report.replays += 1;
    }

    // 2. Model matrix: same bytes, model-specific bills.
    let mut models = vec![CommModel::Clique];
    for &seed in &matrix.adversary_seeds {
        for &drop_p in &matrix.drop_rates {
            models.push(CommModel::Lossy(Adversary::lossy(seed, drop_p)));
        }
    }
    for model in &models {
        let run = session
            .distributed_max_flow_on(s, t, model)
            .map_err(|e| violation(format!("{} query failed: {e}", model.name())))?;
        if flow_bits(&run.result) != baseline_bits {
            return Err(violation(format!(
                "{} flow diverged from classic bytes",
                model.name()
            )));
        }
        let r = &run.rounds;
        let stage_sum = r.bfs_construction.rounds
            + r.approximator_construction.rounds
            + r.gradient_descent.rounds
            + r.repair.rounds;
        if r.total.rounds != stage_sum {
            return Err(violation(format!(
                "{}: total rounds {} != stage sum {stage_sum}",
                model.name(),
                r.total.rounds
            )));
        }
        match model {
            CommModel::Lossy(adv) if !adv.is_benign() => {
                if r.total.retransmissions == 0 {
                    return Err(violation(format!(
                        "lossy bill (seed {}, p {}) shows no retransmissions",
                        adv.seed, adv.drop_probability
                    )));
                }
                report.max_lossy_rounds = report.max_lossy_rounds.max(r.total.rounds);
                report.retransmissions += r.total.retransmissions;
            }
            _ => {
                if *r != baseline.rounds {
                    return Err(violation(format!(
                        "{} bill diverged from classic on a reliable fabric",
                        model.name()
                    )));
                }
            }
        }
        report.replays += 1;
    }

    // 3. BCAST joins through its tree-aggregation port: the repair tree's
    //    subtree sums must match the centralized oracle in one word per
    //    broadcast.
    let network = Network::new(g.clone());
    let values: Vec<f64> = (0..g.num_nodes()).map(|v| (v % 7) as f64).collect();
    let up = bcast_subtree_sums(&network, session.repair_tree(), &values);
    let expected = session.repair_tree().subtree_sums(&values);
    for (v, (got, want)) in up.values.iter().zip(&expected).enumerate() {
        if got.to_bits() != want.to_bits() {
            return Err(violation(format!(
                "bcast repair aggregation: node {v} computed {got}, oracle says {want}"
            )));
        }
    }
    check_model_width(&CommModel::Bcast, &up.cost, &CongestBudget::default())
        .map_err(|e| violation(format!("bcast: {e}")))?;
    report.replays += 1;

    Ok(report)
}

/// A [`RoundCost`] sanity helper shared by the suites: every component of
/// `sum` must equal the component-wise sequential composition of `parts`.
pub fn assert_cost_composes(
    sum: &RoundCost,
    parts: &[RoundCost],
) -> Result<(), ConformanceViolation> {
    let composed: RoundCost = parts.iter().copied().sum();
    if *sum != composed {
        return Err(violation(format!(
            "cost {sum} is not the sequential composition of its parts ({composed})"
        )));
    }
    Ok(())
}
