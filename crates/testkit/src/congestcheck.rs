//! CONGEST invariant checkers.
//!
//! Theorem 1.1 of the paper promises `(D + √n)·n^{o(1)}·ε^{-3}` rounds with
//! `O(log n)`-bit messages. These checkers pin the *shape* of the measured
//! round accounting to that promise: each pipeline stage must fit inside a
//! `c·(D + √n)·log^k n` budget, the total must be the sum of its stages, and
//! no message may exceed a constant number of `O(log n)`-bit words.

use congest::model::CommModel;
use congest::RoundCost;
use maxflow::DistributedMaxFlowResult;

/// Budget constants for the shape checks. The defaults are deliberately
/// generous (they encode asymptotic *shape*, not tuned constants) but tight
/// enough that an accidental `Θ(n)`-per-iteration or `Θ(n²)`-total regression
/// trips them on the suite's instance sizes.
#[derive(Debug, Clone)]
pub struct CongestBudget {
    /// Leading constant multiplying every `(D + √n)·log^k n` budget.
    pub c: f64,
    /// Polylog exponent for the per-iteration and repair budgets.
    pub per_iteration_log_exp: i32,
    /// Polylog exponent for the approximator-construction budget (it builds
    /// `O(log n)` trees, each with its own decomposition cascade).
    pub construction_log_exp: i32,
    /// Maximum admissible message payload in `O(log n)`-bit words.
    pub max_message_words: u64,
}

impl Default for CongestBudget {
    fn default() -> Self {
        CongestBudget {
            c: 8.0,
            per_iteration_log_exp: 2,
            construction_log_exp: 3,
            max_message_words: 4,
        }
    }
}

impl CongestBudget {
    /// The `c·(D + √n)·log^k n` budget for the given instance parameters.
    pub fn stage_budget(&self, n: usize, bfs_depth: usize, log_exp: i32) -> f64 {
        let n = n.max(2) as f64;
        let d_plus_sqrt_n = bfs_depth as f64 + n.sqrt();
        self.c * d_plus_sqrt_n * n.log2().powi(log_exp)
    }
}

/// Measurements from a passing invariant check.
#[derive(Debug, Clone)]
pub struct CongestReport {
    /// `D + √n` for the instance.
    pub d_plus_sqrt_n: f64,
    /// Measured per-iteration rounds.
    pub per_iteration_rounds: u64,
    /// The per-iteration budget it was held against.
    pub per_iteration_budget: f64,
    /// Measured total rounds.
    pub total_rounds: u64,
    /// Largest message payload observed anywhere in the pipeline, in words.
    pub max_message_words: u64,
}

/// A violated CONGEST invariant.
#[derive(Debug, Clone)]
pub struct CongestViolation(String);

impl std::fmt::Display for CongestViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CongestViolation {}

fn stage_max_words(stages: &[(&'static str, RoundCost)]) -> (u64, &'static str) {
    let mut worst = (0u64, "none");
    for &(name, cost) in stages {
        if cost.max_message_words > worst.0 {
            worst = (cost.max_message_words, name);
        }
    }
    worst
}

/// Checks the round-accounting shape of one distributed run:
///
/// 1. BFS construction finishes in `O(D + log n)` rounds,
/// 2. one gradient iteration costs `Õ(D + √n)` rounds,
/// 3. approximator construction costs `Õ(D + √n)` rounds (higher polylog),
/// 4. gradient descent totals at most `iterations · per_iteration` (+slack),
/// 5. the reported total is exactly the sum of its stages,
/// 6. every stage's messages carry `O(log n)` bits (≤ a constant word count).
pub fn check_congest_invariants(
    dist: &DistributedMaxFlowResult,
    budget: &CongestBudget,
) -> Result<CongestReport, CongestViolation> {
    let n = dist.num_nodes;
    let depth = dist.bfs_depth;
    let rounds = &dist.rounds;

    let bfs_budget = budget.c * (depth as f64 + (n.max(2) as f64).log2() + 1.0);
    if (rounds.bfs_construction.rounds as f64) > bfs_budget {
        return Err(CongestViolation(format!(
            "BFS construction took {} rounds, budget O(D + log n) = {bfs_budget:.0} (D = {depth}, n = {n})",
            rounds.bfs_construction.rounds
        )));
    }

    let per_iter_budget = budget.stage_budget(n, depth, budget.per_iteration_log_exp);
    if (rounds.per_iteration.rounds as f64) > per_iter_budget {
        return Err(CongestViolation(format!(
            "per-iteration cost {} rounds exceeds the Õ(D + √n) budget {per_iter_budget:.0} (D = {depth}, n = {n})",
            rounds.per_iteration.rounds
        )));
    }

    let construction_budget = budget.stage_budget(n, depth, budget.construction_log_exp);
    if (rounds.approximator_construction.rounds as f64) > construction_budget {
        return Err(CongestViolation(format!(
            "approximator construction {} rounds exceeds its Õ(D + √n) budget {construction_budget:.0} (D = {depth}, n = {n})",
            rounds.approximator_construction.rounds
        )));
    }

    let iterations = dist.result.iterations as u64;
    let descent_budget =
        iterations.saturating_mul(rounds.per_iteration.rounds.max(1)) as f64 + per_iter_budget;
    if (rounds.gradient_descent.rounds as f64) > descent_budget {
        return Err(CongestViolation(format!(
            "gradient descent {} rounds exceeds iterations × per-iteration = {descent_budget:.0} ({} iterations × {} rounds)",
            rounds.gradient_descent.rounds, iterations, rounds.per_iteration.rounds
        )));
    }

    let repair_budget = budget.stage_budget(n, depth, budget.per_iteration_log_exp);
    if (rounds.repair.rounds as f64) > repair_budget {
        return Err(CongestViolation(format!(
            "residual repair {} rounds exceeds its Õ(D + √n) budget {repair_budget:.0}",
            rounds.repair.rounds
        )));
    }

    let stage_sum = rounds.bfs_construction.rounds
        + rounds.approximator_construction.rounds
        + rounds.gradient_descent.rounds
        + rounds.repair.rounds;
    if rounds.total.rounds != stage_sum {
        return Err(CongestViolation(format!(
            "total rounds {} is not the sum of its stages {stage_sum}",
            rounds.total.rounds
        )));
    }

    let stages = [
        ("bfs_construction", rounds.bfs_construction),
        (
            "approximator_construction",
            rounds.approximator_construction,
        ),
        ("per_iteration", rounds.per_iteration),
        ("gradient_descent", rounds.gradient_descent),
        ("repair", rounds.repair),
    ];
    let (worst_words, worst_stage) = stage_max_words(&stages);
    if worst_words > budget.max_message_words {
        return Err(CongestViolation(format!(
            "stage {worst_stage} sent a {worst_words}-word message; the CONGEST model allows O(log n) bits (≤ {} words)",
            budget.max_message_words
        )));
    }

    Ok(CongestReport {
        d_plus_sqrt_n: dist.d_plus_sqrt_n(),
        per_iteration_rounds: rounds.per_iteration.rounds,
        per_iteration_budget: per_iter_budget,
        total_rounds: rounds.total.rounds,
        max_message_words: worst_words,
    })
}

/// Checks a measured cost against the message-width rule of the given
/// communication model: per-edge CONGEST and the Congested Clique admit
/// `budget.max_message_words` words per message, the lossy model one extra
/// control word for the retransmit-with-ack frame header, and `BCAST(log n)`
/// exactly one word per broadcast. Also rejects retransmissions reported
/// under a reliable model (there is nothing to retransmit when no message
/// can be lost).
///
/// # Errors
///
/// Returns a [`CongestViolation`] naming the model and the observed width.
pub fn check_model_width(
    model: &CommModel,
    cost: &RoundCost,
    budget: &CongestBudget,
) -> Result<(), CongestViolation> {
    let allowed = model.width_budget(budget.max_message_words);
    if cost.max_message_words > allowed {
        return Err(CongestViolation(format!(
            "a {}-word message was sent under the {} model, which admits at most {allowed} \
             O(log n)-bit words",
            cost.max_message_words,
            model.name()
        )));
    }
    if !model.is_lossy() && cost.retransmissions > 0 {
        return Err(CongestViolation(format!(
            "{} retransmissions billed under the reliable {} model — nothing can be lost there",
            cost.retransmissions,
            model.name()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::congest_families;
    use crate::oracle::OracleConfig;

    fn small_run_sized(name: &str, n: usize) -> DistributedMaxFlowResult {
        let inst = congest_families(n, 5)
            .into_iter()
            .find(|i| i.name == name)
            .expect("family exists");
        let config = OracleConfig {
            max_iterations_per_phase: 50,
            phases: 1,
            ..OracleConfig::default()
        };
        maxflow::distributed_approx_max_flow(&inst.graph, inst.s, inst.t, &config.solver_config())
            .expect("connected instance")
    }

    fn small_run(name: &str) -> DistributedMaxFlowResult {
        small_run_sized(name, 36)
    }

    #[test]
    fn invariants_hold_on_grid_and_expander() {
        for name in ["grid", "expander"] {
            let dist = small_run(name);
            let report = check_congest_invariants(&dist, &CongestBudget::default())
                .unwrap_or_else(|e| panic!("family {name}: {e}"));
            assert!(report.per_iteration_rounds as f64 <= report.per_iteration_budget);
        }
    }

    #[test]
    fn a_linear_per_iteration_cost_is_rejected() {
        // n must be large enough that n² clears the generous polylog budget.
        let mut dist = small_run_sized("expander", 100);
        // Forge a Θ(n²)-style regression: per-iteration rounds worth n².
        let n = dist.num_nodes as u64;
        dist.rounds.per_iteration = RoundCost::rounds(n * n);
        let err = check_congest_invariants(&dist, &CongestBudget::default())
            .expect_err("forged per-iteration cost must trip the budget");
        assert!(err.to_string().contains("per-iteration"));
    }

    #[test]
    fn an_oversized_message_is_rejected() {
        let mut dist = small_run("grid");
        // Forge a node that ships a whole adjacency list in one message.
        dist.rounds.gradient_descent.max_message_words = 1_000;
        let err = check_congest_invariants(&dist, &CongestBudget::default())
            .expect_err("kilo-word messages violate the CONGEST bandwidth bound");
        assert!(err.to_string().contains("word"));
    }

    #[test]
    fn model_width_checks_follow_each_fabric() {
        use congest::model::Adversary;
        let budget = CongestBudget::default();
        let ok = RoundCost::new(5, 10, budget.max_message_words);
        let lossy = CommModel::Lossy(Adversary::lossy(1, 0.1));
        // In-budget costs pass on every model that admits them.
        check_model_width(&CommModel::Classic, &ok, &budget).unwrap();
        check_model_width(&CommModel::Clique, &ok, &budget).unwrap();
        check_model_width(&lossy, &ok, &budget).unwrap();
        // The lossy model grants exactly one extra frame-header word.
        let framed = RoundCost::new(5, 10, budget.max_message_words + 1);
        check_model_width(&CommModel::Classic, &framed, &budget).unwrap_err();
        check_model_width(&lossy, &framed, &budget).unwrap();
        // BCAST admits one word only.
        let two_words = RoundCost::new(1, 3, 2);
        let err = check_model_width(&CommModel::Bcast, &two_words, &budget).unwrap_err();
        assert!(err.to_string().contains("bcast"));
        check_model_width(&CommModel::Bcast, &RoundCost::new(1, 3, 1), &budget).unwrap();
        // Retransmissions on a reliable fabric are a contradiction.
        let mut retrans = ok;
        retrans.retransmissions = 2;
        let err = check_model_width(&CommModel::Classic, &retrans, &budget).unwrap_err();
        assert!(err.to_string().contains("retransmissions"));
        check_model_width(&lossy, &retrans, &budget).unwrap();
    }
}
