//! The `flowd` daemon binary.
//!
//! ```text
//! flowd [--addr HOST:PORT] [--cache N] [--epsilon X] [--threads N]
//! ```
//!
//! Prints `flowd listening on HOST:PORT` once the socket is bound (scripts
//! wait for that line), then serves until a client sends `{"op":"shutdown"}`
//! or the process is killed.

use maxflow::{MaxFlowConfig, Parallelism};
use service::server::{start, ServerOptions};

fn usage() -> ! {
    eprintln!(
        "usage: flowd [--addr HOST:PORT] [--cache N] [--epsilon X] [--threads N]\n\
         \n\
         --addr HOST:PORT  bind address (default 127.0.0.1:7070; port 0 = ephemeral)\n\
         --cache N         max prepared sessions kept alive (default 8)\n\
         --epsilon X       default approximation parameter for load_graph\n\
         \u{20}                 requests without a config (default {})\n\
         --threads N       worker threads per coalesced query batch (default 1)",
        MaxFlowConfig::default().epsilon
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut options = ServerOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("flowd: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--cache" => match value("--cache").parse::<usize>() {
                Ok(n) if n > 0 => options.cache_capacity = n,
                _ => usage(),
            },
            "--epsilon" => match value("--epsilon").parse::<f64>() {
                Ok(x) if x.is_finite() && x > 0.0 => options.default_config.epsilon = x,
                _ => usage(),
            },
            "--threads" => match value("--threads").parse::<usize>() {
                Ok(n) if n > 0 => options.default_config.parallelism = Parallelism::with_threads(n),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("flowd: unknown flag {other:?}");
                usage();
            }
        }
    }
    let mut handle = match start(&addr, options) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("flowd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("flowd listening on {}", handle.local_addr());
    // Joins the accept loop; a wire-level shutdown op ends it.
    handle.join();
}
