//! Length-prefixed framing over any byte stream.
//!
//! A frame is a 4-byte big-endian payload length followed by that many bytes
//! of UTF-8 JSON. The prefix makes message boundaries explicit (TCP is a byte
//! stream), lets the reader pre-size its buffer, and gives a cheap place to
//! bound hostile inputs: frames above [`MAX_FRAME_BYTES`] are rejected before
//! any allocation.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload. Large enough for a million-edge
/// `load_graph` request (~30 MB of JSON), small enough that a corrupt or
/// hostile length prefix cannot drive an allocation into the tens of
/// gigabytes.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// A framing-layer error.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The peer announced a frame larger than [`MAX_FRAME_BYTES`].
    Oversized {
        /// The announced payload length.
        announced: u32,
    },
    /// The payload was not valid UTF-8.
    NotUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Oversized { announced } => write!(
                f,
                "frame of {announced} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
            ),
            WireError::NotUtf8 => write!(f, "frame payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(stream: &mut impl Write, payload: &str) -> Result<(), WireError> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| WireError::Oversized {
        announced: u32::MAX,
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { announced: len });
    }
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on clean end-of-stream (EOF before
/// the first prefix byte); EOF in the middle of a frame is an error.
///
/// Timeout-style errors (`WouldBlock` / `TimedOut` from a socket read
/// timeout) are surfaced as `WireError::Io` only when no byte of the frame
/// has been consumed yet; once a prefix byte has arrived the read retries
/// through timeouts until the frame completes, so a slow writer cannot
/// desynchronize the stream. Callers that poll with a read timeout should
/// treat a `WouldBlock`/`TimedOut` `Io` error as "no frame yet, try again".
pub fn read_frame(stream: &mut impl Read) -> Result<Option<String>, WireError> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut prefix[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame prefix",
                )));
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) && got == 0 => return Err(WireError::Io(e)),
            Err(e) if is_timeout(&e) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { announced: len });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) || e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| WireError::NotUtf8)
}

/// Whether an i/o error is a socket read-timeout marker.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"op":"ping"}"#).unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "second ünïcode frame").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(r#"{"op":"ping"}"#)
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("second ünïcode frame")
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"garbage");
        match read_frame(&mut Cursor::new(buf)) {
            Err(WireError::Oversized { announced }) => assert_eq!(announced, u32::MAX),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_errors_not_silence() {
        // EOF inside the prefix.
        let r = read_frame(&mut Cursor::new(vec![0u8, 0]));
        assert!(matches!(r, Err(WireError::Io(_))));
        // EOF inside the payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn non_utf8_payload_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(WireError::NotUtf8)
        ));
    }
}
