//! The `flowd` daemon: a TCP listener serving prepared max-flow sessions.
//!
//! # Architecture
//!
//! One **worker thread per cached graph** owns that graph's `(Graph,
//! PreparedParts)` pair outright — no lock is ever held across a gradient
//! iteration. Connection threads translate frames into jobs and post them to
//! the owning worker over an `mpsc` channel, then block for the reply.
//!
//! **Coalescing**: a worker drains its queue before serving, so queries that
//! arrive while a previous answer is being computed are batched into one
//! [`PreparedMaxFlow::par_max_flow_batch`] / [`PreparedMaxFlow::route_many`]
//! call, which walks the shared operator structures once per gradient
//! iteration for all lanes. Answers are byte-identical to serving each query
//! alone (the engine's pinned contract), so coalescing is invisible to
//! clients except in throughput.
//!
//! **Updates are barriers**: a capacity update is applied alone, never
//! interleaved inside a batch, so every answer is computed against exactly
//! one graph version — the `version` field of each response names it, and a
//! concurrent reader sees the old answer or the new answer, never a torn
//! one. Small updates re-prepare incrementally via
//! [`PreparedParts::refresh_after_capacity_update`]; large batches (more
//! than `max(16, m/8)` edges) or a failed refresh fall back to a full
//! rebuild.
//!
//! **Eviction**: the cache is an [`Lru`] keyed by graph fingerprint.
//! Evicting an entry drops its job sender; the worker drains already-queued
//! jobs (no accepted query is ever lost) and exits. A later request for the
//! evicted fingerprint gets `unknown_graph` — clients re-`load_graph`.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use flowgraph::{Graph, NodeId};
use maxflow::{MaxFlowConfig, PreparedMaxFlow, PreparedParts};

use crate::cache::{graph_fingerprint, Lru};
use crate::json::{parse, Value};
use crate::protocol::{
    collapse_changes, error_response, fingerprint_to_wire, parse_request, ErrorCode, Request,
};
use crate::wire::{is_timeout, read_frame, write_frame, WireError};

/// How often an idle connection thread wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Tuning knobs of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum number of prepared sessions kept alive at once.
    pub cache_capacity: usize,
    /// Solver configuration used when `load_graph` omits `"config"`.
    pub default_config: MaxFlowConfig,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            cache_capacity: 8,
            default_config: MaxFlowConfig::default(),
        }
    }
}

/// Per-graph serving counters (all monotone; read by the `stats` op).
#[derive(Debug, Default)]
pub struct EntryStats {
    /// Queries answered (max_flow + route).
    pub queries: AtomicU64,
    /// Engine calls that served two or more coalesced queries.
    pub coalesced_batches: AtomicU64,
    /// Largest number of queries served by one engine call.
    pub max_batch: AtomicU64,
    /// Capacity-update requests applied.
    pub updates: AtomicU64,
    /// Updates served by the incremental refresh path.
    pub incremental_updates: AtomicU64,
    /// Updates that fell back to a full session rebuild.
    pub full_rebuilds: AtomicU64,
    /// Current graph version (number of applied updates).
    pub version: AtomicU64,
}

/// A job posted to a graph worker. Every job carries its own reply channel.
enum Job {
    MaxFlow {
        s: NodeId,
        t: NodeId,
        include_flow: bool,
        reply: mpsc::Sender<Value>,
    },
    Route {
        demand: Vec<f64>,
        reply: mpsc::Sender<Value>,
    },
    Update {
        changes: Vec<(u32, f64)>,
        reply: mpsc::Sender<Value>,
    },
}

/// A live cache entry: the handle to a graph worker.
struct GraphEntry {
    sender: mpsc::Sender<Job>,
    stats: Arc<EntryStats>,
}

/// State shared by the listener, connection threads and [`ServerHandle`].
struct Shared {
    cache: Mutex<Lru<GraphEntry>>,
    options: ServerOptions,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    connections: AtomicU64,
    frames: AtomicU64,
    invalid_requests: AtomicU64,
    loads: AtomicU64,
    evictions: AtomicU64,
}

/// A running daemon. Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    listener_thread: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Blocks until the server stops on its own — i.e. until some client
    /// sends the `shutdown` op. The daemon binary's main thread parks here.
    pub fn join(&mut self) {
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
    }

    /// Requests shutdown and waits for the listener to exit. Idempotent.
    /// Queued queries on live workers are still answered; workers exit once
    /// their queues drain.
    pub fn shutdown(&mut self) {
        request_shutdown(&self.shared);
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
    }
}

/// Sets the shutdown flag and pokes the accept loop with a throwaway
/// connection so it observes the flag immediately.
fn request_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(shared.local_addr);
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving in background
/// threads.
pub fn start(addr: &str, options: ServerOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cache: Mutex::new(Lru::new(options.cache_capacity)),
        options,
        local_addr,
        shutdown: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        frames: AtomicU64::new(0),
        invalid_requests: AtomicU64::new(0),
        loads: AtomicU64::new(0),
        evictions: AtomicU64::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let listener_thread = thread::Builder::new()
        .name("flowd-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle {
        shared,
        listener_thread: Some(listener_thread),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        let _ = thread::Builder::new()
            .name("flowd-conn".into())
            .spawn(move || connection_loop(stream, conn_shared));
    }
    // Drop every cached entry: workers drain their queues and exit.
    let drained = shared.cache.lock().expect("cache lock").drain();
    drop(drained);
}

fn connection_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    // Replies are one small frame each; Nagle + delayed ACK would park
    // every round trip for ~40ms.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(WireError::Io(e)) if is_timeout(&e) => continue,
            Err(e) => {
                // Framing is broken; report once and hang up.
                let resp = error_response(ErrorCode::InvalidRequest, &e.to_string());
                let _ = send_value(&mut stream, &resp);
                return;
            }
        };
        shared.frames.fetch_add(1, Ordering::Relaxed);
        let (response, stop_after) = handle_frame(&shared, &payload);
        if send_value(&mut stream, &response).is_err() {
            return;
        }
        if stop_after {
            request_shutdown(&shared);
            return;
        }
    }
}

fn send_value(stream: &mut TcpStream, value: &Value) -> Result<(), WireError> {
    let text = value
        .to_json()
        .unwrap_or_else(|e| panic!("server responses are always serializable: {e}"));
    write_frame(stream, &text)
}

/// Dispatches one frame; returns the response and whether the connection
/// (and server) should stop afterwards.
fn handle_frame(shared: &Arc<Shared>, payload: &str) -> (Value, bool) {
    let doc = match parse(payload) {
        Ok(doc) => doc,
        Err(e) => {
            shared.invalid_requests.fetch_add(1, Ordering::Relaxed);
            return (
                error_response(ErrorCode::InvalidRequest, &e.to_string()),
                false,
            );
        }
    };
    let request = match parse_request(&doc) {
        Ok(r) => r,
        Err(e) => {
            shared.invalid_requests.fetch_add(1, Ordering::Relaxed);
            return (error_response(ErrorCode::InvalidRequest, &e), false);
        }
    };
    match request {
        Request::Ping => (
            Value::obj(vec![("ok", Value::Bool(true)), ("pong", Value::Bool(true))]),
            false,
        ),
        Request::Shutdown => (
            Value::obj(vec![
                ("ok", Value::Bool(true)),
                ("stopping", Value::Bool(true)),
            ]),
            true,
        ),
        Request::Stats => (stats_response(shared), false),
        Request::LoadGraph {
            nodes,
            edges,
            config,
        } => (load_graph(shared, nodes, &edges, config.as_deref()), false),
        Request::MaxFlow {
            graph,
            s,
            t,
            include_flow,
        } => (
            dispatch(shared, graph, |reply| Job::MaxFlow {
                s,
                t,
                include_flow,
                reply,
            }),
            false,
        ),
        Request::Route { graph, demand } => (
            dispatch(shared, graph, |reply| Job::Route { demand, reply }),
            false,
        ),
        Request::Update { graph, changes } => (
            dispatch(shared, graph, |reply| Job::Update { changes, reply }),
            false,
        ),
    }
}

fn stats_response(shared: &Shared) -> Value {
    let cache = shared.cache.lock().expect("cache lock");
    let mut entries = Vec::new();
    for fp in cache.keys() {
        let stats = &cache.peek(fp).expect("listed key").stats;
        entries.push(Value::obj(vec![
            ("graph", Value::Str(fingerprint_to_wire(fp))),
            (
                "queries",
                Value::index(stats.queries.load(Ordering::Relaxed)),
            ),
            (
                "coalesced_batches",
                Value::index(stats.coalesced_batches.load(Ordering::Relaxed)),
            ),
            (
                "max_batch",
                Value::index(stats.max_batch.load(Ordering::Relaxed)),
            ),
            (
                "updates",
                Value::index(stats.updates.load(Ordering::Relaxed)),
            ),
            (
                "incremental_updates",
                Value::index(stats.incremental_updates.load(Ordering::Relaxed)),
            ),
            (
                "full_rebuilds",
                Value::index(stats.full_rebuilds.load(Ordering::Relaxed)),
            ),
            (
                "version",
                Value::index(stats.version.load(Ordering::Relaxed)),
            ),
        ]));
    }
    Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("graphs", Value::index(entries.len() as u64)),
        (
            "connections",
            Value::index(shared.connections.load(Ordering::Relaxed)),
        ),
        (
            "frames",
            Value::index(shared.frames.load(Ordering::Relaxed)),
        ),
        (
            "invalid_requests",
            Value::index(shared.invalid_requests.load(Ordering::Relaxed)),
        ),
        ("loads", Value::index(shared.loads.load(Ordering::Relaxed))),
        (
            "evictions",
            Value::index(shared.evictions.load(Ordering::Relaxed)),
        ),
        ("entries", Value::Arr(entries)),
    ])
}

/// Serves `load_graph`: prepare (outside the cache lock) and register a
/// worker, or just touch the existing session.
fn load_graph(
    shared: &Arc<Shared>,
    nodes: u64,
    edges: &[(u32, u32, f64)],
    config_json: Option<&str>,
) -> Value {
    shared.loads.fetch_add(1, Ordering::Relaxed);
    let config = match config_json {
        None => shared.options.default_config.clone(),
        Some(j) => match MaxFlowConfig::from_json(j) {
            Ok(c) => c,
            Err(e) => return error_response(ErrorCode::InvalidRequest, &format!("config: {e}")),
        },
    };
    // Fingerprint over the *canonical* config JSON so key order and
    // defaulted fields don't split the cache.
    let canonical = match config.to_json() {
        Ok(c) => c,
        Err(e) => return error_response(ErrorCode::InvalidRequest, &format!("config: {e}")),
    };
    let fp = graph_fingerprint(nodes, edges, &canonical);
    let loaded = |cached: bool| {
        Value::obj(vec![
            ("ok", Value::Bool(true)),
            ("graph", Value::Str(fingerprint_to_wire(fp))),
            ("cached", Value::Bool(cached)),
            ("nodes", Value::index(nodes)),
            ("edges", Value::index(edges.len() as u64)),
        ])
    };
    if shared.cache.lock().expect("cache lock").get(fp).is_some() {
        return loaded(true);
    }
    if usize::try_from(nodes).is_err() || nodes > u64::from(u32::MAX) {
        return error_response(ErrorCode::InvalidRequest, "load_graph: too many nodes");
    }
    let mut g = Graph::with_nodes(nodes as usize);
    for &(u, v, cap) in edges {
        if let Err(e) = g.add_edge(NodeId(u), NodeId(v), cap) {
            return error_response(ErrorCode::GraphError, &e.to_string());
        }
    }
    let parts = match PreparedParts::build(&g, &config) {
        Ok(p) => p,
        Err(e) => return error_response(ErrorCode::GraphError, &e.to_string()),
    };
    let (sender, receiver) = mpsc::channel();
    let stats = Arc::new(EntryStats::default());
    let worker_stats = Arc::clone(&stats);
    let spawned = thread::Builder::new()
        .name("flowd-worker".into())
        .spawn(move || worker_loop(g, parts, receiver, worker_stats));
    if spawned.is_err() {
        return error_response(ErrorCode::GraphError, "could not spawn a session worker");
    }
    let mut cache = shared.cache.lock().expect("cache lock");
    // A racing load of the same graph may have won; keep the incumbent so
    // its queued jobs keep their worker.
    if cache.get(fp).is_none() && cache.insert(fp, GraphEntry { sender, stats }).is_some() {
        shared.evictions.fetch_add(1, Ordering::Relaxed);
    }
    loaded(false)
}

/// Posts a job to the owning worker and waits for the answer.
fn dispatch(shared: &Shared, fp: u64, job: impl FnOnce(mpsc::Sender<Value>) -> Job) -> Value {
    let sender = {
        let mut cache = shared.cache.lock().expect("cache lock");
        match cache.get(fp) {
            Some(entry) => entry.sender.clone(),
            None => {
                return error_response(
                    ErrorCode::UnknownGraph,
                    "graph is not loaded (never sent, or evicted); re-send load_graph",
                )
            }
        }
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    if sender.send(job(reply_tx)).is_err() {
        return error_response(ErrorCode::UnknownGraph, "session worker already stopped");
    }
    reply_rx
        .recv()
        .unwrap_or_else(|_| error_response(ErrorCode::GraphError, "session worker died"))
}

/// The per-graph worker: owns the graph and its prepared session, drains its
/// queue into coalesced batches, and treats updates as barriers.
fn worker_loop(
    mut graph: Graph,
    parts: PreparedParts,
    receiver: mpsc::Receiver<Job>,
    stats: Arc<EntryStats>,
) {
    let mut parts = Some(parts);
    let mut version: u64 = 0;
    while let Ok(first) = receiver.recv() {
        // Coalesce: everything already queued is served in this pass.
        let mut pending = std::collections::VecDeque::new();
        pending.push_back(first);
        while let Ok(job) = receiver.try_recv() {
            pending.push_back(job);
        }
        while let Some(job) = pending.pop_front() {
            match job {
                Job::Update { changes, reply } => {
                    apply_update(
                        &mut graph,
                        &mut parts,
                        &stats,
                        &mut version,
                        &changes,
                        &reply,
                    );
                }
                Job::MaxFlow {
                    s,
                    t,
                    include_flow,
                    reply,
                } => {
                    let mut run = vec![(s, t, include_flow, reply)];
                    while let Some(Job::MaxFlow { .. }) = pending.front() {
                        let Some(Job::MaxFlow {
                            s,
                            t,
                            include_flow,
                            reply,
                        }) = pending.pop_front()
                        else {
                            unreachable!()
                        };
                        run.push((s, t, include_flow, reply));
                    }
                    serve_max_flow_run(&graph, &mut parts, &stats, version, run);
                }
                Job::Route { demand, reply } => {
                    let mut run = vec![(demand, reply)];
                    while let Some(Job::Route { .. }) = pending.front() {
                        let Some(Job::Route { demand, reply }) = pending.pop_front() else {
                            unreachable!()
                        };
                        run.push((demand, reply));
                    }
                    serve_route_run(&graph, &mut parts, &stats, version, run);
                }
            }
            if parts.is_none() {
                // The session is poisoned (rebuild failed); refuse the rest.
                for job in pending.drain(..) {
                    let reply = match job {
                        Job::MaxFlow { reply, .. }
                        | Job::Route { reply, .. }
                        | Job::Update { reply, .. } => reply,
                    };
                    let _ = reply.send(error_response(
                        ErrorCode::GraphError,
                        "session is poisoned after a failed rebuild; re-send load_graph",
                    ));
                }
                return;
            }
        }
    }
}

fn note_batch(stats: &EntryStats, served: usize) {
    stats.queries.fetch_add(served as u64, Ordering::Relaxed);
    if served > 1 {
        stats.coalesced_batches.fetch_add(1, Ordering::Relaxed);
    }
    stats.max_batch.fetch_max(served as u64, Ordering::Relaxed);
}

fn max_flow_response(r: &maxflow::MaxFlowResult, version: u64, include_flow: bool) -> Value {
    let mut fields = vec![
        ("ok", Value::Bool(true)),
        ("value", Value::Num(r.value)),
        ("upper_bound", Value::Num(r.upper_bound)),
        ("iterations", Value::index(r.iterations as u64)),
        ("phases", Value::index(r.phases as u64)),
        ("version", Value::index(version)),
    ];
    if include_flow {
        fields.push((
            "flow",
            Value::Arr(r.flow.values().iter().map(|&x| Value::Num(x)).collect()),
        ));
    }
    Value::obj(fields)
}

fn serve_max_flow_run(
    graph: &Graph,
    parts_slot: &mut Option<PreparedParts>,
    stats: &EntryStats,
    version: u64,
    run: Vec<(NodeId, NodeId, bool, mpsc::Sender<Value>)>,
) {
    let parts = parts_slot.take().expect("live session");
    let mut session = match PreparedMaxFlow::from_parts(graph, parts) {
        Ok(s) => s,
        Err(e) => {
            for (_, _, _, reply) in run {
                let _ = reply.send(error_response(ErrorCode::GraphError, &e.to_string()));
            }
            return;
        }
    };
    note_batch(stats, run.len());
    let pairs: Vec<(NodeId, NodeId)> = run.iter().map(|&(s, t, _, _)| (s, t)).collect();
    match session.par_max_flow_batch(&pairs) {
        Ok(results) => {
            for ((_, _, include_flow, reply), r) in run.into_iter().zip(results.iter()) {
                let _ = reply.send(max_flow_response(r, version, include_flow));
            }
        }
        // The batch fails fast on the earliest bad pair; answer each query
        // by itself so one bad terminal pair cannot poison its batchmates
        // (the sequential answers are byte-identical to the batch).
        Err(_) => {
            for (s, t, include_flow, reply) in run {
                let response = match session.max_flow(s, t) {
                    Ok(r) => max_flow_response(&r, version, include_flow),
                    Err(e) => error_response(ErrorCode::GraphError, &e.to_string()),
                };
                let _ = reply.send(response);
            }
        }
    }
    *parts_slot = Some(session.into_parts());
}

fn route_response(r: &maxflow::RoutingResult, version: u64) -> Value {
    Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("congestion", Value::Num(r.congestion)),
        ("iterations", Value::index(r.iterations as u64)),
        ("phases", Value::index(r.phases as u64)),
        ("version", Value::index(version)),
    ])
}

fn serve_route_run(
    graph: &Graph,
    parts_slot: &mut Option<PreparedParts>,
    stats: &EntryStats,
    version: u64,
    run: Vec<(Vec<f64>, mpsc::Sender<Value>)>,
) {
    let parts = parts_slot.take().expect("live session");
    let mut session = match PreparedMaxFlow::from_parts(graph, parts) {
        Ok(s) => s,
        Err(e) => {
            for (_, reply) in run {
                let _ = reply.send(error_response(ErrorCode::GraphError, &e.to_string()));
            }
            return;
        }
    };
    note_batch(stats, run.len());
    let demands: Vec<flowgraph::Demand> = run
        .iter()
        .map(|(d, _)| flowgraph::Demand::from_values(d.clone()))
        .collect();
    match session.route_many(&demands) {
        Ok(results) => {
            for ((_, reply), r) in run.into_iter().zip(results.iter()) {
                let _ = reply.send(route_response(r, version));
            }
        }
        Err(_) => {
            for (demand, reply) in run {
                let response = match session.route(&flowgraph::Demand::from_values(demand)) {
                    Ok(r) => route_response(&r, version),
                    Err(e) => error_response(ErrorCode::GraphError, &e.to_string()),
                };
                let _ = reply.send(response);
            }
        }
    }
    *parts_slot = Some(session.into_parts());
}

/// Applies one capacity-update barrier: mutate the graph, then refresh the
/// prepared parts incrementally when the batch is small enough, falling back
/// to a full rebuild otherwise (or when the refresh degenerates).
fn apply_update(
    graph: &mut Graph,
    parts_slot: &mut Option<PreparedParts>,
    stats: &EntryStats,
    version: &mut u64,
    changes: &[(u32, f64)],
    reply: &mpsc::Sender<Value>,
) {
    let collapsed = match collapse_changes(graph, changes) {
        Ok(c) => c,
        Err(e) => {
            // Nothing was mutated; the session is untouched.
            let _ = reply.send(error_response(ErrorCode::GraphError, &e.to_string()));
            return;
        }
    };
    // Captured up front: a failed refresh discards the parts, and the
    // rebuild must still use the session's own config, not the default.
    let config = parts_slot.as_ref().expect("live session").config().clone();
    stats.updates.fetch_add(1, Ordering::Relaxed);
    if collapsed.is_empty() {
        let _ = reply.send(Value::obj(vec![
            ("ok", Value::Bool(true)),
            ("version", Value::index(*version)),
            ("incremental", Value::Bool(true)),
            ("changes", Value::index(0)),
            ("trees_touched", Value::index(0)),
            ("slots_patched", Value::index(0)),
        ]));
        return;
    }
    for c in &collapsed {
        graph
            .set_capacity(c.edge, c.new)
            .expect("changes were validated against this graph");
    }
    let incremental_bound = 16usize.max(graph.num_edges() / 8);
    let mut refresh_stats = None;
    if collapsed.len() <= incremental_bound {
        if let Some(parts) = parts_slot.as_mut() {
            match parts.refresh_after_capacity_update(graph, &collapsed) {
                Ok(s) => refresh_stats = Some(s),
                // A failed refresh leaves the parts partially patched —
                // discard them; the rebuild below starts from the graph.
                Err(_) => *parts_slot = None,
            }
        }
    } else {
        // Too many edges changed for path-patching to win; rebuild.
        *parts_slot = None;
    }
    let incremental = refresh_stats.is_some();
    if incremental {
        stats.incremental_updates.fetch_add(1, Ordering::Relaxed);
    } else {
        match PreparedParts::build(graph, &config) {
            Ok(p) => *parts_slot = Some(p),
            Err(e) => {
                // Leave parts_slot empty: the worker poisons itself and the
                // caller re-loads. (Unreachable for valid capacities, but
                // never serve stale state silently.)
                *parts_slot = None;
                let _ = reply.send(error_response(ErrorCode::GraphError, &e.to_string()));
                return;
            }
        }
        stats.full_rebuilds.fetch_add(1, Ordering::Relaxed);
    }
    *version += 1;
    stats.version.store(*version, Ordering::Relaxed);
    let (trees, slots) = refresh_stats
        .map(|s| (s.trees_touched as u64, s.slots_patched as u64))
        .unwrap_or((0, 0));
    let _ = reply.send(Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("version", Value::index(*version)),
        ("incremental", Value::Bool(incremental)),
        ("changes", Value::index(collapsed.len() as u64)),
        ("trees_touched", Value::index(trees)),
        ("slots_patched", Value::index(slots)),
    ]));
}
